//! The synchronous Omega-network simulator.
//!
//! The simulator follows the paper's assumptions (§4.2, after Pfister &
//! Norton): message transmissions are synchronised, so packets move between
//! stages "instantaneously once every twelve clock cycles". One call to
//! [`NetworkSim::step`] is one such network cycle:
//!
//! 1. every source generates a packet with probability equal to the offered
//!    load, appending it to its (unbounded) source queue;
//! 2. stages transmit, **last stage first**, so that space freed downstream
//!    in this cycle is visible upstream — a packet advances at most one
//!    stage per cycle;
//! 3. sources inject their head packet into the first stage if the protocol
//!    allows.
//!
//! Under the *blocking* protocol a switch only transmits a packet if the
//! downstream buffer can accept it (for the statically-allocated designs
//! this checks the specific queue the packet will join — the pre-routing
//! flow-control cost the paper describes). Under the *discarding* protocol
//! packets always fly and are dropped at full buffers.

use std::collections::VecDeque;
// lint: allow — the phase profiler measures *harness* wall-clock (the
// serial phase-B merge), never simulation state; cycle time in the
// simulator is the logical `cycle` counter, not `Instant`.
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{
    AnyBuffer, AuditError, BufferKind, BuildBuffer, ConfigError, FaultEvent, FaultLedger,
    FaultPlan, FrontMeta, InputPort, NodeId, OutputPort, Packet, PacketId, PacketIdSource,
    RejectReason, SwitchBuffer, DEFAULT_SLOT_BYTES,
};
use damq_switch::{ArbiterPolicy, CycleSink, FlowControl, Switch, SwitchConfig};
use damq_telemetry::{
    CounterId, Event, EventKind, HistogramId, MetricsRegistry, NullSink, TelemetrySink,
};

use crate::metrics::NetMetrics;
use crate::parallel::{DepartRecord, ParallelEngine, PhaseProfile, StageLane};
use crate::topology::{HopRoute, RoutePlan, Topology, TopologyError, TopologyKind};
use crate::traffic::TrafficPattern;

/// How packet arrivals are timed at each source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Independent Bernoulli arrivals at the offered load each cycle (the
    /// paper's traffic model).
    Bernoulli,
    /// Two-state Markov-modulated (on/off) sources: bursts of back-to-back
    /// generation separated by silences. The long-run mean rate still
    /// equals the configured offered load; burstiness redistributes it.
    OnOff {
        /// Mean burst (ON-state) duration in cycles (≥ 1).
        mean_burst: f64,
        /// Long-run fraction of time spent ON, in (0, 1]. While ON the
        /// source generates with probability `load / duty` per cycle
        /// (clamped to 1), so smaller duty means denser bursts.
        duty: f64,
    },
}

/// How packet payload lengths are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketLengths {
    /// Every packet carries exactly this many bytes (the paper's simulation
    /// assumption; 8 bytes = one slot).
    Fixed(usize),
    /// Lengths drawn uniformly from `min..=max` bytes (the variable-length
    /// workload the DAMQ buffer was designed for; see paper §5).
    Uniform {
        /// Smallest payload in bytes.
        min: usize,
        /// Largest payload in bytes.
        max: usize,
    },
}

impl PacketLengths {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            PacketLengths::Fixed(bytes) => bytes,
            PacketLengths::Uniform { min, max } => rng.random_range(min..=max),
        }
    }
}

/// Error constructing a [`NetworkSim`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The topology dimensions are invalid.
    Topology(TopologyError),
    /// The per-switch buffer configuration is invalid.
    Buffer(ConfigError),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Topology(e) => write!(f, "topology: {e}"),
            NetworkError::Buffer(e) => write!(f, "buffer: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Topology(e) => Some(e),
            NetworkError::Buffer(e) => Some(e),
        }
    }
}

impl From<TopologyError> for NetworkError {
    fn from(e: TopologyError) -> Self {
        NetworkError::Topology(e)
    }
}

impl From<ConfigError> for NetworkError {
    fn from(e: ConfigError) -> Self {
        NetworkError::Buffer(e)
    }
}

/// Closed-loop recovery configuration: link-level retransmission and
/// fault-adaptive (deflection) rerouting.
///
/// Disabled by default — a `NetworkSim` without recovery behaves exactly
/// as before this subsystem existed. All timers are **simulated network
/// cycles**, never wall clock, so recovery is seed-stable and preserves
/// the serial ≡ N-thread byte-identical contract (every recovery action
/// runs in the serial sections of the cycle).
///
/// # Examples
///
/// ```
/// use damq_net::{NetworkConfig, RecoveryConfig};
///
/// let cfg = NetworkConfig::new(64, 4).recovery(RecoveryConfig::enabled());
/// assert!(cfg.recovery_config().retransmit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Park packets lost to flapped links or checksum-caught corruption
    /// in a bounded per-hop retransmit buffer and resend them after a
    /// deterministic cycle-count timeout.
    pub retransmit: bool,
    /// Retransmit-buffer depth per hop (parked packets per link). A
    /// loss on a hop whose buffer is full gives the packet up
    /// immediately.
    pub retransmit_slots: usize,
    /// Resend attempts before a parked packet is given up
    /// (`net.retry_exhausted`, `gave_up` telemetry).
    pub max_retries: u32,
    /// Cycles from a loss (or failed resend) to the next resend attempt,
    /// before backoff scaling.
    pub base_timeout: u64,
    /// Cap on the exponential backoff: attempt `n` waits
    /// `base_timeout << min(n, max_backoff_exp)` cycles.
    pub max_backoff_exp: u32,
    /// Deflect packets through the route plan's alternate output when
    /// the primary output's link is down or its downstream queue is
    /// saturated (misroute-on-block; the deflection is corrected by
    /// end-to-end retransmission at the wrong sink).
    pub adaptive: bool,
    /// Deflections allowed per packet — bounds deliberate misrouting so
    /// every packet keeps making progress toward *some* sink.
    pub misroute_budget: u8,
    /// Cycles between a link fault striking and recovery's link-health
    /// state believing it (routing reacts within this window).
    pub detection_window: u64,
}

impl RecoveryConfig {
    /// No recovery: losses are final, routing never deflects (the
    /// drop-only behaviour of the plain fault model).
    pub fn disabled() -> Self {
        RecoveryConfig {
            retransmit: false,
            retransmit_slots: 0,
            max_retries: 0,
            base_timeout: 0,
            max_backoff_exp: 0,
            adaptive: false,
            misroute_budget: 0,
            detection_window: 0,
        }
    }

    /// Retransmission and adaptive rerouting both on, with defaults
    /// sized for the paper's 64-terminal network: 8 retransmit slots
    /// per hop, 8 resend attempts starting 4 cycles after a loss with
    /// backoff capped at `4 << 5` cycles, a misroute budget of 2
    /// deflections per packet, and a 2-cycle fault-detection window.
    pub fn enabled() -> Self {
        RecoveryConfig {
            retransmit: true,
            retransmit_slots: 8,
            max_retries: 8,
            base_timeout: 4,
            max_backoff_exp: 5,
            adaptive: true,
            misroute_budget: 2,
            detection_window: 2,
        }
    }

    /// Whether any recovery mechanism is on.
    pub fn active(&self) -> bool {
        self.retransmit || self.adaptive
    }

    /// The resend delay after `attempts` failed attempts:
    /// `base_timeout << min(attempts, max_backoff_exp)`, floored at one
    /// cycle so a zero configuration cannot spin.
    fn backoff(&self, attempts: u32) -> u64 {
        let exp = attempts.min(self.max_backoff_exp).min(32);
        self.base_timeout.max(1).saturating_mul(1u64 << exp)
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Full description of a network experiment.
///
/// Defaults reproduce the paper's Omega setup: 64 terminals, 4×4 switches,
/// DAMQ buffers of 4 slots, smart arbitration, blocking protocol, uniform
/// traffic, fixed one-slot packets.
///
/// # Examples
///
/// ```
/// use damq_core::BufferKind;
/// use damq_net::{NetworkConfig, NetworkSim};
///
/// let mut sim = NetworkSim::new(
///     NetworkConfig::new(64, 4)
///         .buffer_kind(BufferKind::Fifo)
///         .offered_load(0.4)
///         .seed(7),
/// )?;
/// sim.run(100);
/// assert!(sim.metrics().delivered() > 0);
/// # Ok::<(), damq_net::NetworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    size: usize,
    radix: usize,
    topology_kind: TopologyKind,
    buffer_kind: BufferKind,
    slots_per_buffer: usize,
    arbiter_policy: ArbiterPolicy,
    flow_control: FlowControl,
    pattern: TrafficPattern,
    offered_load: f64,
    packet_lengths: PacketLengths,
    arrivals: ArrivalProcess,
    recovery: RecoveryConfig,
    seed: u64,
}

impl NetworkConfig {
    /// Starts a configuration for `size` terminals and `radix`×`radix`
    /// switches.
    pub fn new(size: usize, radix: usize) -> Self {
        NetworkConfig {
            size,
            radix,
            topology_kind: TopologyKind::Omega,
            buffer_kind: BufferKind::Damq,
            slots_per_buffer: 4,
            arbiter_policy: ArbiterPolicy::Smart,
            flow_control: FlowControl::Blocking,
            pattern: TrafficPattern::Uniform,
            offered_load: 0.5,
            packet_lengths: PacketLengths::Fixed(DEFAULT_SLOT_BYTES),
            arrivals: ArrivalProcess::Bernoulli,
            recovery: RecoveryConfig::disabled(),
            seed: 0xDA3B,
        }
    }

    /// Selects the recovery protocols (off by default; see
    /// [`RecoveryConfig`]).
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// The recovery configuration in use.
    pub fn recovery_config(&self) -> RecoveryConfig {
        self.recovery
    }

    /// Selects the MIN wiring (Omega by default; the paper's network).
    #[must_use]
    pub fn topology_kind(mut self, kind: TopologyKind) -> Self {
        self.topology_kind = kind;
        self
    }

    /// The MIN wiring in use.
    pub fn wiring(&self) -> TopologyKind {
        self.topology_kind
    }

    /// Selects the input-buffer design used by every switch.
    #[must_use]
    pub fn buffer_kind(mut self, kind: BufferKind) -> Self {
        self.buffer_kind = kind;
        self
    }

    /// Sets the storage per input buffer, in slots.
    #[must_use]
    pub fn slots_per_buffer(mut self, slots: usize) -> Self {
        self.slots_per_buffer = slots;
        self
    }

    /// Selects the crossbar arbitration policy.
    #[must_use]
    pub fn arbiter_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.arbiter_policy = policy;
        self
    }

    /// Selects the flow-control protocol.
    #[must_use]
    pub fn flow_control(mut self, flow: FlowControl) -> Self {
        self.flow_control = flow;
        self
    }

    /// Selects the traffic pattern.
    #[must_use]
    pub fn traffic(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the offered load: probability each source generates a packet
    /// each cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= load <= 1.0`.
    #[must_use]
    pub fn offered_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be a probability");
        self.offered_load = load;
        self
    }

    /// Selects the packet-length distribution.
    #[must_use]
    pub fn packet_lengths(mut self, lengths: PacketLengths) -> Self {
        self.packet_lengths = lengths;
        self
    }

    /// Selects the arrival process (Bernoulli by default).
    ///
    /// # Panics
    ///
    /// Panics if an on/off process has `mean_burst < 1` or `duty` outside
    /// `(0, 1]`.
    #[must_use]
    pub fn arrival_process(mut self, arrivals: ArrivalProcess) -> Self {
        if let ArrivalProcess::OnOff { mean_burst, duty } = arrivals {
            assert!(mean_burst >= 1.0, "bursts last at least one cycle");
            assert!(duty > 0.0 && duty <= 1.0, "duty is a fraction of time");
        }
        self.arrivals = arrivals;
        self
    }

    /// The arrival process in use.
    pub fn arrivals(&self) -> ArrivalProcess {
        self.arrivals
    }

    /// Seeds the traffic generator (same seed ⇒ identical run).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of terminals.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Buffer design in use.
    pub fn kind(&self) -> BufferKind {
        self.buffer_kind
    }

    /// Slots per input buffer.
    pub fn slots(&self) -> usize {
        self.slots_per_buffer
    }

    /// Arbitration policy in use.
    pub fn policy(&self) -> ArbiterPolicy {
        self.arbiter_policy
    }

    /// Flow-control protocol in use.
    pub fn flow(&self) -> FlowControl {
        self.flow_control
    }

    /// Traffic pattern in use.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Offered load per source per cycle.
    pub fn load(&self) -> f64 {
        self.offered_load
    }

    /// Packet length distribution in use.
    pub fn lengths(&self) -> PacketLengths {
        self.packet_lengths
    }
}

/// Lifetime packet ledger for the conservation audit.
///
/// [`NetMetrics`] counters are zeroed by [`NetworkSim::warm_up`], so they
/// cannot back a whole-run balance check. This ledger counts from
/// construction and is never reset: at the end of every cycle,
///
/// ```text
/// generated = delivered + discarded + source backlog + in flight
/// ```
///
/// must hold exactly — the network-level analogue of the slot-partition
/// invariant (a packet is always in exactly one place).
#[derive(Debug, Clone, Copy, Default)]
struct ConservationLedger {
    generated: u64,
    delivered: u64,
    discarded: u64,
}

/// Run-time fault machinery: the installed [`FaultPlan`] plus the mutable
/// state its application needs, sized against the topology at install
/// time.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Index of the first plan event not yet applied.
    next_event: usize,
    /// Per-link outage end cycle (exclusive), indexed
    /// `(stage * per_stage + switch) * radix + input`.
    link_down_until: Vec<u64>,
    /// Payload corruptions waiting to strike, per source terminal.
    corrupt_pending: Vec<u32>,
    /// Transient misroutes waiting to strike, per `(stage, switch)`
    /// flattened stage-major.
    misroute_pending: Vec<u32>,
}

impl FaultState {
    fn new(plan: FaultPlan, stages: usize, per_stage: usize, radix: usize, size: usize) -> Self {
        FaultState {
            plan,
            next_event: 0,
            link_down_until: vec![0; stages * per_stage * radix],
            corrupt_pending: vec![0; size],
            misroute_pending: vec![0; stages * per_stage],
        }
    }

    fn link_index(
        &self,
        per_stage: usize,
        radix: usize,
        stage: usize,
        sw: usize,
        input: usize,
    ) -> usize {
        (stage * per_stage + sw) * radix + input
    }

    /// Whether the link into (`stage`, `sw`, `input`) is out of service at
    /// `cycle`.
    fn link_down(
        &self,
        per_stage: usize,
        radix: usize,
        stage: usize,
        sw: usize,
        input: usize,
        cycle: u64,
    ) -> bool {
        self.link_down_until[self.link_index(per_stage, radix, stage, sw, input)] > cycle
    }

    /// Consumes one pending misroute at (`stage`, `sw`) if any is armed.
    fn take_misroute(&mut self, per_stage: usize, stage: usize, sw: usize) -> bool {
        let idx = stage * per_stage + sw;
        if self.misroute_pending[idx] > 0 {
            self.misroute_pending[idx] -= 1;
            true
        } else {
            false
        }
    }

    /// Consumes one pending corruption for terminal `src` if any is armed.
    fn take_corruption(&mut self, src: usize) -> bool {
        if self.corrupt_pending[src] > 0 {
            self.corrupt_pending[src] -= 1;
            true
        } else {
            false
        }
    }
}

/// Where a parked packet re-enters the network when its retransmit
/// timer fires.
#[derive(Debug, Clone, Copy)]
enum HopKind {
    /// Lost on the source→stage-0 link: re-inject at the entry
    /// (`switch`, `port`) toward `out`.
    Entry { sw: usize, port: usize, out: usize },
    /// Lost on an interior hop: re-deliver into the receiving `stage`'s
    /// (`next_switch`, `next_port`) queue `next_out`.
    Interior {
        stage: usize,
        next_switch: usize,
        next_port: usize,
        next_out: usize,
    },
    /// NACKed at the sink (checksum failure or a misrouted arrival):
    /// resend the clean upstream copy end-to-end to the packet's true
    /// destination terminal.
    Final,
}

/// One packet parked in a hop's retransmit buffer, waiting for its
/// cycle-count timer.
#[derive(Debug, Clone)]
struct RetransmitEntry {
    /// Per-hop sequence number, stamped at park time.
    seq: u64,
    /// Hop slot (see [`RecoveryState::held`]) charged for this entry.
    link: usize,
    /// Cycle at which the next resend attempt fires.
    due: u64,
    /// Failed resend attempts so far.
    attempts: u32,
    /// Whether the current attempt already deferred once for believed
    /// link health (the free wait is capped at one deferral per
    /// attempt, so a permanently dead link still exhausts its retries).
    deferred: bool,
    /// Upstream (stage, switch) of the lossy hop, for telemetry.
    stage: u32,
    switch: u32,
    kind: HopKind,
    packet: Packet,
}

/// Run-time recovery machinery: the bounded per-hop retransmit buffers,
/// per-hop sequence counters, and the believed link-health state that
/// adaptive rerouting consults.
///
/// Everything here is read by phase-A probes but **mutated only in the
/// serial sections of the cycle** (`service_recovery`, phase-B merges,
/// `inject`), which preserves the serial ≡ N-thread byte-identical
/// contract.
#[derive(Debug)]
struct RecoveryState {
    config: RecoveryConfig,
    per_stage: usize,
    radix: usize,
    /// First hop slot of the per-sink namespace (`Final` entries):
    /// `stages * per_stage * radix`.
    sink_base: usize,
    /// Parked packets, serviced in park order each cycle.
    pending: Vec<RetransmitEntry>,
    /// Next sequence number per hop slot.
    next_seq: Vec<u64>,
    /// Parked packets per hop slot — the bounded retransmit buffer.
    held: Vec<u32>,
    /// Cycle (exclusive) until which each link is *believed* down.
    /// Trails ground truth by the detection window; also raised by
    /// every observed loss.
    believed_down_until: Vec<u64>,
    /// Link faults observed but not yet believed:
    /// `(effective_cycle, hop slot, down until)`, in effective-cycle
    /// order (fault events apply in cycle order, window is constant).
    detections: Vec<(u64, usize, u64)>,
}

impl RecoveryState {
    fn new(
        config: RecoveryConfig,
        stages: usize,
        per_stage: usize,
        radix: usize,
        size: usize,
    ) -> Self {
        let sink_base = stages * per_stage * radix;
        RecoveryState {
            config,
            per_stage,
            radix,
            sink_base,
            pending: Vec::new(),
            next_seq: vec![0; sink_base + size],
            held: vec![0; sink_base + size],
            believed_down_until: vec![0; sink_base + size],
            detections: Vec::new(),
        }
    }

    /// Hop slot of the link into (`stage`, `sw`, `input`) — the same
    /// indexing as [`FaultState::link_index`].
    fn link_index(&self, stage: usize, sw: usize, input: usize) -> usize {
        (stage * self.per_stage + sw) * self.radix + input
    }

    /// Hop slot of the final switch→`sink` hop.
    fn sink_slot(&self, sink: usize) -> usize {
        self.sink_base + sink
    }

    /// Whether recovery currently believes the link behind `slot` is
    /// out of service.
    fn believed_down(&self, slot: usize, cycle: u64) -> bool {
        self.believed_down_until[slot] > cycle
    }

    /// Records an observed loss on `slot`: believe the link down for
    /// one detection window (local suspicion; cleared by time).
    fn note_loss(&mut self, slot: usize, cycle: u64) {
        let until = cycle + self.config.detection_window.max(1);
        if self.believed_down_until[slot] < until {
            self.believed_down_until[slot] = until;
        }
    }

    /// Schedules a detected link fault: believed from `effective` until
    /// the fault's own end cycle.
    fn schedule_detection(&mut self, effective: u64, slot: usize, until: u64) {
        self.detections.push((effective, slot, until));
    }

    /// Whether `slot`'s retransmit buffer has room for another park.
    fn can_park(&self, slot: usize) -> bool {
        self.config.retransmit && (self.held[slot] as usize) < self.config.retransmit_slots
    }

    /// Parks `packet` in `slot`'s retransmit buffer, stamping its
    /// sequence number and first resend deadline. The caller must have
    /// checked [`RecoveryState::can_park`].
    fn park(
        &mut self,
        slot: usize,
        cycle: u64,
        stage: u32,
        switch: u32,
        kind: HopKind,
        packet: Packet,
    ) {
        let seq = self.next_seq[slot];
        self.next_seq[slot] += 1;
        self.held[slot] += 1;
        self.pending.push(RetransmitEntry {
            seq,
            link: slot,
            due: cycle + self.config.backoff(0),
            attempts: 0,
            deferred: false,
            stage,
            switch,
            kind,
            packet,
        });
    }

    /// The read-only view phase-A probes take of recovery state.
    fn view(&self) -> RecoveryView<'_> {
        RecoveryView {
            adaptive: self.config.adaptive,
            believed_down_until: &self.believed_down_until,
        }
    }
}

/// Read-only phase-A view of recovery state: the adaptive flag and the
/// believed link-health table. Only written in serial sections, so
/// islands may read it freely (same argument as [`IdleView`]).
#[derive(Clone, Copy)]
struct RecoveryView<'a> {
    adaptive: bool,
    believed_down_until: &'a [u64],
}

impl RecoveryView<'_> {
    fn believed_down(&self, slot: usize, cycle: u64) -> bool {
        self.believed_down_until[slot] > cycle
    }
}

/// Read-only context shared by one stage's phase-A transmit probes:
/// everything a switch needs to route a candidate departure and test
/// downstream space. Every field is behind a shared reference (or
/// `Copy`), so islands can probe concurrently — the route plan's query
/// counter is atomic, fault state is only read (`link_down`), and
/// downstream space is read from `caps`, the per-stage snapshot of
/// [`Switch::accept_capacities_into`] taken in the serial section while
/// the downstream stage is frozen (its own transmit and every merge
/// into it are already done, and nothing touches it again until this
/// stage's phase B), so one flat-array load answers the probe exactly
/// as the live `can_accept` would.
struct ProbeCtx<'a> {
    stage: usize,
    per_stage: usize,
    radix: usize,
    cycle: u64,
    blocking: bool,
    plan: &'a RoutePlan,
    faults: Option<&'a FaultState>,
    /// `caps[(sw * radix + input) * radix + output]` = largest packet
    /// (slots) downstream switch `sw` accepts on that input/output pair.
    caps: &'a [u16],
    idle: IdleView<'a>,
    /// Recovery's believed link health, for the adaptive probe (absent
    /// while recovery is off — the probe then behaves exactly as before
    /// recovery existed).
    recovery: Option<RecoveryView<'a>>,
}

/// Read-only phase-A view of one stage's slice of the quiescence map,
/// plus the skip enable flag. The map is only written in the serial
/// sections of the cycle (merge, inject), so islands may read it freely.
#[derive(Clone, Copy)]
struct IdleView<'a> {
    enabled: bool,
    map: &'a [bool],
}

impl IdleView<'_> {
    /// Whether switch `sw` may take the idle fast path this cycle.
    fn skip(&self, sw: usize) -> bool {
        self.enabled && self.map[sw]
    }
}

/// Phase-A departure sink for the last pipeline stage: terminals always
/// accept, so flow control never blocks and no route is parked.
struct LastStageSink<'a> {
    sw: usize,
    records: &'a mut Vec<DepartRecord>,
}

impl CycleSink for LastStageSink<'_> {
    fn can_send(&mut self, _output: OutputPort, _front: FrontMeta) -> bool {
        true
    }

    fn depart(&mut self, _input: InputPort, output: OutputPort, packet: Packet) {
        self.records.push(DepartRecord {
            sw: self.sw,
            output,
            route: None,
            packet,
        });
    }
}

/// Phase-A departure sink for interior stages. Under the blocking
/// protocol the `can_send` probe routes the candidate, parks the route
/// in the lane scratch, and tests the downstream link and space; each
/// grant then moves the parked route onto its departure record, so phase
/// B routes every departure exactly once — identical to the serial loop.
struct InteriorStageSink<'a, 'b> {
    sw: usize,
    ctx: &'a ProbeCtx<'b>,
    scratch: &'a mut [Option<HopRoute>],
    records: &'a mut Vec<DepartRecord>,
    /// Route queries made by this switch's probes, flushed to the plan's
    /// counter in one batched add after the cycle (see
    /// [`RoutePlan::count_queries`]).
    probes: u64,
}

impl CycleSink for InteriorStageSink<'_, '_> {
    fn can_send(&mut self, output: OutputPort, front: FrontMeta) -> bool {
        let ctx = self.ctx;
        if !ctx.blocking {
            return true;
        }
        // A grant through `output` always takes the packet probed here
        // most recently (the crossbar skips taken outputs), so the parked
        // route is the granted packet's when `depart` fires.
        self.probes += 1;
        let route = ctx
            .plan
            .departure_route_uncounted(ctx.stage, self.sw, output, front.dest);
        self.scratch[output.index()] = Some(route);
        let slots = front.slots_needed(DEFAULT_SLOT_BYTES);
        let primary_ok = !ctx.faults.is_some_and(|f| {
            f.link_down(
                ctx.per_stage,
                ctx.radix,
                ctx.stage + 1,
                route.next_switch,
                route.next_port.index(),
                ctx.cycle,
            )
        }) && {
            let idx = (route.next_switch * ctx.radix + route.next_port.index()) * ctx.radix
                + route.next_output.index();
            slots <= ctx.caps[idx] as usize
        };
        if primary_ok {
            return true;
        }
        // Adaptive recovery: the departure may still leave through the
        // alternate output (misroute-on-block), so the probe passes if
        // the deflection target looks viable. The merge re-checks both
        // live and charges the misroute budget.
        let Some(recovery) = ctx.recovery.filter(|r| r.adaptive) else {
            return false; // hold: link out or downstream space exhausted
        };
        self.probes += 1;
        let alt_out = ctx.plan.alternate_output(ctx.stage, self.sw, output);
        let alt = ctx
            .plan
            .departure_route_uncounted(ctx.stage, self.sw, alt_out, front.dest);
        let alt_slot = (ctx.stage + 1) * ctx.per_stage * ctx.radix
            + alt.next_switch * ctx.radix
            + alt.next_port.index();
        if recovery.believed_down(alt_slot, ctx.cycle)
            || ctx.faults.is_some_and(|f| {
                f.link_down(
                    ctx.per_stage,
                    ctx.radix,
                    ctx.stage + 1,
                    alt.next_switch,
                    alt.next_port.index(),
                    ctx.cycle,
                )
            })
        {
            return false;
        }
        let idx = (alt.next_switch * ctx.radix + alt.next_port.index()) * ctx.radix
            + alt.next_output.index();
        slots <= ctx.caps[idx] as usize
    }

    fn depart(&mut self, _input: InputPort, output: OutputPort, packet: Packet) {
        let route = if self.ctx.blocking {
            self.scratch[output.index()].take()
        } else {
            None
        };
        self.records.push(DepartRecord {
            sw: self.sw,
            output,
            route,
            packet,
        });
    }
}

/// A generated packet waiting at its source, in compact form.
///
/// Holds exactly the identity a [`Packet`] is built from — serial,
/// destination, length, birth cycle — plus the corruption flag a fault
/// plan may have stamped at generation time. `materialize` rebuilds the
/// identical `Packet` (the source is the queue index), so deferring
/// construction to injection time is unobservable.
#[derive(Debug, Clone, Copy)]
struct PendingPacket {
    serial: u64,
    birth_cycle: u64,
    dest: u32,
    length_bytes: u32,
    corrupt: bool,
}

impl PendingPacket {
    fn materialize(self, source: usize) -> Packet {
        let mut packet = Packet::builder(NodeId::new(source), NodeId::new(self.dest as usize))
            .id(PacketId::new(self.serial))
            .length_bytes(self.length_bytes as usize)
            .birth_cycle(self.birth_cycle)
            .build();
        if self.corrupt {
            packet.corrupt_payload();
        }
        packet
    }
}

/// The simulator: a grid of switches, source queues and sinks.
///
/// `NetworkSim` is generic over two axes:
///
/// * the **buffer type** `B` of every switch. The default, [`AnyBuffer`],
///   selects the design at run time from the configuration's
///   [`BufferKind`] through enum dispatch; instantiate with a concrete
///   design (`NetworkSim::<DamqBuffer>::typed(..)`) to monomorphize the
///   whole data path for that design.
/// * the [`TelemetrySink`] `S`. The default [`NullSink`] compiles every
///   instrumentation point away, so [`NetworkSim::new`] behaves exactly
///   as before telemetry existed. Pass a real sink to
///   [`NetworkSim::with_sink`] to stream cycle-stamped lifecycle events
///   (see `docs/OBSERVABILITY.md`).
///
/// Routing is resolved through a [`RoutePlan`] precomputed at
/// construction: the per-packet path performs indexed loads instead of
/// shuffle/digit arithmetic, and each departure is routed exactly once.
#[derive(Debug)]
pub struct NetworkSim<B: SwitchBuffer = AnyBuffer, S: TelemetrySink<Event> = NullSink> {
    config: NetworkConfig,
    topology: Topology,
    plan: RoutePlan,
    /// `switches[stage][index]`.
    switches: Vec<Vec<Switch<B>>>,
    /// Generated-but-not-yet-injected packets, held in compact form —
    /// the full [`Packet`] (including its identity checksum) is
    /// materialized at injection time. Past saturation these queues grow
    /// without bound, so the compact record (32 bytes vs a full packet)
    /// halves the steady-state working set, and the packets the window
    /// never injects are never built at all.
    source_queues: Vec<VecDeque<PendingPacket>>,
    /// On/off state per source (always `true` under Bernoulli arrivals).
    source_on: Vec<bool>,
    /// Reused per-stage backpressure snapshot
    /// (`per_stage x radix x radix`, see [`ProbeCtx::caps`]): refilled
    /// serially from the downstream stage before each interior phase A
    /// under the blocking protocol.
    accept_caps: Vec<u16>,
    /// The sharded stage engine: island partition, phase pool, and the
    /// per-island lanes carrying probe scratch and departure records.
    /// One island on one thread by default; see
    /// [`NetworkSim::with_threads`].
    engine: ParallelEngine,
    ids: PacketIdSource,
    rng: StdRng,
    cycle: u64,
    metrics: NetMetrics,
    /// Named-metric registry (disabled by default; see
    /// [`NetworkSim::with_metrics`]). Updated only in the serial
    /// sections of the cycle, so snapshots are lane-count-independent.
    registry: MetricsRegistry,
    /// Static registry ids, resolved once at construction.
    metric_ids: MetricIds,
    /// Whether the wall-clock phase profiler is on (see
    /// [`NetworkSim::with_phase_timing`]).
    phase_timing: bool,
    /// Accumulated serial phase-B merge nanoseconds (profiler only).
    merge_ns: u64,
    /// Per-switch quiescence map, flat `stage * per_stage + switch`.
    /// Invariant (audited as `quiescence-map`): at every phase-A entry
    /// and at end of cycle, `quiescent[i]` ⇔ that switch holds zero
    /// packets. Maintained incrementally, writes only in serial
    /// sections: a successful receive (merge, inject) clears the
    /// receiver's bit; each departure record re-derives the
    /// transmitter's bit from [`Switch::is_quiescent`].
    quiescent: Vec<bool>,
    /// Whether phase A advances quiescent switches with
    /// [`Switch::note_idle_cycle`] instead of a full arbitration sweep
    /// (on by default; see [`NetworkSim::with_idle_skip`]).
    idle_skip: bool,
    /// Lifetime count of idle-skipped switch-cycles.
    idle_skipped: u64,
    ledger: ConservationLedger,
    faults: Option<FaultState>,
    fault_ledger: FaultLedger,
    /// Fault-ledger values already mirrored into the registry's
    /// `net.fault.*` counters (the per-cycle sync adds the delta).
    reported_faults: FaultLedger,
    /// Recovery machinery, present only while the configuration's
    /// [`RecoveryConfig`] is active.
    recovery: Option<RecoveryState>,
    sink: S,
}

/// Registry ids for the simulator's built-in metrics, resolved once at
/// construction so the hot path never does a name lookup.
///
/// Every name registered here must be listed in the metrics reference
/// table of `docs/OBSERVABILITY.md` (workspace lint 10).
#[derive(Debug)]
struct MetricIds {
    /// Network cycles stepped.
    cycles: CounterId,
    /// Packets generated at the sources.
    generated: CounterId,
    /// Packets injected into stage 0.
    injected: CounterId,
    /// Packets delivered to their destination terminal.
    delivered: CounterId,
    /// Packets discarded at the network entry.
    discarded_entry: CounterId,
    /// Packets discarded inside the network.
    discarded_network: CounterId,
    /// Source-to-sink latency per delivered packet.
    latency: HistogramId,
    /// Injection-to-sink latency per delivered packet.
    network_latency: HistogramId,
    /// Per-buffer occupied slots, sampled every cycle.
    occupancy: HistogramId,
    /// Switch-cycles advanced by the quiescent fast path.
    idle_skipped: CounterId,
    /// Resend attempts made by link-level retransmission.
    retransmits: CounterId,
    /// Parked packets given up after exhausting their retries.
    retry_exhausted: CounterId,
    /// Packets deflected through an alternate output (adaptive
    /// rerouting).
    rerouted: CounterId,
    /// Wrong-sink arrivals recirculated end-to-end instead of dropped.
    recirculated: CounterId,
    /// Fault-ledger mirror: buffer slots killed.
    fault_slots_killed: CounterId,
    /// Fault-ledger mirror: packets lost to link outages.
    fault_link_dropped: CounterId,
    /// Fault-ledger mirror: corrupted packets refused at sinks.
    fault_corrupt_dropped: CounterId,
    /// Fault-ledger mirror: transiently misrouted packets dropped.
    fault_misrouted: CounterId,
    /// Fault-ledger mirror: blocking probes invalidated by a misroute.
    fault_probe_invalidated: CounterId,
}

impl MetricIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        MetricIds {
            cycles: reg.counter("net.cycles"),
            generated: reg.counter("net.generated"),
            injected: reg.counter("net.injected"),
            delivered: reg.counter("net.delivered"),
            discarded_entry: reg.counter("net.discarded_entry"),
            discarded_network: reg.counter("net.discarded_network"),
            latency: reg.histogram("net.latency_cycles"),
            network_latency: reg.histogram("net.network_latency_cycles"),
            occupancy: reg.histogram("net.occupancy_slots"),
            idle_skipped: reg.counter("net.idle_skipped"),
            retransmits: reg.counter("net.retransmits"),
            retry_exhausted: reg.counter("net.retry_exhausted"),
            rerouted: reg.counter("net.rerouted"),
            recirculated: reg.counter("net.recirculated"),
            fault_slots_killed: reg.counter("net.fault.slots_killed"),
            fault_link_dropped: reg.counter("net.fault.link_dropped"),
            fault_corrupt_dropped: reg.counter("net.fault.corrupt_dropped"),
            fault_misrouted: reg.counter("net.fault.misrouted"),
            fault_probe_invalidated: reg.counter("net.fault.probe_invalidated"),
        }
    }
}

impl NetworkSim {
    /// Builds the network without telemetry, with run-time buffer-design
    /// selection (the [`AnyBuffer`] default).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the topology dimensions are invalid or
    /// the buffer configuration is rejected (e.g. SAMQ slots not divisible
    /// by the radix).
    pub fn new(config: NetworkConfig) -> Result<Self, NetworkError> {
        Self::with_sink(config, NullSink)
    }

    /// Builds the network with a fault plan installed (see
    /// [`NetworkSim::install_fault_plan`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] as [`NetworkSim::new`] does.
    pub fn with_faults(config: NetworkConfig, plan: FaultPlan) -> Result<Self, NetworkError> {
        let mut sim = Self::new(config)?;
        sim.install_fault_plan(plan);
        Ok(sim)
    }
}

impl<S: TelemetrySink<Event>> NetworkSim<AnyBuffer, S> {
    /// Builds the network with a telemetry sink attached.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the topology dimensions are invalid or
    /// the buffer configuration is rejected (e.g. SAMQ slots not divisible
    /// by the radix).
    pub fn with_sink(config: NetworkConfig, sink: S) -> Result<Self, NetworkError> {
        Self::typed_with_sink(config, sink)
    }
}

impl<B: BuildBuffer> NetworkSim<B> {
    /// Builds the network without telemetry, with the buffer type fixed
    /// by the caller (`NetworkSim::<DamqBuffer>::typed(..)`). Concrete
    /// designs ignore the configuration's `buffer_kind`; kind-erased
    /// types ([`AnyBuffer`], `Box<dyn SwitchBuffer>`) honour it.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] as [`NetworkSim::new`] does.
    pub fn typed(config: NetworkConfig) -> Result<Self, NetworkError> {
        Self::typed_with_sink(config, NullSink)
    }
}

impl<B: BuildBuffer, S: TelemetrySink<Event>> NetworkSim<B, S> {
    /// Builds the network with both the buffer type and the telemetry
    /// sink chosen by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] as [`NetworkSim::new`] does.
    pub fn typed_with_sink(config: NetworkConfig, sink: S) -> Result<Self, NetworkError> {
        let topology = Topology::build(config.topology_kind, config.size, config.radix)?;
        let plan = RoutePlan::new(&topology);
        let switch_config = SwitchConfig::new(config.radix)
            .buffer_kind(config.buffer_kind)
            .slots_per_buffer(config.slots_per_buffer)
            .arbiter_policy(config.arbiter_policy)
            .flow_control(config.flow_control);
        let per_stage = topology.switches_per_stage();
        let stages = topology.stages();
        let mut switches = Vec::with_capacity(stages);
        for _stage in 0..stages {
            let mut row = Vec::with_capacity(per_stage);
            for _ in 0..per_stage {
                row.push(Switch::typed(switch_config)?);
            }
            switches.push(row);
        }
        let mut registry = MetricsRegistry::disabled();
        let metric_ids = MetricIds::register(&mut registry);
        Ok(NetworkSim {
            config,
            topology,
            plan,
            switches,
            source_queues: vec![VecDeque::new(); config.size],
            source_on: vec![true; config.size],
            accept_caps: vec![0; per_stage * config.radix * config.radix],
            engine: ParallelEngine::new(1, per_stage, config.radix),
            ids: PacketIdSource::new(),
            rng: StdRng::seed_from_u64(config.seed),
            cycle: 0,
            metrics: NetMetrics::new(config.size),
            registry,
            metric_ids,
            phase_timing: false,
            merge_ns: 0,
            // Every switch starts empty, hence quiescent.
            quiescent: vec![true; stages * per_stage],
            idle_skip: true,
            idle_skipped: 0,
            ledger: ConservationLedger::default(),
            faults: None,
            fault_ledger: FaultLedger::default(),
            reported_faults: FaultLedger::default(),
            recovery: config.recovery.active().then(|| {
                RecoveryState::new(
                    config.recovery,
                    stages,
                    per_stage,
                    config.radix,
                    config.size,
                )
            }),
            sink,
        })
    }
}

impl<B: SwitchBuffer, S: TelemetrySink<Event>> NetworkSim<B, S> {
    /// Read access to the telemetry sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the telemetry sink (e.g. to pause a
    /// [`MemorySink`](damq_telemetry::MemorySink) during warm-up).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the simulator, flushing and returning the sink.
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }

    /// Emits a [`RunMeta`](EventKind::RunMeta) event describing this run.
    ///
    /// Call once before stepping so trace consumers can tell runs apart;
    /// `note` is free-form (traffic pattern, load, seed).
    pub fn emit_run_meta(&mut self, note: &str) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record(Event::new(
            self.cycle,
            EventKind::RunMeta {
                design: self.config.buffer_kind.name().to_string(),
                terminals: self.config.size as u32,
                radix: self.config.radix as u32,
                stages: self.topology.stages() as u32,
                slots: self.config.slots_per_buffer as u32,
                note: note.to_string(),
            },
        ));
    }

    /// The experiment configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The wiring.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The precomputed routing tables (and their query counter).
    pub fn route_plan(&self) -> &RoutePlan {
        &self.plan
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Measurement counters for the current window.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Packets waiting in source queues.
    pub fn source_backlog(&self) -> usize {
        self.source_queues.iter().map(VecDeque::len).sum()
    }

    /// Installs a fault plan, replacing any previous one.
    ///
    /// Events already due are applied at the start of the next
    /// [`step`](NetworkSim::step); sites that fall outside this topology
    /// are skipped (plans are topology-agnostic index schedules). The
    /// same configuration and plan always replay the identical faulted
    /// run.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(
            plan,
            self.topology.stages(),
            self.topology.switches_per_stage(),
            self.config.radix,
            self.config.size,
        ));
    }

    /// Tally of every fault actually applied so far.
    pub fn fault_ledger(&self) -> FaultLedger {
        self.fault_ledger
    }

    /// Buffer slots lost to fault injection across the whole network.
    pub fn dead_slots(&self) -> usize {
        self.switches
            .iter()
            .flatten()
            .map(|sw| sw.dead_slots())
            .sum()
    }

    /// Applies every plan event due at the current cycle: dead slots and
    /// link outages take effect immediately; corruptions and misroutes arm
    /// and strike on the next matching packet.
    fn apply_due_faults(&mut self) {
        let Some(mut faults) = self.faults.take() else {
            return;
        };
        let per_stage = self.topology.switches_per_stage();
        let radix = self.config.radix;
        let stages = self.topology.stages();
        while let Some(&event) = faults.plan.events().get(faults.next_event) {
            if event.cycle() > self.cycle {
                break;
            }
            faults.next_event += 1;
            match event {
                FaultEvent::DeadSlot {
                    site, queue_hint, ..
                } => {
                    if site.stage >= stages || site.switch >= per_stage || site.input >= radix {
                        continue;
                    }
                    let killed = self.switches[site.stage][site.switch]
                        .kill_buffer_slot(InputPort::new(site.input), OutputPort::new(queue_hint));
                    if killed {
                        self.fault_ledger.slots_killed += 1;
                        if self.sink.enabled() {
                            self.sink.record(Event::new(
                                self.cycle,
                                EventKind::SlotKilled {
                                    stage: site.stage as u32,
                                    switch: site.switch as u32,
                                    input: site.input as u32,
                                },
                            ));
                        }
                    }
                }
                FaultEvent::LinkDown { site, until, .. } => {
                    if site.stage >= stages || site.switch >= per_stage || site.input >= radix {
                        continue;
                    }
                    let idx =
                        faults.link_index(per_stage, radix, site.stage, site.switch, site.input);
                    faults.link_down_until[idx] = faults.link_down_until[idx].max(until);
                    if let Some(rec) = self.recovery.as_mut() {
                        // Recovery learns of the outage one detection
                        // window after it strikes.
                        let window = rec.config.detection_window;
                        rec.schedule_detection(self.cycle + window, idx, until);
                    }
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::LinkDown {
                                stage: site.stage as u32,
                                switch: site.switch as u32,
                                input: site.input as u32,
                                until,
                            },
                        ));
                    }
                }
                FaultEvent::CorruptPayload { source, .. } if source < self.config.size => {
                    faults.corrupt_pending[source] += 1;
                }
                FaultEvent::Misroute { stage, switch, .. }
                    if stage < stages && switch < per_stage =>
                {
                    faults.misroute_pending[stage * per_stage + switch] += 1;
                }
                // `FaultEvent` is non-exhaustive: fault classes this
                // simulator does not model are skipped, not errors.
                _ => {}
            }
        }
        self.faults = Some(faults);
    }

    /// Packets currently parked in recovery's retransmit buffers
    /// (accounted by the conservation audit).
    pub fn recovery_held(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.pending.len())
    }

    /// Drives the recovery protocols at the start of each cycle
    /// (serial, right after fault application): promotes link-fault
    /// detections whose window elapsed into believed link health, then
    /// services every due retransmit entry — resending, backing off,
    /// or giving up. All deadlines are cycle counts, so the schedule is
    /// seed-stable and lane-count-independent.
    fn service_recovery(&mut self) {
        let Some(mut rec) = self.recovery.take() else {
            return;
        };
        let cycle = self.cycle;
        // Believe every detection whose window has elapsed (kept in
        // effective-cycle order by construction).
        let mut promoted = 0;
        while let Some(&(effective, slot, until)) = rec.detections.get(promoted) {
            if effective > cycle {
                break;
            }
            if rec.believed_down_until[slot] < until {
                rec.believed_down_until[slot] = until;
            }
            promoted += 1;
        }
        rec.detections.drain(..promoted);
        if rec.pending.is_empty() {
            self.recovery = Some(rec);
            return;
        }
        let per_stage = self.topology.switches_per_stage();
        let radix = self.config.radix;
        let entries = std::mem::take(&mut rec.pending);
        for mut entry in entries {
            if entry.due > cycle {
                rec.pending.push(entry);
                continue;
            }
            if entry.link < rec.sink_base && !entry.deferred && rec.believed_down(entry.link, cycle)
            {
                // The link is still believed out: wait for believed
                // health instead of burning an attempt. The free wait
                // is capped at one maximum-backoff deferral per attempt
                // — when the capped deadline arrives the resend goes
                // out against ground truth regardless, so a permanently
                // dead link still burns through its retries and gives
                // the packet up (bounded memory). The new deadline is
                // itself deterministic.
                entry.deferred = true;
                let cap = cycle + rec.config.backoff(rec.config.max_backoff_exp);
                entry.due = rec.believed_down_until[entry.link].min(cap).max(cycle + 1);
                rec.pending.push(entry);
                continue;
            }
            // One resend attempt.
            entry.deferred = false;
            let attempt = entry.attempts + 1;
            self.registry.add(self.metric_ids.retransmits, 1);
            if self.sink.enabled() {
                self.sink.record(Event::new(
                    cycle,
                    EventKind::Retransmit {
                        packet: entry.packet.id().serial(),
                        stage: entry.stage,
                        switch: entry.switch,
                        attempt,
                        seq: entry.seq,
                    },
                ));
            }
            match entry.kind {
                HopKind::Final => {
                    // Sinks always accept: the clean upstream copy is
                    // resent end-to-end and delivered.
                    entry.packet.repair_payload();
                    let sink = entry.packet.dest();
                    let total = cycle.saturating_sub(entry.packet.birth_cycle());
                    let injected = entry
                        .packet
                        .injected_cycle()
                        .unwrap_or(entry.packet.birth_cycle());
                    let network = cycle.saturating_sub(injected);
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            cycle,
                            EventKind::Delivered {
                                packet: entry.packet.id().serial(),
                                sink: sink.index() as u32,
                            },
                        ));
                    }
                    self.metrics.record_delivery_from(
                        entry.packet.source().index(),
                        sink.index(),
                        total,
                        network,
                    );
                    self.registry.add(self.metric_ids.delivered, 1);
                    self.registry.observe(self.metric_ids.latency, total);
                    self.registry
                        .observe(self.metric_ids.network_latency, network);
                    self.ledger.delivered += 1;
                    rec.held[entry.link] -= 1;
                    continue;
                }
                HopKind::Interior {
                    stage,
                    next_switch,
                    next_port,
                    next_out,
                } => {
                    let link_dead = self.faults.as_ref().is_some_and(|f| {
                        f.link_down(per_stage, radix, stage, next_switch, next_port, cycle)
                    });
                    if !link_dead {
                        let slots = entry.packet.slots_needed(DEFAULT_SLOT_BYTES);
                        let port = InputPort::new(next_port);
                        let out = OutputPort::new(next_out);
                        if self.switches[stage][next_switch].can_accept(port, out, slots) {
                            match self.switches[stage][next_switch].receive(port, out, entry.packet)
                            {
                                Ok(()) => {
                                    self.quiescent[stage * per_stage + next_switch] = false;
                                    rec.held[entry.link] -= 1;
                                    continue;
                                }
                                Err(rejected) => {
                                    debug_assert!(false, "can_accept pre-checked the resend");
                                    entry.packet = rejected.into_packet();
                                }
                            }
                        }
                    }
                }
                HopKind::Entry { sw, port, out } => {
                    let link_dead = self
                        .faults
                        .as_ref()
                        .is_some_and(|f| f.link_down(per_stage, radix, 0, sw, port, cycle));
                    if !link_dead {
                        let slots = entry.packet.slots_needed(DEFAULT_SLOT_BYTES);
                        let port = InputPort::new(port);
                        let out = OutputPort::new(out);
                        if self.switches[0][sw].can_accept(port, out, slots) {
                            let serial = entry.packet.id().serial();
                            let src = entry.packet.source().index();
                            match self.switches[0][sw].receive(port, out, entry.packet) {
                                Ok(()) => {
                                    self.quiescent[sw] = false;
                                    if self.sink.enabled() {
                                        self.sink.record(Event::new(
                                            cycle,
                                            EventKind::Injected {
                                                packet: serial,
                                                source: src as u32,
                                            },
                                        ));
                                    }
                                    self.metrics.record_injected();
                                    self.registry.add(self.metric_ids.injected, 1);
                                    rec.held[entry.link] -= 1;
                                    continue;
                                }
                                Err(rejected) => {
                                    debug_assert!(false, "can_accept pre-checked the resend");
                                    entry.packet = rejected.into_packet();
                                }
                            }
                        }
                    }
                }
            }
            // The attempt failed: the copy stays parked.
            entry.attempts = attempt;
            rec.note_loss(entry.link, cycle);
            if attempt >= rec.config.max_retries.max(1) {
                // Retries exhausted: the protocol gives the packet up.
                rec.held[entry.link] -= 1;
                self.registry.add(self.metric_ids.retry_exhausted, 1);
                if self.sink.enabled() {
                    self.sink.record(Event::new(
                        cycle,
                        EventKind::GaveUp {
                            packet: entry.packet.id().serial(),
                            stage: entry.stage,
                            switch: entry.switch,
                            attempts: attempt,
                        },
                    ));
                }
                self.ledger.discarded += 1;
                if matches!(entry.kind, HopKind::Entry { .. }) {
                    self.metrics.record_entry_discard();
                    self.registry.add(self.metric_ids.discarded_entry, 1);
                } else {
                    self.metrics.record_network_discard();
                    self.registry.add(self.metric_ids.discarded_network, 1);
                }
            } else {
                entry.due = cycle + rec.config.backoff(entry.attempts);
                rec.pending.push(entry);
            }
        }
        self.recovery = Some(rec);
    }

    /// Mirrors fault-ledger deltas into the `net.fault.*` registry
    /// counters (serial, once per cycle) so fault state shows up in
    /// `obs_report` snapshots without parsing JSONL traces.
    fn sync_fault_metrics(&mut self) {
        let cur = self.fault_ledger;
        let prev = self.reported_faults;
        self.registry.add(
            self.metric_ids.fault_slots_killed,
            cur.slots_killed - prev.slots_killed,
        );
        self.registry.add(
            self.metric_ids.fault_link_dropped,
            cur.link_dropped - prev.link_dropped,
        );
        self.registry.add(
            self.metric_ids.fault_corrupt_dropped,
            cur.corrupt_dropped - prev.corrupt_dropped,
        );
        self.registry.add(
            self.metric_ids.fault_misrouted,
            cur.misrouted - prev.misrouted,
        );
        self.registry.add(
            self.metric_ids.fault_probe_invalidated,
            cur.probe_invalidated - prev.probe_invalidated,
        );
        self.reported_faults = cur;
    }

    /// Aggregated buffer operation counters over every switch in the
    /// network (used by the dispatch-equivalence tests to compare
    /// simulation paths operation-for-operation).
    pub fn aggregate_buffer_stats(&self) -> damq_core::BufferStats {
        let mut total = damq_core::BufferStats::new();
        for row in &self.switches {
            for sw in row {
                total.merge(&sw.aggregate_stats());
            }
        }
        total
    }

    /// Packets resident in switch buffers.
    pub fn packets_in_flight(&self) -> usize {
        self.switches
            .iter()
            .flatten()
            .map(|sw| sw.packets_resident())
            .sum()
    }

    /// Buffer-occupancy fraction of each switch in `stage` (a snapshot;
    /// used to visualise tree saturation spreading stage by stage).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_occupancy(&self, stage: usize) -> Vec<f64> {
        self.switches[stage]
            .iter()
            .map(|sw| sw.occupancy_fraction())
            .collect()
    }

    /// Mean buffer-occupancy fraction per stage, input side first.
    pub fn occupancy_by_stage(&self) -> Vec<f64> {
        self.switches
            .iter()
            .map(|row| row.iter().map(|sw| sw.occupancy_fraction()).sum::<f64>() / row.len() as f64)
            .collect()
    }

    /// Shards the cycle loop over `threads` simulation lanes: every
    /// pipeline stage is split into contiguous switch islands
    /// ([`IslandPartition`](crate::IslandPartition), one per lane) that
    /// arbitrate and probe concurrently, then merge their departures
    /// serially in a fixed order. The default is 1 (no worker threads;
    /// phases run inline).
    ///
    /// `threads` is clamped to at least 1; asking for more lanes than a
    /// stage has switches caps the island count at one switch per
    /// island.
    ///
    /// # Determinism
    ///
    /// Thread count is **not** part of the experiment: a serial run and
    /// an N-thread run of the same configuration produce byte-identical
    /// metrics, telemetry traces and fault ledgers. Island phases only
    /// touch pairwise-disjoint switch state, and everything
    /// order-sensitive (receives, metrics, events) happens in the
    /// serial merge — see `docs/ARCHITECTURE.md` for the argument and
    /// `crates/net/tests/parallel_equivalence.rs` for the proof by
    /// fingerprint.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = ParallelEngine::new(
            threads.max(1),
            self.topology.switches_per_stage(),
            self.config.radix,
        );
        self.engine.set_timing(self.phase_timing);
        self
    }

    /// Enables the named-metric registry: cycle-domain counters and
    /// log-scale latency/occupancy histograms, readable as a
    /// deterministic JSON snapshot via
    /// [`metrics_snapshot`](NetworkSim::metrics_snapshot).
    ///
    /// Off by default; while off, every registry update is a single
    /// branch on a cold flag (pinned by the `no_op_registry_overhead`
    /// bench). All registry updates happen in the serial sections of
    /// the cycle, so snapshots are byte-identical at any lane count
    /// (pinned by `parallel_equivalence.rs`).
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.registry.set_enabled(true);
        self
    }

    /// Turns the quiescent-switch fast path on or off (on by default).
    ///
    /// With it on, phase A advances a switch whose quiescence bit is set
    /// with [`Switch::note_idle_cycle`] — one counter tick instead of an
    /// arbitration sweep over its buffers. The fast path is byte-identical
    /// to arbitrating an empty switch (pinned per switch by
    /// `idle_cycle_is_byte_identical_to_empty_transmit_cycle` and
    /// end-to-end by `idle_skip_correctness`), so the toggle exists only
    /// to measure the speedup and to cross-check equivalence.
    #[must_use]
    pub fn with_idle_skip(mut self, enabled: bool) -> Self {
        self.idle_skip = enabled;
        self
    }

    /// Lifetime count of switch-cycles advanced by the quiescent fast
    /// path (also exported as the `net.idle_skipped` registry counter).
    pub fn idle_skipped_total(&self) -> u64 {
        self.idle_skipped
    }

    /// The named-metric registry (disabled unless
    /// [`with_metrics`](NetworkSim::with_metrics) was called).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The registry snapshot as deterministic JSON — counters and
    /// histogram percentiles in registration order, integers only.
    pub fn metrics_snapshot(&self) -> String {
        self.registry.snapshot_json()
    }

    /// Enables the wall-clock phase profiler: per-lane phase-A busy
    /// time, barrier waits, and serial phase-B merge time, drained via
    /// [`phase_profile`](NetworkSim::phase_profile).
    ///
    /// Profiling measures *harness* wall-clock only — it never touches
    /// simulation state, so enabling it cannot change any result.
    #[must_use]
    pub fn with_phase_timing(mut self) -> Self {
        self.phase_timing = true;
        self.engine.set_timing(true);
        self
    }

    /// Drains the accumulated phase profile (zeroing the counters).
    /// Empty unless [`with_phase_timing`](NetworkSim::with_phase_timing)
    /// was called.
    pub fn phase_profile(&mut self) -> PhaseProfile {
        let times = self.engine.take_times();
        PhaseProfile {
            lane_busy_ns: times.lane_busy_ns,
            barrier_wait_ns: times.barrier_wait_ns,
            merge_ns: std::mem::take(&mut self.merge_ns),
            phases: times.phases,
        }
    }

    /// Number of simulation lanes stage phases run on (1 = serial).
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The stage partition in use: which contiguous switch island each
    /// lane steps.
    pub fn island_partition(&self) -> &crate::IslandPartition {
        self.engine.partition()
    }

    /// Simulates one network cycle (12 clock cycles).
    ///
    /// With the `strict-audit` feature on, every cycle ends with a full
    /// audit: buffer structure in every switch plus the packet-conservation
    /// balance.
    ///
    /// # Determinism
    ///
    /// One cycle is: generate (serial), advance stages last-to-first
    /// (phase A per stage runs islands concurrently when
    /// [`NetworkSim::with_threads`] raised the lane count; phase B
    /// merges serially), inject (serial). The same configuration and
    /// seed replay the identical cycle regardless of the lane count.
    ///
    /// # Panics
    ///
    /// Panics under `strict-audit` if the audit fails.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.metrics.record_cycle();
        self.registry.add(self.metric_ids.cycles, 1);
        if self.faults.is_some() {
            self.apply_due_faults();
        }
        if self.recovery.is_some() {
            self.service_recovery();
        }
        self.generate();
        let forwarded = self.advance_stages();
        self.inject();
        self.sync_fault_metrics();
        if self.registry.enabled() {
            self.observe_occupancy();
        }
        if self.sink.enabled() {
            self.emit_cycle_sample(forwarded);
        }
        #[cfg(feature = "strict-audit")]
        if let Err(e) = self.audit() {
            // lint: allow — strict-audit must stop at the offending cycle.
            panic!("strict-audit at cycle {}: {e}", self.cycle);
        }
    }

    /// Simulates `cycles` network cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs `cycles` cycles and then zeroes the metrics: the standard
    /// warm-up before a measurement window.
    pub fn warm_up(&mut self, cycles: u64) {
        self.run(cycles);
        self.metrics.reset();
    }

    fn generate(&mut self) {
        let size = self.config.size;
        for src in 0..size {
            let generate_probability = match self.config.arrivals {
                ArrivalProcess::Bernoulli => self.config.offered_load,
                ArrivalProcess::OnOff { duty, .. } if duty >= 1.0 => {
                    // Always-on degenerates to Bernoulli.
                    self.config.offered_load
                }
                ArrivalProcess::OnOff { mean_burst, duty } => {
                    // Two-state modulation: leave ON w.p. 1/mean_burst,
                    // enter ON at the rate that makes the stationary ON
                    // fraction equal the duty cycle.
                    let exit_on = 1.0 / mean_burst;
                    let enter_on = (duty * exit_on / (1.0 - duty)).min(1.0);
                    let flip = if self.source_on[src] {
                        exit_on
                    } else {
                        enter_on
                    };
                    if self.rng.random_bool(flip) {
                        self.source_on[src] = !self.source_on[src];
                    }
                    if self.source_on[src] {
                        (self.config.offered_load / duty).min(1.0)
                    } else {
                        0.0
                    }
                }
            };
            if generate_probability <= 0.0 || !self.rng.random_bool(generate_probability) {
                continue;
            }
            let source = NodeId::new(src);
            let dest = self.config.pattern.sample(&mut self.rng, source, size);
            let length = self.config.packet_lengths.sample(&mut self.rng);
            let pending = PendingPacket {
                serial: self.ids.next_id().serial(),
                birth_cycle: self.cycle,
                dest: dest.index() as u32,
                length_bytes: length as u32,
                corrupt: self
                    .faults
                    .as_mut()
                    .is_some_and(|faults| faults.take_corruption(src)),
            };
            if self.sink.enabled() {
                self.sink.record(Event::new(
                    self.cycle,
                    EventKind::Generated {
                        packet: pending.serial,
                        source: src as u32,
                        dest: pending.dest,
                    },
                ));
            }
            self.source_queues[src].push_back(pending);
            self.metrics.record_generated();
            self.registry.add(self.metric_ids.generated, 1);
            self.ledger.generated += 1;
        }
    }

    /// Returns per-stage forwarded-packet counts for the cycle sample
    /// (empty, allocation-free, while the sink is disabled).
    ///
    /// Each stage is stepped in two phases. **Phase A** arbitrates every
    /// switch — islands concurrently when [`NetworkSim::with_threads`]
    /// raised the lane count — and collects each departure (with the
    /// backpressure probe's parked route) into its island's lane.
    /// **Phase B** drains the lanes in ascending switch order and
    /// replays the serial departure loop: misroute faults, routing
    /// fallback, telemetry, downstream receives, metrics. Only phase B
    /// mutates shared state, so the phased loop is byte-identical to a
    /// serial sweep at any lane count (see `docs/ARCHITECTURE.md`).
    fn advance_stages(&mut self) -> Vec<u32> {
        let stages = self.topology.stages();
        let per_stage = self.topology.switches_per_stage();
        let blocking = self.config.flow_control.requires_backpressure();
        let tracing = self.sink.enabled();
        let mut forwarded = if tracing {
            vec![0u32; stages]
        } else {
            Vec::new()
        };

        // Fault state leaves `self` for the stage loops so the phase-A
        // probes can read it while the switch grid is mutably borrowed;
        // recovery state leaves for the same reason (probes read its
        // believed link health, merges park and deflect through it).
        let mut faults = self.faults.take();
        let mut recovery = self.recovery.take();
        let radix = self.config.radix;
        let cycle = self.cycle;
        let islands = self.engine.islands();

        // Last stage delivers straight to the (always-ready) sinks.
        // Phase A: every switch arbitrates; no probing needed. Quiescent
        // switches take the idle fast path — one counter tick instead of
        // a buffer sweep.
        let last = stages - 1;
        let idle = IdleView {
            enabled: self.idle_skip,
            map: &self.quiescent[last * per_stage..(last + 1) * per_stage],
        };
        self.engine.collect(
            &mut self.switches[last],
            &idle,
            &|sw, switch: &mut Switch<B>, lane: &mut StageLane, idle: &IdleView<'_>| {
                debug_assert_eq!(idle.map[sw], switch.is_quiescent(), "stale quiescence bit");
                if idle.skip(sw) {
                    switch.note_idle_cycle();
                    lane.idle_skipped += 1;
                    return;
                }
                let mut sink = LastStageSink {
                    sw,
                    records: &mut lane.records,
                };
                switch.transmit_cycle_with(&mut sink);
            },
        );
        let skipped = self.engine.idle_skipped_in_phase();
        self.idle_skipped += skipped;
        self.registry.add(self.metric_ids.idle_skipped, skipped);
        // Phase B: deliver in ascending switch order.
        // lint: allow — harness wall-clock, never simulation state.
        let merge_start = self.phase_timing.then(Instant::now);
        for island in 0..islands {
            for rec in self.engine.lane_records(island) {
                let sw = rec.sw;
                // The record proves `sw` transmitted: re-derive its
                // quiescence bit from the post-arbitration residency
                // (idempotent; receives into this stage happen later, in
                // the previous stage's merge, and clear it again).
                self.quiescent[last * per_stage + sw] = self.switches[last][sw].is_quiescent();
                let misrouted_here = faults
                    .as_mut()
                    .is_some_and(|f| f.take_misroute(per_stage, last, sw));
                let out = if misrouted_here {
                    OutputPort::new((rec.output.index() + 1) % radix)
                } else {
                    rec.output
                };
                let sink = self.plan.sink_of(sw, out);
                let serial = rec.packet.id().serial();
                if tracing {
                    forwarded[last] += 1;
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::Forwarded {
                            packet: serial,
                            stage: last as u32,
                            switch: sw as u32,
                            output: out.index() as u32,
                        },
                    ));
                }
                if sink != rec.packet.dest() {
                    // A transient misroute (here or upstream) or a deliberate
                    // deflection carried the packet to the wrong terminal.
                    debug_assert!(
                        faults.is_some() || rec.packet.deflections() > 0,
                        "misrouted packet without faults"
                    );
                    // With retransmission on, the wrong sink NACKs and the
                    // packet recirculates from the hop buffer: it parks at
                    // the terminal slot of its *true* destination and is
                    // re-delivered by the retransmit timer.
                    if let Some(recv) = recovery.as_mut() {
                        let slot = recv.sink_slot(rec.packet.dest().index());
                        if recv.can_park(slot) {
                            self.registry.add(self.metric_ids.recirculated, 1);
                            if tracing {
                                self.sink.record(Event::new(
                                    self.cycle,
                                    EventKind::Recirculated {
                                        packet: serial,
                                        sink: sink.index() as u32,
                                    },
                                ));
                            }
                            recv.park(
                                slot,
                                cycle,
                                last as u32,
                                sw as u32,
                                HopKind::Final,
                                rec.packet,
                            );
                            continue;
                        }
                    }
                    if tracing {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::Misrouted {
                                packet: serial,
                                sink: sink.index() as u32,
                            },
                        ));
                    }
                    self.metrics.record_network_discard();
                    self.registry.add(self.metric_ids.discarded_network, 1);
                    self.ledger.discarded += 1;
                    self.fault_ledger.misrouted += 1;
                    continue;
                }
                if !rec.packet.verify_checksum() {
                    // Payload damaged in flight: the sink refuses delivery.
                    // With retransmission on the refusal is a NACK — the
                    // packet parks at the terminal hop and the timer resends
                    // a repaired copy (no discard is charged unless every
                    // retry is exhausted).
                    if let Some(recv) = recovery.as_mut() {
                        let slot = recv.sink_slot(rec.packet.dest().index());
                        if recv.can_park(slot) {
                            recv.park(
                                slot,
                                cycle,
                                last as u32,
                                sw as u32,
                                HopKind::Final,
                                rec.packet,
                            );
                            continue;
                        }
                    }
                    if tracing {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::CorruptDropped {
                                packet: serial,
                                sink: sink.index() as u32,
                            },
                        ));
                    }
                    self.metrics.record_network_discard();
                    self.registry.add(self.metric_ids.discarded_network, 1);
                    self.ledger.discarded += 1;
                    self.fault_ledger.corrupt_dropped += 1;
                    continue;
                }
                let total = self.cycle.saturating_sub(rec.packet.birth_cycle());
                let injected = rec
                    .packet
                    .injected_cycle()
                    .unwrap_or(rec.packet.birth_cycle());
                let network = self.cycle.saturating_sub(injected);
                if tracing {
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::Delivered {
                            packet: serial,
                            sink: sink.index() as u32,
                        },
                    ));
                }
                self.metrics.record_delivery_from(
                    rec.packet.source().index(),
                    sink.index(),
                    total,
                    network,
                );
                self.registry.add(self.metric_ids.delivered, 1);
                self.registry.observe(self.metric_ids.latency, total);
                self.registry
                    .observe(self.metric_ids.network_latency, network);
                self.ledger.delivered += 1;
            }
        }
        if let Some(start) = merge_start {
            self.merge_ns += start.elapsed().as_nanos() as u64;
        }

        // Earlier stages, last to first, feed their successor stage.
        for stage in (0..last).rev() {
            let (current_stages, later_stages) = self.switches.split_at_mut(stage + 1);
            let current = &mut current_stages[stage];
            let downstream = &mut later_stages[0];
            // Snapshot the downstream stage's admission capacities into
            // the flat reused matrix. The downstream stage is frozen for
            // the whole of this stage's phase A (its transmit and every
            // merge into it already ran), so the snapshot answers every
            // probe exactly as the live `can_accept` would — and islands
            // read a 256-byte array instead of chasing through foreign
            // switch state.
            if blocking {
                let link = radix * radix;
                for (sw, caps) in self.accept_caps.chunks_exact_mut(link).enumerate() {
                    downstream[sw].accept_capacities_into(caps);
                }
            }
            // Phase A: every island arbitrates its switches. Blocking
            // probes route, check the downstream link and read downstream
            // space; each departure leaves with the probe's parked route.
            let ctx = ProbeCtx {
                stage,
                per_stage,
                radix,
                cycle,
                blocking,
                plan: &self.plan,
                faults: faults.as_ref(),
                recovery: recovery.as_ref().map(|r| r.view()),
                caps: &self.accept_caps,
                idle: IdleView {
                    enabled: self.idle_skip,
                    map: &self.quiescent[stage * per_stage..(stage + 1) * per_stage],
                },
            };
            self.engine.collect(
                current,
                &ctx,
                &|sw, switch: &mut Switch<B>, lane: &mut StageLane, ctx: &ProbeCtx<'_>| {
                    debug_assert_eq!(
                        ctx.idle.map[sw],
                        switch.is_quiescent(),
                        "stale quiescence bit"
                    );
                    if ctx.idle.skip(sw) {
                        switch.note_idle_cycle();
                        lane.idle_skipped += 1;
                        return;
                    }
                    let StageLane {
                        scratch, records, ..
                    } = lane;
                    scratch.fill(None);
                    let mut sink = InteriorStageSink {
                        sw,
                        ctx,
                        scratch,
                        records,
                        probes: 0,
                    };
                    switch.transmit_cycle_with(&mut sink);
                    ctx.plan.count_queries(sink.probes);
                },
            );
            let skipped = self.engine.idle_skipped_in_phase();
            self.idle_skipped += skipped;
            self.registry.add(self.metric_ids.idle_skipped, skipped);
            // Phase B: merge departures in ascending switch order,
            // replaying the serial departure loop. Misroutes applied so
            // far in *this stage's* merge — the only mechanism that can
            // invalidate a phase-A probe (see the invariant at the
            // receive below).
            let mut stage_misroutes = 0u64;
            // Deflections applied so far in this stage's merge: like a
            // misroute, a deflection lands on an input its probe never
            // reserved and can therefore invalidate a later in-order
            // blocking departure in the same merge.
            let mut stage_deflections = 0u64;
            // lint: allow — harness wall-clock, never simulation state.
            let merge_start = self.phase_timing.then(Instant::now);
            for island in 0..islands {
                for rec in self.engine.lane_records(island) {
                    let sw = rec.sw;
                    // The record proves `sw` transmitted: re-derive its
                    // quiescence bit from the post-arbitration residency.
                    self.quiescent[stage * per_stage + sw] = current[sw].is_quiescent();
                    // Blocking probes parked the route on the record; the
                    // discarding path routes here — either way exactly one
                    // query per departure (misroutes pay one extra for the
                    // flip).
                    let misrouted_here = faults
                        .as_mut()
                        .is_some_and(|f| f.take_misroute(per_stage, stage, sw));
                    stage_misroutes += u64::from(misrouted_here);
                    let (out, route) = if misrouted_here {
                        let wrong = OutputPort::new((rec.output.index() + 1) % radix);
                        (
                            wrong,
                            self.plan
                                .departure_route(stage, sw, wrong, rec.packet.dest()),
                        )
                    } else {
                        let route = rec.route.unwrap_or_else(|| {
                            self.plan
                                .departure_route(stage, sw, rec.output, rec.packet.dest())
                        });
                        (rec.output, route)
                    };
                    let HopRoute {
                        next_switch,
                        next_port,
                        next_output: next_out,
                    } = route;
                    if tracing {
                        forwarded[stage] += 1;
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::Forwarded {
                                packet: rec.packet.id().serial(),
                                stage: stage as u32,
                                switch: sw as u32,
                                output: out.index() as u32,
                            },
                        ));
                    }
                    let serial = rec.packet.id().serial();
                    let link_dead = faults.as_ref().is_some_and(|f| {
                        f.link_down(
                            per_stage,
                            radix,
                            stage + 1,
                            next_switch,
                            next_port.index(),
                            cycle,
                        )
                    });
                    // `loss` carries the packet through the recovery ladder
                    // below whenever the primary hop fails (dead wire or a
                    // bounced receive); `None` means it was delivered.
                    let mut loss: Option<Packet> = None;
                    if link_dead {
                        // The packet would fly into the outage and be lost;
                        // the ladder below may still save it.
                        loss = Some(rec.packet);
                    } else {
                        match downstream[next_switch].receive(next_port, next_out, rec.packet) {
                            Ok(()) => {
                                // The receiver now holds a packet: it cannot
                                // idle-skip until it drains again.
                                self.quiescent[(stage + 1) * per_stage + next_switch] = false;
                            }
                            Err(rejected) => {
                                // Every rejection reason in the delivery path
                                // is handled explicitly (workspace lint 12):
                                // capacity and fault bounces are recoverable
                                // losses, structural rejects are programming
                                // errors in the route plan.
                                match rejected.reason {
                                    RejectReason::BufferFull
                                    | RejectReason::QueueFull
                                    | RejectReason::Faulted => {}
                                    RejectReason::PacketTooLarge | RejectReason::NoSuchOutput => {
                                        debug_assert!(
                                            false,
                                            "structural reject in the delivery path: {}",
                                            rejected.reason
                                        );
                                    }
                                    _ => {
                                        debug_assert!(
                                            false,
                                            "unknown reject reason in the delivery path: {}",
                                            rejected.reason
                                        );
                                    }
                                }
                                // Invariant: a probed blocking departure can only
                                // bounce after a misroute or a deflection in this
                                // same stage's merge. The banyan wiring maps each
                                // upstream (switch, output) to a *unique*
                                // downstream (switch, input), and the crossbar
                                // grants at most one departure per output per
                                // cycle, so every in-order departure in this
                                // merge owns a private downstream input whose
                                // space its probe reserved. Earlier in-order
                                // receives therefore cannot consume it; only a
                                // misroute or deflection — which flips a packet
                                // onto an output it never probed, landing on an
                                // input port that belongs to another departure —
                                // can. (Retransmit resends run before this
                                // stage's capacity snapshot, so they cannot
                                // invalidate a probe.) With adaptive recovery
                                // the bounce is additionally expected whenever
                                // the probe admitted the departure on the
                                // *alternate* route's space — the primary was
                                // already known to be blocked and the ladder
                                // below deflects — so the invariant only has
                                // teeth without deflection in play.
                                let adaptive_on =
                                    recovery.as_ref().is_some_and(|r| r.config.adaptive);
                                assert!(
                                    !blocking
                                        || adaptive_on
                                        || stage_misroutes > 0
                                        || stage_deflections > 0,
                                    "blocking probe invalidated with no misroute or \
                                     deflection in this stage's merge (stage {stage}, \
                                     switch {sw})"
                                );
                                loss = Some(rejected.into_packet());
                            }
                        }
                    }
                    if loss.is_some() {
                        if let Some(recv) = recovery.as_mut() {
                            // Rung 1 — deflect: misroute on purpose through
                            // the alternate output and let the wrong sink
                            // recirculate it (unique-path banyans have no
                            // second path to the right sink mid-network).
                            let budget_left = recv.config.adaptive
                                && loss
                                    .as_ref()
                                    .is_some_and(|p| p.deflections() < recv.config.misroute_budget);
                            if budget_left {
                                let alt_out = self.plan.alternate_output(stage, sw, out);
                                let alt = self.plan.departure_route(
                                    stage,
                                    sw,
                                    alt_out,
                                    // lint: allow — loss was just set Some on both paths above
                                    loss.as_ref().expect("checked above").dest(),
                                );
                                let alt_dead = faults.as_ref().is_some_and(|f| {
                                    f.link_down(
                                        per_stage,
                                        radix,
                                        stage + 1,
                                        alt.next_switch,
                                        alt.next_port.index(),
                                        cycle,
                                    )
                                });
                                let alt_slot = recv.link_index(
                                    stage + 1,
                                    alt.next_switch,
                                    alt.next_port.index(),
                                );
                                let slots = loss
                                    .as_ref()
                                    // lint: allow — loss was just set Some on both paths above
                                    .expect("checked above")
                                    .slots_needed(DEFAULT_SLOT_BYTES);
                                if !alt_dead
                                    && !recv.believed_down(alt_slot, cycle)
                                    && downstream[alt.next_switch].can_accept(
                                        alt.next_port,
                                        alt.next_output,
                                        slots,
                                    )
                                {
                                    // lint: allow — loss was just set Some on both paths above
                                    let mut packet = loss.take().expect("checked above");
                                    packet.note_deflection();
                                    match downstream[alt.next_switch].receive(
                                        alt.next_port,
                                        alt.next_output,
                                        packet,
                                    ) {
                                        Ok(()) => {
                                            self.quiescent
                                                [(stage + 1) * per_stage + alt.next_switch] = false;
                                            stage_deflections += 1;
                                            self.registry.add(self.metric_ids.rerouted, 1);
                                            if tracing {
                                                self.sink.record(Event::new(
                                                    self.cycle,
                                                    EventKind::Rerouted {
                                                        packet: serial,
                                                        stage: stage as u32,
                                                        switch: sw as u32,
                                                        output: alt_out.index() as u32,
                                                    },
                                                ));
                                            }
                                        }
                                        Err(rejected) => {
                                            debug_assert!(
                                                false,
                                                "deflection bounced after can_accept"
                                            );
                                            loss = Some(rejected.into_packet());
                                        }
                                    }
                                }
                            }
                            // Rung 2 — park: hold the packet in the hop's
                            // bounded retransmit buffer; the timer resends
                            // it once the link is believed healthy again.
                            if loss.is_some() {
                                let slot =
                                    recv.link_index(stage + 1, next_switch, next_port.index());
                                if recv.can_park(slot) {
                                    if link_dead {
                                        recv.note_loss(slot, cycle);
                                    }
                                    recv.park(
                                        slot,
                                        cycle,
                                        stage as u32,
                                        sw as u32,
                                        HopKind::Interior {
                                            stage: stage + 1,
                                            next_switch,
                                            next_port: next_port.index(),
                                            next_out: next_out.index(),
                                        },
                                        // lint: allow — can_park was checked in the rung-2 guard
                                        loss.take().expect("checked above"),
                                    );
                                }
                            }
                        }
                    }
                    // Rung 3 — drop: the plain fault model (recovery off,
                    // out of deflection budget, or the hop buffer is full).
                    if loss.take().is_some() {
                        if tracing {
                            self.sink.record(Event::new(
                                self.cycle,
                                EventKind::NetworkDiscarded {
                                    packet: serial,
                                    stage: stage as u32,
                                    switch: sw as u32,
                                },
                            ));
                        }
                        self.metrics.record_network_discard();
                        self.registry.add(self.metric_ids.discarded_network, 1);
                        self.ledger.discarded += 1;
                        if link_dead {
                            self.fault_ledger.link_dropped += 1;
                        } else if misrouted_here {
                            self.fault_ledger.misrouted += 1;
                        } else if blocking {
                            // An in-order departure whose probe a misroute or
                            // deflection invalidated (the invariant above).
                            self.fault_ledger.probe_invalidated += 1;
                        }
                    }
                }
            }
            if let Some(start) = merge_start {
                self.merge_ns += start.elapsed().as_nanos() as u64;
            }
        }
        self.faults = faults;
        self.recovery = recovery;
        forwarded
    }

    fn inject(&mut self) {
        let blocking = self.config.flow_control.requires_backpressure();
        let per_stage = self.topology.switches_per_stage();
        let radix = self.config.radix;
        for src in 0..self.config.size {
            let Some(&front) = self.source_queues[src].front() else {
                continue;
            };
            let (sw, port) = self.plan.entry(NodeId::new(src));
            let link_dead = self
                .faults
                .as_ref()
                .is_some_and(|f| f.link_down(per_stage, radix, 0, sw, port.index(), self.cycle));
            if blocking && link_dead {
                continue; // hold at the source until the link recovers
            }
            let out = self.plan.route_output(0, NodeId::new(front.dest as usize));
            let slots = (front.length_bytes as usize)
                .div_ceil(DEFAULT_SLOT_BYTES)
                .max(1);
            if blocking && !self.switches[0][sw].can_accept(port, out, slots) {
                continue; // hold the packet; try again next cycle
            }
            self.source_queues[src].pop_front();
            let serial = front.serial;
            if link_dead {
                // With retransmission on, the edge hop buffers the launch
                // instead of losing it: park at the entry link's slot and
                // resend once the link is believed healthy again.
                let parked = self.recovery.as_mut().is_some_and(|recv| {
                    let slot = recv.link_index(0, sw, port.index());
                    recv.can_park(slot) && {
                        recv.note_loss(slot, self.cycle);
                        true
                    }
                });
                if parked {
                    let mut packet = front.materialize(src);
                    packet.mark_injected(self.cycle);
                    // lint: allow — parked is only true when recovery is Some
                    let recv = self.recovery.as_mut().expect("checked above");
                    let slot = recv.link_index(0, sw, port.index());
                    recv.park(
                        slot,
                        self.cycle,
                        0,
                        sw as u32,
                        HopKind::Entry {
                            sw,
                            port: port.index(),
                            out: out.index(),
                        },
                        packet,
                    );
                    continue;
                }
                // Discarding protocol: the packet is launched into the
                // outage and lost at the network's edge (never built —
                // only its serial reaches the telemetry).
                if self.sink.enabled() {
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::EntryDiscarded {
                            packet: serial,
                            source: src as u32,
                        },
                    ));
                }
                self.metrics.record_entry_discard();
                self.registry.add(self.metric_ids.discarded_entry, 1);
                self.ledger.discarded += 1;
                self.fault_ledger.link_dropped += 1;
                continue;
            }
            let mut packet = front.materialize(src);
            packet.mark_injected(self.cycle);
            match self.switches[0][sw].receive(port, out, packet) {
                Ok(()) => {
                    // Entry switch `sw` of stage 0 now holds a packet.
                    self.quiescent[sw] = false;
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::Injected {
                                packet: serial,
                                source: src as u32,
                            },
                        ));
                    }
                    self.metrics.record_injected();
                    self.registry.add(self.metric_ids.injected, 1);
                }
                Err(_rejected) => {
                    debug_assert!(!blocking, "blocking inject was pre-checked");
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::EntryDiscarded {
                                packet: serial,
                                source: src as u32,
                            },
                        ));
                    }
                    self.metrics.record_entry_discard();
                    self.registry.add(self.metric_ids.discarded_entry, 1);
                    self.ledger.discarded += 1;
                }
            }
        }
    }

    /// Samples every input buffer's occupied slots into the
    /// `net.occupancy_slots` histogram. Only called while the registry
    /// is enabled (one scan per cycle, serial, after injection).
    fn observe_occupancy(&mut self) {
        for row in &self.switches {
            for switch in row {
                for port in 0..switch.ports() {
                    let used = switch.buffer(InputPort::new(port)).used_slots();
                    self.registry
                        .observe(self.metric_ids.occupancy, used as u64);
                }
            }
        }
    }

    /// Emits end-of-cycle aggregate events: one
    /// [`HolBlocked`](EventKind::HolBlocked) per switch that blocked this
    /// cycle, then one [`CycleSample`](EventKind::CycleSample). Only
    /// called while the sink is enabled.
    fn emit_cycle_sample(&mut self, forwarded: Vec<u32>) {
        let stages = self.topology.stages();
        let mut occupied = vec![0u32; stages];
        let mut buffer_occupancy = vec![0u32; self.config.slots_per_buffer + 1];
        let mut hol_total = 0u32;
        for (stage, row) in self.switches.iter().enumerate() {
            for (sw, switch) in row.iter().enumerate() {
                occupied[stage] += switch.occupied_slots() as u32;
                for port in 0..switch.ports() {
                    let used = switch.buffer(damq_core::InputPort::new(port)).used_slots();
                    buffer_occupancy[used.min(self.config.slots_per_buffer)] += 1;
                }
                let blocked = switch.hol_blocked_last_cycle() as u32;
                if blocked > 0 {
                    hol_total += blocked;
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::HolBlocked {
                            stage: stage as u32,
                            switch: sw as u32,
                            blocked,
                        },
                    ));
                }
            }
        }
        let forwarded = if forwarded.is_empty() {
            vec![0u32; stages]
        } else {
            forwarded
        };
        self.sink.record(Event::new(
            self.cycle,
            EventKind::CycleSample {
                occupied,
                forwarded,
                buffer_occupancy,
                backlog: self.source_backlog() as u32,
                hol_blocked: hol_total,
            },
        ));
    }

    /// Verifies end-of-cycle packet conservation against the lifetime
    /// ledger (which, unlike [`NetworkSim::metrics`], survives
    /// [`NetworkSim::warm_up`]): every packet ever generated is delivered,
    /// discarded, waiting at a source, resident in a buffer, or held in
    /// a hop's retransmit buffer — exactly one of the five.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] naming the imbalance.
    pub fn audit_conservation(&self) -> Result<(), AuditError> {
        let accounted = self.ledger.delivered
            + self.ledger.discarded
            + self.source_backlog() as u64
            + self.packets_in_flight() as u64
            + self.recovery_held() as u64;
        if self.ledger.generated != accounted {
            return Err(AuditError::new(
                "packet-conservation",
                format!(
                    "generated {} but delivered {} + discarded {} + backlog {} + in-flight {} + retransmit-held {} = {accounted}",
                    self.ledger.generated,
                    self.ledger.delivered,
                    self.ledger.discarded,
                    self.source_backlog(),
                    self.packets_in_flight(),
                    self.recovery_held(),
                ),
            ));
        }
        Ok(())
    }

    /// Verifies the fault ledger against observable state: the drops the
    /// ledger declares never exceed the total discards of the base
    /// conservation ledger (faults lose packets only in admitted ways),
    /// and every slot kill is visible as a dead slot in some buffer.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] naming the mismatch.
    pub fn audit_fault_ledger(&self) -> Result<(), AuditError> {
        if self.fault_ledger.dropped() > self.ledger.discarded {
            return Err(AuditError::new(
                "fault-ledger",
                format!(
                    "fault ledger admits to {} drops but only {} packets were discarded",
                    self.fault_ledger.dropped(),
                    self.ledger.discarded,
                ),
            ));
        }
        let dead = self.dead_slots() as u64;
        if self.fault_ledger.slots_killed != dead {
            return Err(AuditError::new(
                "fault-ledger",
                format!(
                    "ledger counts {} slot kills but the buffers report {dead} dead slots",
                    self.fault_ledger.slots_killed,
                ),
            ));
        }
        Ok(())
    }

    /// Verifies the idle-skip quiescence map against ground truth: at end
    /// of cycle every bit must equal its switch's actual emptiness — a
    /// stale set bit would let the fast path freeze resident packets, a
    /// stale clear bit only costs speed, but both break the documented
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] naming the stale bit.
    pub fn audit_quiescence(&self) -> Result<(), AuditError> {
        let per_stage = self.topology.switches_per_stage();
        for (stage, row) in self.switches.iter().enumerate() {
            for (sw, switch) in row.iter().enumerate() {
                let bit = self.quiescent[stage * per_stage + sw];
                if bit != switch.is_quiescent() {
                    return Err(AuditError::new(
                        "quiescence-map",
                        format!(
                            "stage {stage} switch {sw}: map bit {bit} but the \
                             switch holds {} packets",
                            switch.packets_resident(),
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Full network audit: buffer structure in every switch, the
    /// quiescence map, packet conservation, and the fault ledger.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn audit(&self) -> Result<(), AuditError> {
        for row in &self.switches {
            for sw in row {
                sw.audit()?;
            }
        }
        self.audit_quiescence()?;
        self.audit_conservation()?;
        self.audit_fault_ledger()
    }

    /// Verifies buffer invariants in every switch (testing aid).
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        for row in &self.switches {
            for sw in row {
                sw.check_invariants();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CLOCKS_PER_CYCLE;

    fn small(kind: BufferKind) -> NetworkConfig {
        NetworkConfig::new(16, 4)
            .buffer_kind(kind)
            .offered_load(0.3)
            .seed(11)
    }

    #[test]
    fn registry_disabled_by_default_and_mirrors_metrics_when_enabled() {
        let mut plain = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        plain.run(100);
        assert!(!plain.metrics_registry().enabled());
        assert_eq!(
            plain.metrics_registry().counter_value("net.cycles"),
            Some(0)
        );

        let mut sim = NetworkSim::new(small(BufferKind::Damq))
            .unwrap()
            .with_metrics();
        sim.run(100);
        let reg = sim.metrics_registry();
        assert_eq!(reg.counter_value("net.cycles"), Some(100));
        assert_eq!(
            reg.counter_value("net.delivered"),
            Some(sim.metrics().delivered())
        );
        assert_eq!(
            reg.counter_value("net.generated"),
            Some(sim.metrics().generated())
        );
        let latency = reg.histogram_named("net.latency_cycles").unwrap();
        assert_eq!(latency.count(), sim.metrics().delivered());
        assert!(latency.p50() <= latency.p99());
        assert!(latency.p99() <= latency.p999());
        // Occupancy was sampled once per buffer per cycle.
        let occupancy = reg.histogram_named("net.occupancy_slots").unwrap();
        let buffers: u64 = 16 / 4 * 2 * 4; // per-stage switches × stages × ports
        assert_eq!(occupancy.count(), 100 * buffers);
        // The snapshot is non-trivial JSON.
        let snap = sim.metrics_snapshot();
        assert!(snap.starts_with("{\"counters\":{\"net.cycles\":100,"));
    }

    #[test]
    fn phase_profile_is_empty_until_enabled() {
        let mut sim = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        sim.run(20);
        let off = sim.phase_profile();
        assert_eq!(off.phases, 0);
        assert_eq!(off.total_ns(), 0);
        assert_eq!(off.barrier_share(), 0.0);

        let mut sim = NetworkSim::new(small(BufferKind::Damq))
            .unwrap()
            .with_threads(2)
            .with_phase_timing();
        sim.run(20);
        let profile = sim.phase_profile();
        // 2 stages × 20 cycles, one phase-A per stage per cycle.
        assert_eq!(profile.phases, 40);
        assert_eq!(profile.lane_busy_ns.len(), 2);
        assert!(profile.lane_busy_ns[0] > 0);
        assert!(profile.merge_ns > 0);
        let share = profile.barrier_share() + profile.merge_share();
        assert!((0.0..=1.0).contains(&share));
        // Drained on read.
        assert_eq!(sim.phase_profile().phases, 0);
    }

    #[test]
    fn packets_flow_and_arrive_at_their_destinations() {
        let mut sim = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        sim.run(200);
        assert!(sim.metrics().delivered() > 500);
        // debug_assert in advance_stages checks per-packet destinations.
        sim.check_invariants();
    }

    #[test]
    fn conservation_generated_equals_everything_else() {
        for kind in BufferKind::ALL {
            for flow in FlowControl::ALL {
                let mut sim =
                    NetworkSim::new(small(kind).flow_control(flow).offered_load(0.8)).unwrap();
                sim.run(300);
                let m = sim.metrics();
                let accounted = m.delivered()
                    + m.discarded()
                    + sim.source_backlog() as u64
                    + sim.packets_in_flight() as u64;
                assert_eq!(m.generated(), accounted, "{kind}/{flow}");
            }
        }
    }

    #[test]
    fn blocking_protocol_never_discards() {
        let mut sim = NetworkSim::new(
            small(BufferKind::Fifo)
                .flow_control(FlowControl::Blocking)
                .offered_load(0.95),
        )
        .unwrap();
        sim.run(300);
        assert_eq!(sim.metrics().discarded(), 0);
    }

    #[test]
    fn discarding_protocol_drops_under_overload() {
        let mut sim = NetworkSim::new(
            small(BufferKind::Fifo)
                .flow_control(FlowControl::Discarding)
                .offered_load(0.95),
        )
        .unwrap();
        sim.run(300);
        assert!(sim.metrics().discarded() > 0);
    }

    #[test]
    fn minimum_latency_is_one_cycle_per_stage() {
        // A single packet in an otherwise idle 2-stage network takes
        // exactly `stages` cycles from injection to delivery.
        let mut sim =
            NetworkSim::new(NetworkConfig::new(16, 4).offered_load(0.01).seed(3)).unwrap();
        sim.run(500);
        let m = sim.metrics();
        assert!(m.delivered() > 0);
        let floor = sim.topology().stages() as f64 * CLOCKS_PER_CYCLE as f64;
        assert!(m.mean_network_latency_clocks() >= floor - 1e-9);
        // At 1% load there is essentially no queueing.
        assert!(m.mean_network_latency_clocks() < floor * 1.2);
    }

    #[test]
    fn same_seed_same_results() {
        let run = || {
            let mut sim = NetworkSim::new(small(BufferKind::Damq).seed(99)).unwrap();
            sim.run(150);
            (
                sim.metrics().generated(),
                sim.metrics().delivered(),
                sim.metrics().mean_latency_clocks(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut sim = NetworkSim::new(small(BufferKind::Damq).seed(seed)).unwrap();
            sim.run(150);
            sim.metrics().generated()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn warm_up_resets_the_window() {
        let mut sim = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        sim.warm_up(50);
        assert_eq!(sim.metrics().cycles(), 0);
        assert_eq!(sim.metrics().generated(), 0);
        assert!(sim.cycle() == 50);
    }

    #[test]
    fn samq_slots_must_divide_radix() {
        let err = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Samq)
                .slots_per_buffer(3),
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::Buffer(_)));
    }

    #[test]
    fn shifted_traffic_with_zero_offset_is_conflict_free() {
        // dest = source: in an Omega network the identity permutation is
        // routable without conflicts, so blocking FIFO at full load still
        // delivers one packet per sink per cycle.
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .traffic(TrafficPattern::Shifted { offset: 0 })
                .offered_load(1.0)
                .seed(5),
        )
        .unwrap();
        sim.warm_up(50);
        sim.run(100);
        let m = sim.metrics();
        assert!(
            m.delivered_throughput() > 0.999,
            "throughput {}",
            m.delivered_throughput()
        );
    }

    #[test]
    fn variable_length_packets_flow_too() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .packet_lengths(PacketLengths::Uniform { min: 1, max: 32 })
                .slots_per_buffer(8)
                .offered_load(0.2)
                .seed(21),
        )
        .unwrap();
        sim.run(300);
        assert!(sim.metrics().delivered() > 0);
        sim.check_invariants();
    }

    /// Counts `Forwarded` events emitted by non-final stages — exactly
    /// the departures that need a route to the next stage.
    fn non_final_forwards(
        sim: &NetworkSim<damq_core::AnyBuffer, damq_telemetry::MemorySink<Event>>,
    ) -> u64 {
        let last = (sim.topology().stages() - 1) as u32;
        sim.sink()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Forwarded { stage, .. } if stage < last))
            .count() as u64
    }

    #[test]
    fn discarding_routes_each_departure_exactly_once() {
        // Without backpressure the probe closure never routes, so the
        // departure loop must account for every query: one per forwarded
        // packet leaving a non-final stage.
        let mut sim = NetworkSim::with_sink(
            small(BufferKind::Damq)
                .flow_control(FlowControl::Discarding)
                .offered_load(0.6),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.run(300);
        let forwards = non_final_forwards(&sim);
        assert!(forwards > 0);
        assert_eq!(sim.route_plan().route_queries(), forwards);
    }

    #[test]
    fn blocking_departures_reuse_the_probe_route() {
        // The identity permutation is conflict-free in an Omega network
        // and the downstream buffers drain every cycle, so every
        // backpressure probe leads to a departure. Routing must therefore
        // be queried exactly once per non-final forward; recomputing the
        // route in the departure loop would double the count.
        let mut sim = NetworkSim::with_sink(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Damq)
                .traffic(TrafficPattern::Shifted { offset: 0 })
                .flow_control(FlowControl::Blocking)
                .offered_load(1.0)
                .seed(5),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.run(100);
        let forwards = non_final_forwards(&sim);
        assert!(forwards > 0);
        assert_eq!(sim.route_plan().route_queries(), forwards);
    }

    #[test]
    fn hot_spot_concentrates_deliveries() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .traffic(TrafficPattern::HotSpot {
                    fraction: 0.3,
                    target: NodeId::new(5),
                })
                .offered_load(0.2)
                .seed(8),
        )
        .unwrap();
        sim.run(400);
        let per_sink = sim.metrics().per_sink_delivered();
        let hot = per_sink[5];
        let mean_other: f64 = per_sink
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 5)
            .map(|(_, &c)| c as f64)
            .sum::<f64>()
            / 15.0;
        assert!(hot as f64 > 3.0 * mean_other);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use damq_core::{FaultSite, FaultSpec};

    fn base(kind: BufferKind) -> NetworkConfig {
        NetworkConfig::new(16, 4)
            .buffer_kind(kind)
            .offered_load(0.5)
            .seed(17)
    }

    fn spec(dead_fraction: f64) -> FaultSpec {
        FaultSpec {
            dead_slot_fraction: dead_fraction,
            link_flaps: 2,
            flap_duration: 15,
            corrupt_packets: 3,
            misroutes: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 150)
        }
    }

    #[test]
    fn dead_slots_shrink_capacity_without_breaking_the_run() {
        let plan = FaultPlan::generate(5, &spec(0.25));
        let mut sim = NetworkSim::with_faults(base(BufferKind::Damq), plan).unwrap();
        sim.run(300);
        let ledger = sim.fault_ledger();
        assert!(ledger.slots_killed > 0);
        assert_eq!(ledger.slots_killed, sim.dead_slots() as u64);
        assert!(sim.metrics().delivered() > 0, "network still delivers");
        sim.audit().expect("faulted run stays consistent");
    }

    #[test]
    fn corruption_is_caught_at_the_sink() {
        let plan = FaultPlan::new()
            .with_corruption(1, 0)
            .with_corruption(1, 3)
            .with_corruption(2, 7);
        let mut sim = NetworkSim::with_faults(
            base(BufferKind::Damq).flow_control(FlowControl::Blocking),
            plan,
        )
        .unwrap();
        sim.run(300);
        // Blocking flow control never drops, so all three corrupted
        // packets reach a sink and fail the checksum there.
        assert_eq!(sim.fault_ledger().corrupt_dropped, 3);
        sim.audit().expect("conservation holds modulo the ledger");
    }

    #[test]
    fn link_outage_holds_under_blocking_and_drops_under_discarding() {
        let flap = |flow| {
            let site = FaultSite {
                stage: 0,
                switch: 0,
                input: 0,
            };
            let plan = FaultPlan::new().with_link_down(10, site, 200);
            let mut sim =
                NetworkSim::with_faults(base(BufferKind::Damq).flow_control(flow), plan).unwrap();
            sim.run(150);
            sim.audit().expect("faulted run stays consistent");
            sim.fault_ledger().link_dropped
        };
        assert_eq!(flap(FlowControl::Blocking), 0, "blocking holds upstream");
        assert!(
            flap(FlowControl::Discarding) > 0,
            "discarding loses packets"
        );
    }

    #[test]
    fn misroutes_are_dropped_and_declared() {
        let plan = FaultPlan::new()
            .with_misroute(5, 0, 0)
            .with_misroute(5, 0, 1)
            .with_misroute(10, 1, 0);
        let mut sim = NetworkSim::with_faults(base(BufferKind::Damq), plan).unwrap();
        sim.run(200);
        assert!(sim.fault_ledger().misrouted > 0);
        sim.audit().expect("faulted run stays consistent");
    }

    #[test]
    fn faulted_runs_are_deterministic_to_the_byte() {
        let run = || {
            let plan = FaultPlan::generate(9, &spec(0.1));
            let mut sim = NetworkSim::with_sink(
                base(BufferKind::Samq).flow_control(FlowControl::Discarding),
                damq_telemetry::MemorySink::new(),
            )
            .unwrap();
            sim.install_fault_plan(plan);
            sim.run(200);
            let ledger = sim.fault_ledger();
            let trace: String = sim
                .into_sink()
                .events()
                .iter()
                .map(|e| e.to_jsonl() + "\n")
                .collect();
            (ledger, trace)
        };
        let (ledger_a, trace_a) = run();
        let (ledger_b, trace_b) = run();
        assert_eq!(ledger_a, ledger_b);
        assert_eq!(trace_a, trace_b, "fault JSONL must be byte-identical");
        assert!(trace_a.contains("slot_killed"), "fault events in the trace");
    }

    #[test]
    fn all_designs_and_protocols_audit_clean_with_faults_active() {
        for kind in BufferKind::ALL {
            for flow in FlowControl::ALL {
                let plan = FaultPlan::generate(3, &spec(0.2));
                let mut sim = NetworkSim::with_faults(base(kind).flow_control(flow), plan).unwrap();
                sim.run(250);
                assert!(sim.fault_ledger().slots_killed > 0, "{kind}/{flow}");
                sim.audit().unwrap_or_else(|e| panic!("{kind}/{flow}: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use damq_core::{FaultSite, FaultSpec};

    fn base(kind: BufferKind) -> NetworkConfig {
        NetworkConfig::new(16, 4)
            .buffer_kind(kind)
            .offered_load(0.5)
            .seed(17)
    }

    /// Retransmission-only recovery with a deep per-hop buffer and a
    /// long detection window (no deflection).
    fn deep_retransmit() -> RecoveryConfig {
        RecoveryConfig {
            retransmit: true,
            retransmit_slots: 64,
            max_retries: 16,
            base_timeout: 4,
            max_backoff_exp: 5,
            adaptive: false,
            misroute_budget: 0,
            detection_window: 10,
        }
    }

    fn trace_of<B: SwitchBuffer>(sim: NetworkSim<B, damq_telemetry::MemorySink<Event>>) -> String {
        sim.into_sink()
            .events()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect()
    }

    #[test]
    fn corrupted_payloads_are_repaired_and_delivered() {
        let plan = FaultPlan::new()
            .with_corruption(1, 0)
            .with_corruption(1, 3)
            .with_corruption(2, 7);
        let mut sim = NetworkSim::with_sink(
            base(BufferKind::Damq)
                .flow_control(FlowControl::Blocking)
                .recovery(deep_retransmit()),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.install_fault_plan(plan);
        sim.run(300);
        // The sink NACKs each damaged arrival; the hop buffer resends a
        // repaired copy instead of charging a corrupt drop.
        assert_eq!(sim.fault_ledger().corrupt_dropped, 0);
        assert_eq!(sim.fault_ledger().dropped(), 0);
        sim.audit().expect("recovered run stays consistent");
        let trace = trace_of(sim);
        assert!(trace.contains("\"retransmit\""), "resends in the trace");
        assert!(!trace.contains("\"corrupt_dropped\""), "no corrupt drops");
    }

    #[test]
    fn flapped_link_losses_are_retransmitted_not_dropped() {
        let site = FaultSite {
            stage: 1,
            switch: 0,
            input: 0,
        };
        let run = |recovery: RecoveryConfig| {
            let plan = FaultPlan::new().with_link_down(10, site, 60);
            let mut sim = NetworkSim::with_faults(
                base(BufferKind::Damq)
                    .flow_control(FlowControl::Discarding)
                    .recovery(recovery),
                plan,
            )
            .unwrap();
            sim.run(400);
            sim.audit().expect("flapped run stays consistent");
            assert_eq!(sim.recovery_held(), 0, "buffers drain after the flap");
            (sim.fault_ledger().link_dropped, sim.metrics().delivered())
        };
        let (dropped_off, delivered_off) = run(RecoveryConfig::disabled());
        let (dropped_on, delivered_on) = run(deep_retransmit());
        assert!(dropped_off > 0, "the flap costs the plain fault model");
        assert_eq!(dropped_on, 0, "every flap loss parks and resends");
        assert!(
            delivered_on > delivered_off,
            "recovery delivers more: {delivered_on} vs {delivered_off}"
        );
    }

    #[test]
    fn deflection_recirculates_to_the_true_destination() {
        let site = FaultSite {
            stage: 1,
            switch: 0,
            input: 0,
        };
        let plan = FaultPlan::new().with_link_down(10, site, 260);
        let mut sim = NetworkSim::with_sink(
            base(BufferKind::Damq)
                .flow_control(FlowControl::Discarding)
                .recovery(RecoveryConfig::enabled()),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.install_fault_plan(plan);
        sim.run(400);
        sim.audit().expect("deflected run stays consistent");
        assert!(sim.metrics().delivered() > 0);
        let trace = trace_of(sim);
        assert!(trace.contains("\"rerouted\""), "deflections in the trace");
        assert!(
            trace.contains("\"recirculated\""),
            "wrong-sink arrivals recirculate instead of dropping"
        );
    }

    #[test]
    fn bounded_retries_give_the_packet_up() {
        let site = FaultSite {
            stage: 0,
            switch: 0,
            input: 0,
        };
        // The entry link never comes back: every park must eventually
        // exhaust its retries and be given up, not held forever.
        let plan = FaultPlan::new().with_link_down(5, site, 100_000);
        let recovery = RecoveryConfig {
            retransmit: true,
            retransmit_slots: 8,
            max_retries: 3,
            base_timeout: 2,
            max_backoff_exp: 3,
            adaptive: false,
            misroute_budget: 0,
            detection_window: 5,
        };
        let mut sim = NetworkSim::with_sink(
            base(BufferKind::Damq)
                .flow_control(FlowControl::Discarding)
                .recovery(recovery)
                .seed(23),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.install_fault_plan(plan);
        sim.run(600);
        sim.audit().expect("exhausted run stays consistent");
        assert!(sim.metrics().discarded() > 0, "give-ups count as discards");
        let snapshot = sim.metrics_snapshot();
        let trace = trace_of(sim);
        assert!(trace.contains("\"gave_up\""), "give-ups in the trace");
        // The registry was never enabled, so the snapshot stays zeroed —
        // the counter exists either way.
        assert!(snapshot.contains("\"net.retry_exhausted\""));
    }

    #[test]
    fn recovery_metrics_land_in_the_registry() {
        let plan = FaultPlan::new()
            .with_link_down(
                10,
                FaultSite {
                    stage: 1,
                    switch: 1,
                    input: 2,
                },
                60,
            )
            .with_corruption(5, 3);
        let mut sim = NetworkSim::with_faults(
            base(BufferKind::Damq)
                .flow_control(FlowControl::Discarding)
                .recovery(RecoveryConfig::enabled()),
            plan,
        )
        .unwrap()
        .with_metrics();
        sim.run(400);
        let snapshot = sim.metrics_snapshot();
        let counter = |name: &str| {
            let key = format!("\"{name}\":");
            let at = snapshot
                .find(&key)
                .unwrap_or_else(|| panic!("{name} missing"))
                + key.len();
            snapshot[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .unwrap()
        };
        assert!(counter("net.retransmits") > 0, "resends counted");
        assert_eq!(
            counter("net.fault.corrupt_dropped"),
            sim.fault_ledger().corrupt_dropped,
            "registry mirrors the fault ledger"
        );
        assert_eq!(
            counter("net.fault.link_dropped"),
            sim.fault_ledger().link_dropped
        );
    }

    #[test]
    fn recovered_runs_are_deterministic_to_the_byte() {
        let run = || {
            let spec = FaultSpec {
                dead_slot_fraction: 0.1,
                link_flaps: 4,
                flap_duration: 30,
                corrupt_packets: 3,
                misroutes: 2,
                ..FaultSpec::fault_free(2, 4, 4, 16, 4, 200)
            };
            let plan = FaultPlan::generate(11, &spec);
            let mut sim = NetworkSim::with_sink(
                base(BufferKind::Damq)
                    .flow_control(FlowControl::Discarding)
                    .recovery(RecoveryConfig::enabled()),
                damq_telemetry::MemorySink::new(),
            )
            .unwrap()
            .with_metrics();
            sim.install_fault_plan(plan);
            sim.run(400);
            sim.audit().expect("recovered run stays consistent");
            let snapshot = sim.metrics_snapshot();
            let ledger = sim.fault_ledger();
            (ledger, snapshot, trace_of(sim))
        };
        let (ledger_a, snap_a, trace_a) = run();
        let (ledger_b, snap_b, trace_b) = run();
        assert_eq!(ledger_a, ledger_b);
        assert_eq!(snap_a, snap_b, "registry snapshots byte-identical");
        assert_eq!(trace_a, trace_b, "recovery JSONL byte-identical");
        assert!(trace_a.contains("\"retransmit\""), "recovery was exercised");
    }

    #[test]
    fn all_designs_and_protocols_audit_clean_with_recovery_active() {
        let spec = FaultSpec {
            dead_slot_fraction: 0.15,
            link_flaps: 3,
            flap_duration: 25,
            corrupt_packets: 3,
            misroutes: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 150)
        };
        for kind in BufferKind::ALL {
            for flow in FlowControl::ALL {
                let plan = FaultPlan::generate(7, &spec);
                let mut sim = NetworkSim::with_faults(
                    base(kind)
                        .flow_control(flow)
                        .recovery(RecoveryConfig::enabled()),
                    plan,
                )
                .unwrap();
                sim.run(300);
                sim.audit().unwrap_or_else(|e| panic!("{kind}/{flow}: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    #[test]
    fn on_off_preserves_the_mean_rate() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .offered_load(0.3)
                .arrival_process(ArrivalProcess::OnOff {
                    mean_burst: 8.0,
                    duty: 0.4,
                })
                .seed(42),
        )
        .unwrap();
        sim.run(20_000);
        let rate = sim.metrics().offered_throughput();
        assert!((rate - 0.3).abs() < 0.01, "mean rate drifted: {rate}");
    }

    #[test]
    fn bursts_create_burstier_queues_than_bernoulli() {
        // Same mean load; the on/off process should produce a longer
        // latency tail (p99) than Bernoulli.
        let run = |arrivals: ArrivalProcess| {
            let mut sim = NetworkSim::new(
                NetworkConfig::new(16, 4)
                    .buffer_kind(BufferKind::Damq)
                    .offered_load(0.35)
                    .arrival_process(arrivals)
                    .seed(9),
            )
            .unwrap();
            sim.warm_up(500);
            sim.run(8_000);
            sim.metrics().latency_percentile_clocks(0.99)
        };
        let smooth = run(ArrivalProcess::Bernoulli);
        let bursty = run(ArrivalProcess::OnOff {
            mean_burst: 12.0,
            duty: 0.3,
        });
        assert!(
            bursty > smooth,
            "bursty p99 {bursty} should exceed smooth p99 {smooth}"
        );
    }

    #[test]
    fn duty_one_degenerates_to_bernoulli_rates() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .offered_load(0.25)
                .arrival_process(ArrivalProcess::OnOff {
                    mean_burst: 5.0,
                    duty: 1.0,
                })
                .seed(3),
        )
        .unwrap();
        sim.run(10_000);
        let rate = sim.metrics().offered_throughput();
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "duty is a fraction")]
    fn invalid_duty_rejected() {
        let _ = NetworkConfig::new(16, 4).arrival_process(ArrivalProcess::OnOff {
            mean_burst: 4.0,
            duty: 1.5,
        });
    }
}
