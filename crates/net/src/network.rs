//! The synchronous Omega-network simulator.
//!
//! The simulator follows the paper's assumptions (§4.2, after Pfister &
//! Norton): message transmissions are synchronised, so packets move between
//! stages "instantaneously once every twelve clock cycles". One call to
//! [`NetworkSim::step`] is one such network cycle:
//!
//! 1. every source generates a packet with probability equal to the offered
//!    load, appending it to its (unbounded) source queue;
//! 2. stages transmit, **last stage first**, so that space freed downstream
//!    in this cycle is visible upstream — a packet advances at most one
//!    stage per cycle;
//! 3. sources inject their head packet into the first stage if the protocol
//!    allows.
//!
//! Under the *blocking* protocol a switch only transmits a packet if the
//! downstream buffer can accept it (for the statically-allocated designs
//! this checks the specific queue the packet will join — the pre-routing
//! flow-control cost the paper describes). Under the *discarding* protocol
//! packets always fly and are dropped at full buffers.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{
    AnyBuffer, AuditError, BufferKind, BuildBuffer, ConfigError, NodeId, Packet, PacketIdSource,
    SwitchBuffer, DEFAULT_SLOT_BYTES,
};
use damq_switch::{ArbiterPolicy, FlowControl, Switch, SwitchConfig};
use damq_telemetry::{Event, EventKind, NullSink, TelemetrySink};

use crate::metrics::NetMetrics;
use crate::topology::{HopRoute, RoutePlan, Topology, TopologyError, TopologyKind};
use crate::traffic::TrafficPattern;

/// How packet arrivals are timed at each source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Independent Bernoulli arrivals at the offered load each cycle (the
    /// paper's traffic model).
    Bernoulli,
    /// Two-state Markov-modulated (on/off) sources: bursts of back-to-back
    /// generation separated by silences. The long-run mean rate still
    /// equals the configured offered load; burstiness redistributes it.
    OnOff {
        /// Mean burst (ON-state) duration in cycles (≥ 1).
        mean_burst: f64,
        /// Long-run fraction of time spent ON, in (0, 1]. While ON the
        /// source generates with probability `load / duty` per cycle
        /// (clamped to 1), so smaller duty means denser bursts.
        duty: f64,
    },
}

/// How packet payload lengths are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketLengths {
    /// Every packet carries exactly this many bytes (the paper's simulation
    /// assumption; 8 bytes = one slot).
    Fixed(usize),
    /// Lengths drawn uniformly from `min..=max` bytes (the variable-length
    /// workload the DAMQ buffer was designed for; see paper §5).
    Uniform {
        /// Smallest payload in bytes.
        min: usize,
        /// Largest payload in bytes.
        max: usize,
    },
}

impl PacketLengths {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            PacketLengths::Fixed(bytes) => bytes,
            PacketLengths::Uniform { min, max } => rng.random_range(min..=max),
        }
    }
}

/// Error constructing a [`NetworkSim`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The topology dimensions are invalid.
    Topology(TopologyError),
    /// The per-switch buffer configuration is invalid.
    Buffer(ConfigError),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Topology(e) => write!(f, "topology: {e}"),
            NetworkError::Buffer(e) => write!(f, "buffer: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Topology(e) => Some(e),
            NetworkError::Buffer(e) => Some(e),
        }
    }
}

impl From<TopologyError> for NetworkError {
    fn from(e: TopologyError) -> Self {
        NetworkError::Topology(e)
    }
}

impl From<ConfigError> for NetworkError {
    fn from(e: ConfigError) -> Self {
        NetworkError::Buffer(e)
    }
}

/// Full description of a network experiment.
///
/// Defaults reproduce the paper's Omega setup: 64 terminals, 4×4 switches,
/// DAMQ buffers of 4 slots, smart arbitration, blocking protocol, uniform
/// traffic, fixed one-slot packets.
///
/// # Examples
///
/// ```
/// use damq_core::BufferKind;
/// use damq_net::{NetworkConfig, NetworkSim};
///
/// let mut sim = NetworkSim::new(
///     NetworkConfig::new(64, 4)
///         .buffer_kind(BufferKind::Fifo)
///         .offered_load(0.4)
///         .seed(7),
/// )?;
/// sim.run(100);
/// assert!(sim.metrics().delivered() > 0);
/// # Ok::<(), damq_net::NetworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    size: usize,
    radix: usize,
    topology_kind: TopologyKind,
    buffer_kind: BufferKind,
    slots_per_buffer: usize,
    arbiter_policy: ArbiterPolicy,
    flow_control: FlowControl,
    pattern: TrafficPattern,
    offered_load: f64,
    packet_lengths: PacketLengths,
    arrivals: ArrivalProcess,
    seed: u64,
}

impl NetworkConfig {
    /// Starts a configuration for `size` terminals and `radix`×`radix`
    /// switches.
    pub fn new(size: usize, radix: usize) -> Self {
        NetworkConfig {
            size,
            radix,
            topology_kind: TopologyKind::Omega,
            buffer_kind: BufferKind::Damq,
            slots_per_buffer: 4,
            arbiter_policy: ArbiterPolicy::Smart,
            flow_control: FlowControl::Blocking,
            pattern: TrafficPattern::Uniform,
            offered_load: 0.5,
            packet_lengths: PacketLengths::Fixed(DEFAULT_SLOT_BYTES),
            arrivals: ArrivalProcess::Bernoulli,
            seed: 0xDA3B,
        }
    }

    /// Selects the MIN wiring (Omega by default; the paper's network).
    pub fn topology_kind(mut self, kind: TopologyKind) -> Self {
        self.topology_kind = kind;
        self
    }

    /// The MIN wiring in use.
    pub fn wiring(&self) -> TopologyKind {
        self.topology_kind
    }

    /// Selects the input-buffer design used by every switch.
    pub fn buffer_kind(mut self, kind: BufferKind) -> Self {
        self.buffer_kind = kind;
        self
    }

    /// Sets the storage per input buffer, in slots.
    pub fn slots_per_buffer(mut self, slots: usize) -> Self {
        self.slots_per_buffer = slots;
        self
    }

    /// Selects the crossbar arbitration policy.
    pub fn arbiter_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.arbiter_policy = policy;
        self
    }

    /// Selects the flow-control protocol.
    pub fn flow_control(mut self, flow: FlowControl) -> Self {
        self.flow_control = flow;
        self
    }

    /// Selects the traffic pattern.
    pub fn traffic(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the offered load: probability each source generates a packet
    /// each cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= load <= 1.0`.
    pub fn offered_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be a probability");
        self.offered_load = load;
        self
    }

    /// Selects the packet-length distribution.
    pub fn packet_lengths(mut self, lengths: PacketLengths) -> Self {
        self.packet_lengths = lengths;
        self
    }

    /// Selects the arrival process (Bernoulli by default).
    ///
    /// # Panics
    ///
    /// Panics if an on/off process has `mean_burst < 1` or `duty` outside
    /// `(0, 1]`.
    pub fn arrival_process(mut self, arrivals: ArrivalProcess) -> Self {
        if let ArrivalProcess::OnOff { mean_burst, duty } = arrivals {
            assert!(mean_burst >= 1.0, "bursts last at least one cycle");
            assert!(duty > 0.0 && duty <= 1.0, "duty is a fraction of time");
        }
        self.arrivals = arrivals;
        self
    }

    /// The arrival process in use.
    pub fn arrivals(&self) -> ArrivalProcess {
        self.arrivals
    }

    /// Seeds the traffic generator (same seed ⇒ identical run).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of terminals.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Buffer design in use.
    pub fn kind(&self) -> BufferKind {
        self.buffer_kind
    }

    /// Slots per input buffer.
    pub fn slots(&self) -> usize {
        self.slots_per_buffer
    }

    /// Arbitration policy in use.
    pub fn policy(&self) -> ArbiterPolicy {
        self.arbiter_policy
    }

    /// Flow-control protocol in use.
    pub fn flow(&self) -> FlowControl {
        self.flow_control
    }

    /// Traffic pattern in use.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Offered load per source per cycle.
    pub fn load(&self) -> f64 {
        self.offered_load
    }

    /// Packet length distribution in use.
    pub fn lengths(&self) -> PacketLengths {
        self.packet_lengths
    }
}

/// Lifetime packet ledger for the conservation audit.
///
/// [`NetMetrics`] counters are zeroed by [`NetworkSim::warm_up`], so they
/// cannot back a whole-run balance check. This ledger counts from
/// construction and is never reset: at the end of every cycle,
///
/// ```text
/// generated = delivered + discarded + source backlog + in flight
/// ```
///
/// must hold exactly — the network-level analogue of the slot-partition
/// invariant (a packet is always in exactly one place).
#[derive(Debug, Clone, Copy, Default)]
struct ConservationLedger {
    generated: u64,
    delivered: u64,
    discarded: u64,
}

/// The simulator: a grid of switches, source queues and sinks.
///
/// `NetworkSim` is generic over two axes:
///
/// * the **buffer type** `B` of every switch. The default, [`AnyBuffer`],
///   selects the design at run time from the configuration's
///   [`BufferKind`] through enum dispatch; instantiate with a concrete
///   design (`NetworkSim::<DamqBuffer>::typed(..)`) to monomorphize the
///   whole data path for that design.
/// * the [`TelemetrySink`] `S`. The default [`NullSink`] compiles every
///   instrumentation point away, so [`NetworkSim::new`] behaves exactly
///   as before telemetry existed. Pass a real sink to
///   [`NetworkSim::with_sink`] to stream cycle-stamped lifecycle events
///   (see `docs/OBSERVABILITY.md`).
///
/// Routing is resolved through a [`RoutePlan`] precomputed at
/// construction: the per-packet path performs indexed loads instead of
/// shuffle/digit arithmetic, and each departure is routed exactly once.
#[derive(Debug)]
pub struct NetworkSim<B: SwitchBuffer = AnyBuffer, S: TelemetrySink<Event> = NullSink> {
    config: NetworkConfig,
    topology: Topology,
    plan: RoutePlan,
    /// `switches[stage][index]`.
    switches: Vec<Vec<Switch<B>>>,
    source_queues: Vec<VecDeque<Packet>>,
    /// On/off state per source (always `true` under Bernoulli arrivals).
    source_on: Vec<bool>,
    /// Per-output scratch carrying each backpressure probe's route to the
    /// departure that follows it (reset per switch per cycle).
    route_scratch: Vec<Option<HopRoute>>,
    ids: PacketIdSource,
    rng: StdRng,
    cycle: u64,
    metrics: NetMetrics,
    ledger: ConservationLedger,
    sink: S,
}

impl NetworkSim {
    /// Builds the network without telemetry, with run-time buffer-design
    /// selection (the [`AnyBuffer`] default).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the topology dimensions are invalid or
    /// the buffer configuration is rejected (e.g. SAMQ slots not divisible
    /// by the radix).
    pub fn new(config: NetworkConfig) -> Result<Self, NetworkError> {
        Self::with_sink(config, NullSink)
    }
}

impl<S: TelemetrySink<Event>> NetworkSim<AnyBuffer, S> {
    /// Builds the network with a telemetry sink attached.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the topology dimensions are invalid or
    /// the buffer configuration is rejected (e.g. SAMQ slots not divisible
    /// by the radix).
    pub fn with_sink(config: NetworkConfig, sink: S) -> Result<Self, NetworkError> {
        Self::typed_with_sink(config, sink)
    }
}

impl<B: BuildBuffer> NetworkSim<B> {
    /// Builds the network without telemetry, with the buffer type fixed
    /// by the caller (`NetworkSim::<DamqBuffer>::typed(..)`). Concrete
    /// designs ignore the configuration's `buffer_kind`; kind-erased
    /// types ([`AnyBuffer`], `Box<dyn SwitchBuffer>`) honour it.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] as [`NetworkSim::new`] does.
    pub fn typed(config: NetworkConfig) -> Result<Self, NetworkError> {
        Self::typed_with_sink(config, NullSink)
    }
}

impl<B: BuildBuffer, S: TelemetrySink<Event>> NetworkSim<B, S> {
    /// Builds the network with both the buffer type and the telemetry
    /// sink chosen by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] as [`NetworkSim::new`] does.
    pub fn typed_with_sink(config: NetworkConfig, sink: S) -> Result<Self, NetworkError> {
        let topology = Topology::build(config.topology_kind, config.size, config.radix)?;
        let plan = RoutePlan::new(&topology);
        let switch_config = SwitchConfig::new(config.radix)
            .buffer_kind(config.buffer_kind)
            .slots_per_buffer(config.slots_per_buffer)
            .arbiter_policy(config.arbiter_policy)
            .flow_control(config.flow_control);
        let mut switches = Vec::with_capacity(topology.stages());
        for _stage in 0..topology.stages() {
            let mut row = Vec::with_capacity(topology.switches_per_stage());
            for _ in 0..topology.switches_per_stage() {
                row.push(Switch::typed(switch_config)?);
            }
            switches.push(row);
        }
        Ok(NetworkSim {
            config,
            topology,
            plan,
            switches,
            source_queues: vec![VecDeque::new(); config.size],
            source_on: vec![true; config.size],
            route_scratch: vec![None; config.radix],
            ids: PacketIdSource::new(),
            rng: StdRng::seed_from_u64(config.seed),
            cycle: 0,
            metrics: NetMetrics::new(config.size),
            ledger: ConservationLedger::default(),
            sink,
        })
    }
}

impl<B: SwitchBuffer, S: TelemetrySink<Event>> NetworkSim<B, S> {
    /// Read access to the telemetry sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the telemetry sink (e.g. to pause a
    /// [`MemorySink`](damq_telemetry::MemorySink) during warm-up).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the simulator, flushing and returning the sink.
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }

    /// Emits a [`RunMeta`](EventKind::RunMeta) event describing this run.
    ///
    /// Call once before stepping so trace consumers can tell runs apart;
    /// `note` is free-form (traffic pattern, load, seed).
    pub fn emit_run_meta(&mut self, note: &str) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record(Event::new(
            self.cycle,
            EventKind::RunMeta {
                design: self.config.buffer_kind.name().to_string(),
                terminals: self.config.size as u32,
                radix: self.config.radix as u32,
                stages: self.topology.stages() as u32,
                slots: self.config.slots_per_buffer as u32,
                note: note.to_string(),
            },
        ));
    }

    /// The experiment configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The wiring.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The precomputed routing tables (and their query counter).
    pub fn route_plan(&self) -> &RoutePlan {
        &self.plan
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Measurement counters for the current window.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Packets waiting in source queues.
    pub fn source_backlog(&self) -> usize {
        self.source_queues.iter().map(VecDeque::len).sum()
    }

    /// Aggregated buffer operation counters over every switch in the
    /// network (used by the dispatch-equivalence tests to compare
    /// simulation paths operation-for-operation).
    pub fn aggregate_buffer_stats(&self) -> damq_core::BufferStats {
        let mut total = damq_core::BufferStats::new();
        for row in &self.switches {
            for sw in row {
                total.merge(&sw.aggregate_stats());
            }
        }
        total
    }

    /// Packets resident in switch buffers.
    pub fn packets_in_flight(&self) -> usize {
        self.switches
            .iter()
            .flatten()
            .map(|sw| sw.packets_resident())
            .sum()
    }

    /// Buffer-occupancy fraction of each switch in `stage` (a snapshot;
    /// used to visualise tree saturation spreading stage by stage).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_occupancy(&self, stage: usize) -> Vec<f64> {
        self.switches[stage]
            .iter()
            .map(|sw| sw.occupancy_fraction())
            .collect()
    }

    /// Mean buffer-occupancy fraction per stage, input side first.
    pub fn occupancy_by_stage(&self) -> Vec<f64> {
        self.switches
            .iter()
            .map(|row| row.iter().map(|sw| sw.occupancy_fraction()).sum::<f64>() / row.len() as f64)
            .collect()
    }

    /// Simulates one network cycle (12 clock cycles).
    ///
    /// With the `strict-audit` feature on, every cycle ends with a full
    /// audit: buffer structure in every switch plus the packet-conservation
    /// balance.
    ///
    /// # Panics
    ///
    /// Panics under `strict-audit` if the audit fails.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.metrics.record_cycle();
        self.generate();
        let forwarded = self.advance_stages();
        self.inject();
        if self.sink.enabled() {
            self.emit_cycle_sample(forwarded);
        }
        #[cfg(feature = "strict-audit")]
        if let Err(e) = self.audit() {
            // lint: allow — strict-audit must stop at the offending cycle.
            panic!("strict-audit at cycle {}: {e}", self.cycle);
        }
    }

    /// Simulates `cycles` network cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs `cycles` cycles and then zeroes the metrics: the standard
    /// warm-up before a measurement window.
    pub fn warm_up(&mut self, cycles: u64) {
        self.run(cycles);
        self.metrics.reset();
    }

    fn generate(&mut self) {
        let size = self.config.size;
        for src in 0..size {
            let generate_probability = match self.config.arrivals {
                ArrivalProcess::Bernoulli => self.config.offered_load,
                ArrivalProcess::OnOff { duty, .. } if duty >= 1.0 => {
                    // Always-on degenerates to Bernoulli.
                    self.config.offered_load
                }
                ArrivalProcess::OnOff { mean_burst, duty } => {
                    // Two-state modulation: leave ON w.p. 1/mean_burst,
                    // enter ON at the rate that makes the stationary ON
                    // fraction equal the duty cycle.
                    let exit_on = 1.0 / mean_burst;
                    let enter_on = (duty * exit_on / (1.0 - duty)).min(1.0);
                    let flip = if self.source_on[src] {
                        exit_on
                    } else {
                        enter_on
                    };
                    if self.rng.random_bool(flip) {
                        self.source_on[src] = !self.source_on[src];
                    }
                    if self.source_on[src] {
                        (self.config.offered_load / duty).min(1.0)
                    } else {
                        0.0
                    }
                }
            };
            if generate_probability <= 0.0 || !self.rng.random_bool(generate_probability) {
                continue;
            }
            let source = NodeId::new(src);
            let dest = self.config.pattern.sample(&mut self.rng, source, size);
            let length = self.config.packet_lengths.sample(&mut self.rng);
            let packet = Packet::builder(source, dest)
                .id(self.ids.next_id())
                .length_bytes(length)
                .birth_cycle(self.cycle)
                .build();
            if self.sink.enabled() {
                self.sink.record(Event::new(
                    self.cycle,
                    EventKind::Generated {
                        packet: packet.id().serial(),
                        source: src as u32,
                        dest: packet.dest().index() as u32,
                    },
                ));
            }
            self.source_queues[src].push_back(packet);
            self.metrics.record_generated();
            self.ledger.generated += 1;
        }
    }

    /// Returns per-stage forwarded-packet counts for the cycle sample
    /// (empty, allocation-free, while the sink is disabled).
    fn advance_stages(&mut self) -> Vec<u32> {
        let stages = self.topology.stages();
        let per_stage = self.topology.switches_per_stage();
        let blocking = self.config.flow_control.requires_backpressure();
        let tracing = self.sink.enabled();
        let mut forwarded = if tracing {
            vec![0u32; stages]
        } else {
            Vec::new()
        };

        // Last stage delivers straight to the (always-ready) sinks.
        let last = stages - 1;
        for sw in 0..per_stage {
            let departures = self.switches[last][sw].transmit_cycle(|_, _| true);
            for d in departures {
                let sink = self.plan.sink_of(sw, d.output);
                debug_assert_eq!(sink, d.packet.dest(), "misrouted packet at sink");
                let total = self.cycle.saturating_sub(d.packet.birth_cycle());
                let injected = d.packet.injected_cycle().unwrap_or(d.packet.birth_cycle());
                let network = self.cycle.saturating_sub(injected);
                if tracing {
                    forwarded[last] += 1;
                    let serial = d.packet.id().serial();
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::Forwarded {
                            packet: serial,
                            stage: last as u32,
                            switch: sw as u32,
                            output: d.output.index() as u32,
                        },
                    ));
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::Delivered {
                            packet: serial,
                            sink: sink.index() as u32,
                        },
                    ));
                }
                self.metrics.record_delivery_from(
                    d.packet.source().index(),
                    sink.index(),
                    total,
                    network,
                );
                self.ledger.delivered += 1;
            }
        }

        // Earlier stages, last to first, feed their successor stage.
        for stage in (0..last).rev() {
            let (current_stages, later_stages) = self.switches.split_at_mut(stage + 1);
            let current = &mut current_stages[stage];
            let downstream = &mut later_stages[0];
            let plan = &self.plan;
            let scratch = &mut self.route_scratch;
            for (sw, switch) in current.iter_mut().enumerate().take(per_stage) {
                scratch.fill(None);
                let departures = switch.transmit_cycle(|out, pkt| {
                    if !blocking {
                        return true;
                    }
                    // A departure through `out` is always the packet the
                    // crossbar granted last, i.e. the one probed here most
                    // recently — park its route for the departure loop.
                    let route = plan.departure_route(stage, sw, out, pkt.dest());
                    scratch[out.index()] = Some(route);
                    let slots = pkt.slots_needed(DEFAULT_SLOT_BYTES);
                    downstream[route.next_switch].can_accept(
                        route.next_port,
                        route.next_output,
                        slots,
                    )
                });
                for d in departures {
                    // Blocking probes parked the route; the discarding
                    // path routes here — either way exactly one query per
                    // departure.
                    let HopRoute {
                        next_switch,
                        next_port,
                        next_output: next_out,
                    } = scratch[d.output.index()].take().unwrap_or_else(|| {
                        plan.departure_route(stage, sw, d.output, d.packet.dest())
                    });
                    if tracing {
                        forwarded[stage] += 1;
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::Forwarded {
                                packet: d.packet.id().serial(),
                                stage: stage as u32,
                                switch: sw as u32,
                                output: d.output.index() as u32,
                            },
                        ));
                    }
                    let serial = d.packet.id().serial();
                    match downstream[next_switch].receive(next_port, next_out, d.packet) {
                        Ok(()) => {}
                        Err(_rejected) => {
                            debug_assert!(!blocking, "blocking transmit was pre-checked");
                            if tracing {
                                self.sink.record(Event::new(
                                    self.cycle,
                                    EventKind::NetworkDiscarded {
                                        packet: serial,
                                        stage: stage as u32,
                                        switch: sw as u32,
                                    },
                                ));
                            }
                            self.metrics.record_network_discard();
                            self.ledger.discarded += 1;
                        }
                    }
                }
            }
        }
        forwarded
    }

    fn inject(&mut self) {
        let blocking = self.config.flow_control.requires_backpressure();
        for src in 0..self.config.size {
            let Some(front) = self.source_queues[src].front() else {
                continue;
            };
            let (sw, port) = self.plan.entry(NodeId::new(src));
            let out = self.plan.route_output(0, front.dest());
            let slots = front.slots_needed(DEFAULT_SLOT_BYTES);
            if blocking && !self.switches[0][sw].can_accept(port, out, slots) {
                continue; // hold the packet; try again next cycle
            }
            // lint: allow — the queue front was checked non-empty above.
            let mut packet = self.source_queues[src].pop_front().expect("front checked");
            packet.mark_injected(self.cycle);
            let serial = packet.id().serial();
            match self.switches[0][sw].receive(port, out, packet) {
                Ok(()) => {
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::Injected {
                                packet: serial,
                                source: src as u32,
                            },
                        ));
                    }
                    self.metrics.record_injected();
                }
                Err(_rejected) => {
                    debug_assert!(!blocking, "blocking inject was pre-checked");
                    if self.sink.enabled() {
                        self.sink.record(Event::new(
                            self.cycle,
                            EventKind::EntryDiscarded {
                                packet: serial,
                                source: src as u32,
                            },
                        ));
                    }
                    self.metrics.record_entry_discard();
                    self.ledger.discarded += 1;
                }
            }
        }
    }

    /// Emits end-of-cycle aggregate events: one
    /// [`HolBlocked`](EventKind::HolBlocked) per switch that blocked this
    /// cycle, then one [`CycleSample`](EventKind::CycleSample). Only
    /// called while the sink is enabled.
    fn emit_cycle_sample(&mut self, forwarded: Vec<u32>) {
        let stages = self.topology.stages();
        let mut occupied = vec![0u32; stages];
        let mut buffer_occupancy = vec![0u32; self.config.slots_per_buffer + 1];
        let mut hol_total = 0u32;
        for (stage, row) in self.switches.iter().enumerate() {
            for (sw, switch) in row.iter().enumerate() {
                occupied[stage] += switch.occupied_slots() as u32;
                for port in 0..switch.ports() {
                    let used = switch.buffer(damq_core::InputPort::new(port)).used_slots();
                    buffer_occupancy[used.min(self.config.slots_per_buffer)] += 1;
                }
                let blocked = switch.hol_blocked_last_cycle() as u32;
                if blocked > 0 {
                    hol_total += blocked;
                    self.sink.record(Event::new(
                        self.cycle,
                        EventKind::HolBlocked {
                            stage: stage as u32,
                            switch: sw as u32,
                            blocked,
                        },
                    ));
                }
            }
        }
        let forwarded = if forwarded.is_empty() {
            vec![0u32; stages]
        } else {
            forwarded
        };
        self.sink.record(Event::new(
            self.cycle,
            EventKind::CycleSample {
                occupied,
                forwarded,
                buffer_occupancy,
                backlog: self.source_backlog() as u32,
                hol_blocked: hol_total,
            },
        ));
    }

    /// Verifies end-of-cycle packet conservation against the lifetime
    /// ledger (which, unlike [`NetworkSim::metrics`], survives
    /// [`NetworkSim::warm_up`]): every packet ever generated is delivered,
    /// discarded, waiting at a source, or resident in a buffer — exactly
    /// one of the four.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] naming the imbalance.
    pub fn audit_conservation(&self) -> Result<(), AuditError> {
        let accounted = self.ledger.delivered
            + self.ledger.discarded
            + self.source_backlog() as u64
            + self.packets_in_flight() as u64;
        if self.ledger.generated != accounted {
            return Err(AuditError::new(
                "packet-conservation",
                format!(
                    "generated {} but delivered {} + discarded {} + backlog {} + in-flight {} = {accounted}",
                    self.ledger.generated,
                    self.ledger.delivered,
                    self.ledger.discarded,
                    self.source_backlog(),
                    self.packets_in_flight(),
                ),
            ));
        }
        Ok(())
    }

    /// Full network audit: buffer structure in every switch plus packet
    /// conservation.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn audit(&self) -> Result<(), AuditError> {
        for row in &self.switches {
            for sw in row {
                sw.audit()?;
            }
        }
        self.audit_conservation()
    }

    /// Verifies buffer invariants in every switch (testing aid).
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        for row in &self.switches {
            for sw in row {
                sw.check_invariants();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CLOCKS_PER_CYCLE;

    fn small(kind: BufferKind) -> NetworkConfig {
        NetworkConfig::new(16, 4)
            .buffer_kind(kind)
            .offered_load(0.3)
            .seed(11)
    }

    #[test]
    fn packets_flow_and_arrive_at_their_destinations() {
        let mut sim = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        sim.run(200);
        assert!(sim.metrics().delivered() > 500);
        // debug_assert in advance_stages checks per-packet destinations.
        sim.check_invariants();
    }

    #[test]
    fn conservation_generated_equals_everything_else() {
        for kind in BufferKind::ALL {
            for flow in FlowControl::ALL {
                let mut sim =
                    NetworkSim::new(small(kind).flow_control(flow).offered_load(0.8)).unwrap();
                sim.run(300);
                let m = sim.metrics();
                let accounted = m.delivered()
                    + m.discarded()
                    + sim.source_backlog() as u64
                    + sim.packets_in_flight() as u64;
                assert_eq!(m.generated(), accounted, "{kind}/{flow}");
            }
        }
    }

    #[test]
    fn blocking_protocol_never_discards() {
        let mut sim = NetworkSim::new(
            small(BufferKind::Fifo)
                .flow_control(FlowControl::Blocking)
                .offered_load(0.95),
        )
        .unwrap();
        sim.run(300);
        assert_eq!(sim.metrics().discarded(), 0);
    }

    #[test]
    fn discarding_protocol_drops_under_overload() {
        let mut sim = NetworkSim::new(
            small(BufferKind::Fifo)
                .flow_control(FlowControl::Discarding)
                .offered_load(0.95),
        )
        .unwrap();
        sim.run(300);
        assert!(sim.metrics().discarded() > 0);
    }

    #[test]
    fn minimum_latency_is_one_cycle_per_stage() {
        // A single packet in an otherwise idle 2-stage network takes
        // exactly `stages` cycles from injection to delivery.
        let mut sim =
            NetworkSim::new(NetworkConfig::new(16, 4).offered_load(0.01).seed(3)).unwrap();
        sim.run(500);
        let m = sim.metrics();
        assert!(m.delivered() > 0);
        let floor = sim.topology().stages() as f64 * CLOCKS_PER_CYCLE as f64;
        assert!(m.mean_network_latency_clocks() >= floor - 1e-9);
        // At 1% load there is essentially no queueing.
        assert!(m.mean_network_latency_clocks() < floor * 1.2);
    }

    #[test]
    fn same_seed_same_results() {
        let run = || {
            let mut sim = NetworkSim::new(small(BufferKind::Damq).seed(99)).unwrap();
            sim.run(150);
            (
                sim.metrics().generated(),
                sim.metrics().delivered(),
                sim.metrics().mean_latency_clocks(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut sim = NetworkSim::new(small(BufferKind::Damq).seed(seed)).unwrap();
            sim.run(150);
            sim.metrics().generated()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn warm_up_resets_the_window() {
        let mut sim = NetworkSim::new(small(BufferKind::Damq)).unwrap();
        sim.warm_up(50);
        assert_eq!(sim.metrics().cycles(), 0);
        assert_eq!(sim.metrics().generated(), 0);
        assert!(sim.cycle() == 50);
    }

    #[test]
    fn samq_slots_must_divide_radix() {
        let err = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Samq)
                .slots_per_buffer(3),
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::Buffer(_)));
    }

    #[test]
    fn shifted_traffic_with_zero_offset_is_conflict_free() {
        // dest = source: in an Omega network the identity permutation is
        // routable without conflicts, so blocking FIFO at full load still
        // delivers one packet per sink per cycle.
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .traffic(TrafficPattern::Shifted { offset: 0 })
                .offered_load(1.0)
                .seed(5),
        )
        .unwrap();
        sim.warm_up(50);
        sim.run(100);
        let m = sim.metrics();
        assert!(
            m.delivered_throughput() > 0.999,
            "throughput {}",
            m.delivered_throughput()
        );
    }

    #[test]
    fn variable_length_packets_flow_too() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .packet_lengths(PacketLengths::Uniform { min: 1, max: 32 })
                .slots_per_buffer(8)
                .offered_load(0.2)
                .seed(21),
        )
        .unwrap();
        sim.run(300);
        assert!(sim.metrics().delivered() > 0);
        sim.check_invariants();
    }

    /// Counts `Forwarded` events emitted by non-final stages — exactly
    /// the departures that need a route to the next stage.
    fn non_final_forwards(
        sim: &NetworkSim<damq_core::AnyBuffer, damq_telemetry::MemorySink<Event>>,
    ) -> u64 {
        let last = (sim.topology().stages() - 1) as u32;
        sim.sink()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Forwarded { stage, .. } if stage < last))
            .count() as u64
    }

    #[test]
    fn discarding_routes_each_departure_exactly_once() {
        // Without backpressure the probe closure never routes, so the
        // departure loop must account for every query: one per forwarded
        // packet leaving a non-final stage.
        let mut sim = NetworkSim::with_sink(
            small(BufferKind::Damq)
                .flow_control(FlowControl::Discarding)
                .offered_load(0.6),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.run(300);
        let forwards = non_final_forwards(&sim);
        assert!(forwards > 0);
        assert_eq!(sim.route_plan().route_queries(), forwards);
    }

    #[test]
    fn blocking_departures_reuse_the_probe_route() {
        // The identity permutation is conflict-free in an Omega network
        // and the downstream buffers drain every cycle, so every
        // backpressure probe leads to a departure. Routing must therefore
        // be queried exactly once per non-final forward; recomputing the
        // route in the departure loop would double the count.
        let mut sim = NetworkSim::with_sink(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Damq)
                .traffic(TrafficPattern::Shifted { offset: 0 })
                .flow_control(FlowControl::Blocking)
                .offered_load(1.0)
                .seed(5),
            damq_telemetry::MemorySink::new(),
        )
        .unwrap();
        sim.run(100);
        let forwards = non_final_forwards(&sim);
        assert!(forwards > 0);
        assert_eq!(sim.route_plan().route_queries(), forwards);
    }

    #[test]
    fn hot_spot_concentrates_deliveries() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .traffic(TrafficPattern::HotSpot {
                    fraction: 0.3,
                    target: NodeId::new(5),
                })
                .offered_load(0.2)
                .seed(8),
        )
        .unwrap();
        sim.run(400);
        let per_sink = sim.metrics().per_sink_delivered();
        let hot = per_sink[5];
        let mean_other: f64 = per_sink
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 5)
            .map(|(_, &c)| c as f64)
            .sum::<f64>()
            / 15.0;
        assert!(hot as f64 > 3.0 * mean_other);
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    #[test]
    fn on_off_preserves_the_mean_rate() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .offered_load(0.3)
                .arrival_process(ArrivalProcess::OnOff {
                    mean_burst: 8.0,
                    duty: 0.4,
                })
                .seed(42),
        )
        .unwrap();
        sim.run(20_000);
        let rate = sim.metrics().offered_throughput();
        assert!((rate - 0.3).abs() < 0.01, "mean rate drifted: {rate}");
    }

    #[test]
    fn bursts_create_burstier_queues_than_bernoulli() {
        // Same mean load; the on/off process should produce a longer
        // latency tail (p99) than Bernoulli.
        let run = |arrivals: ArrivalProcess| {
            let mut sim = NetworkSim::new(
                NetworkConfig::new(16, 4)
                    .buffer_kind(BufferKind::Damq)
                    .offered_load(0.35)
                    .arrival_process(arrivals)
                    .seed(9),
            )
            .unwrap();
            sim.warm_up(500);
            sim.run(8_000);
            sim.metrics().latency_percentile_clocks(0.99)
        };
        let smooth = run(ArrivalProcess::Bernoulli);
        let bursty = run(ArrivalProcess::OnOff {
            mean_burst: 12.0,
            duty: 0.3,
        });
        assert!(
            bursty > smooth,
            "bursty p99 {bursty} should exceed smooth p99 {smooth}"
        );
    }

    #[test]
    fn duty_one_degenerates_to_bernoulli_rates() {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(16, 4)
                .offered_load(0.25)
                .arrival_process(ArrivalProcess::OnOff {
                    mean_burst: 5.0,
                    duty: 1.0,
                })
                .seed(3),
        )
        .unwrap();
        sim.run(10_000);
        let rate = sim.metrics().offered_throughput();
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "duty is a fraction")]
    fn invalid_duty_rejected() {
        let _ = NetworkConfig::new(16, 4).arrival_process(ArrivalProcess::OnOff {
            mean_burst: 4.0,
            duty: 1.5,
        });
    }
}
