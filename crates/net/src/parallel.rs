//! Sharded stepping: stage islands, the phase engine, and the
//! deterministic departure merge.
//!
//! [`NetworkSim::with_threads`](crate::NetworkSim::with_threads) splits
//! every pipeline stage into contiguous **islands** of switches
//! ([`IslandPartition`]) and steps each stage in two phases:
//!
//! * **Phase A (parallel)** — every island arbitrates its switches with
//!   [`Switch::transmit_cycle`], probing downstream space through
//!   `&self` reads, and parks each departure in its island's
//!   [`StageLane`] as a [`DepartRecord`].
//! * **Phase B (serial merge)** — the lanes drain in ascending island
//!   (and therefore switch) order, replaying the exact serial departure
//!   loop: misroute faults, route fallback, telemetry events, receives,
//!   metrics.
//!
//! # Determinism
//!
//! Phase A touches pairwise-disjoint state: each switch's buffers are
//! its own, and in these banyan-class topologies every downstream
//! `(switch, input port)` is wired to exactly one upstream
//! `(switch, output)` (pinned by the topology tests), so no island's
//! probes can observe another island's work — a stage's probes read only
//! *downstream* buffers, which no phase-A transmit mutates. Phase B is
//! the only writer of shared state (downstream buffers, metrics,
//! telemetry, fault counters) and always runs in the same order, so a
//! serial run and an N-thread run produce byte-identical traces and
//! metrics. See `docs/ARCHITECTURE.md` for the full argument.

use damq_core::{OutputPort, Packet, SwitchBuffer};
use damq_shard::PhasePool;
use damq_switch::Switch;

use crate::topology::HopRoute;

/// A contiguous split of one stage's switches into islands, one per
/// simulation lane.
///
/// Islands are as even as possible: `switches` mod `islands` leading
/// islands get one extra switch. The island count is clamped to
/// `1..=switches`, so both degenerate shapes — one island holding the
/// whole stage, and one island per switch — are valid partitions.
///
/// # Examples
///
/// ```
/// use damq_net::IslandPartition;
///
/// let p = IslandPartition::new(16, 4);
/// assert_eq!(p.islands(), 4);
/// assert_eq!(p.bounds(), &[0, 4, 8, 12, 16]);
/// assert_eq!(IslandPartition::new(5, 3).bounds(), &[0, 2, 4, 5]);
/// assert_eq!(IslandPartition::new(4, 99).islands(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandPartition {
    bounds: Vec<usize>,
}

impl IslandPartition {
    /// Partitions `switches` switches into at most `islands` contiguous
    /// islands (at least one; never more than there are switches).
    pub fn new(switches: usize, islands: usize) -> Self {
        let switches = switches.max(1);
        let islands = islands.clamp(1, switches);
        let base = switches / islands;
        let rem = switches % islands;
        let mut bounds = Vec::with_capacity(islands + 1);
        bounds.push(0);
        let mut at = 0;
        for i in 0..islands {
            at += base + usize::from(i < rem);
            bounds.push(at);
        }
        IslandPartition { bounds }
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Island edges: island `i` owns switches
    /// `bounds()[i]..bounds()[i + 1]`.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The island that owns `switch`.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is outside the partitioned range.
    pub fn island_of(&self, switch: usize) -> usize {
        self.bounds
            .windows(2)
            .position(|w| (w[0]..w[1]).contains(&switch))
            // lint: allow — contract documented above; bounds cover the range.
            .unwrap_or_else(|| panic!("switch {switch} outside partition"))
    }
}

/// Wall-clock phase breakdown drained from a sharded
/// [`NetworkSim`](crate::NetworkSim) by
/// [`NetworkSim::phase_profile`](crate::NetworkSim::phase_profile).
///
/// All values are nanoseconds of *harness* wall-clock — where the
/// stepping loop spends real time, never simulated cycles. The three
/// buckets decompose a sharded run: phase-A busy time per lane,
/// the submitting thread's barrier wait (its idle share while
/// stragglers finish), and the serial phase-B merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-lane phase-A busy time (lane 0 is the stepping thread).
    pub lane_busy_ns: Vec<u64>,
    /// Stepping thread's time blocked at the phase-A barrier.
    pub barrier_wait_ns: u64,
    /// Serial phase-B merge time (departure apply, in switch order).
    pub merge_ns: u64,
    /// Phases executed while profiling was enabled.
    pub phases: u64,
}

impl PhaseProfile {
    /// Total phase-A busy nanoseconds across all lanes.
    pub fn busy_ns(&self) -> u64 {
        self.lane_busy_ns.iter().sum()
    }

    /// Total accounted wall-clock: busy + barrier wait + merge.
    pub fn total_ns(&self) -> u64 {
        self.busy_ns() + self.barrier_wait_ns + self.merge_ns
    }

    /// Barrier-wait share of the accounted total, in `0.0..=1.0`
    /// (0 when nothing was profiled).
    pub fn barrier_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.barrier_wait_ns as f64 / total as f64
    }

    /// Serial-merge share of the accounted total, in `0.0..=1.0`.
    pub fn merge_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        self.merge_ns as f64 / total as f64
    }
}

/// One departure collected by phase A, applied by phase B.
///
/// `route` carries the backpressure probe's parked [`HopRoute`] under
/// the blocking protocol (so phase B routes each departure exactly once,
/// same as the serial loop); it is `None` under discarding flow control,
/// where only phase B routes.
#[derive(Debug)]
pub(crate) struct DepartRecord {
    /// Absolute switch index within the stage.
    pub(crate) sw: usize,
    /// The crossbar output the packet left through.
    pub(crate) output: OutputPort,
    /// The probe's parked route (blocking protocol only).
    pub(crate) route: Option<HopRoute>,
    /// The departing packet.
    pub(crate) packet: Packet,
}

/// Per-island working memory: the probe's route scratch and the
/// departure records the island collected this phase. Reused every
/// cycle, so steady-state stepping stays allocation-free.
#[derive(Debug)]
pub(crate) struct StageLane {
    /// Per-output parked probe routes (reset per switch).
    pub(crate) scratch: Vec<Option<HopRoute>>,
    /// Departures collected by this island, in switch order.
    pub(crate) records: Vec<DepartRecord>,
    /// Switches this island advanced with the quiescent fast path this
    /// phase (reset per phase; summed serially into `net.idle_skipped`).
    pub(crate) idle_skipped: u64,
}

/// The sharded stage engine owned by a
/// [`NetworkSim`](crate::NetworkSim): a [`PhasePool`], the island
/// partition (identical for every stage), and one [`StageLane`] per
/// island.
#[derive(Debug)]
pub(crate) struct ParallelEngine {
    pool: PhasePool,
    partition: IslandPartition,
    lanes: Vec<StageLane>,
}

impl ParallelEngine {
    pub(crate) fn new(threads: usize, per_stage: usize, radix: usize) -> Self {
        let partition = IslandPartition::new(per_stage, threads.max(1));
        let lanes = (0..partition.islands())
            .map(|_| StageLane {
                scratch: vec![None; radix],
                records: Vec::new(),
                idle_skipped: 0,
            })
            .collect();
        ParallelEngine {
            pool: PhasePool::new(threads.max(1)),
            partition,
            lanes,
        }
    }

    /// Number of simulation lanes (threads) phases run on.
    pub(crate) fn threads(&self) -> usize {
        self.pool.threads()
    }

    pub(crate) fn islands(&self) -> usize {
        self.partition.islands()
    }

    pub(crate) fn partition(&self) -> &IslandPartition {
        &self.partition
    }

    /// Phase A: runs `per_switch` over every switch of `row`, islands in
    /// parallel, collecting into each island's [`StageLane`]. Lanes are
    /// cleared first; the call returns only after every island finishes.
    pub(crate) fn collect<B, C, F>(&mut self, row: &mut [Switch<B>], ctx: &C, per_switch: &F)
    where
        B: SwitchBuffer,
        C: Sync,
        F: Fn(usize, &mut Switch<B>, &mut StageLane, &C) + Sync,
    {
        for lane in &mut self.lanes {
            lane.records.clear();
            lane.idle_skipped = 0;
        }
        self.pool.run_phase(
            row,
            self.partition.bounds(),
            &mut self.lanes,
            ctx,
            &|_, start, chunk, lane, ctx| {
                for (i, switch) in chunk.iter_mut().enumerate() {
                    per_switch(start + i, switch, lane, ctx);
                }
            },
        );
    }

    /// Quiescent switches advanced by the idle fast path in the most
    /// recent phase, summed over every island (read serially after
    /// [`collect`](ParallelEngine::collect) returns).
    pub(crate) fn idle_skipped_in_phase(&self) -> u64 {
        self.lanes.iter().map(|l| l.idle_skipped).sum()
    }

    /// Phase B: drains island `island`'s records, in the order phase A
    /// collected them (ascending switch, then crossbar grant order).
    pub(crate) fn lane_records(&mut self, island: usize) -> std::vec::Drain<'_, DepartRecord> {
        self.lanes[island].records.drain(..)
    }

    /// Turns the pool's wall-clock phase timer on or off.
    pub(crate) fn set_timing(&self, enabled: bool) {
        self.pool.set_timing(enabled);
    }

    /// Drains the pool's accumulated phase-timer totals.
    pub(crate) fn take_times(&self) -> damq_shard::PhaseTimes {
        self.pool.take_times()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_partition_single_island_holds_everything() {
        let p = IslandPartition::new(16, 1);
        assert_eq!(p.islands(), 1);
        assert_eq!(p.bounds(), &[0, 16]);
        assert_eq!(p.island_of(0), 0);
        assert_eq!(p.island_of(15), 0);
    }

    #[test]
    fn degenerate_partition_one_island_per_switch() {
        let p = IslandPartition::new(16, 16);
        assert_eq!(p.islands(), 16);
        for sw in 0..16 {
            assert_eq!(p.island_of(sw), sw);
            assert_eq!(p.bounds()[sw + 1] - p.bounds()[sw], 1);
        }
        // More islands than switches clamps to one per switch.
        assert_eq!(IslandPartition::new(16, 64), p);
    }

    #[test]
    fn partition_is_contiguous_even_and_exhaustive() {
        for switches in [1usize, 3, 5, 16, 256] {
            for islands in [1usize, 2, 3, 4, 8, 300] {
                check_partition_invariants(switches, islands);
            }
        }
    }

    /// The full partition contract, checked for one `(switches, islands)`
    /// request: bounds cover `0..switches` contiguously, no island is
    /// empty, sizes differ by at most one, the island count is the
    /// clamped request, and `island_of` agrees with `bounds`.
    fn check_partition_invariants(switches: usize, islands: usize) {
        let p = IslandPartition::new(switches, islands);
        let b = p.bounds();
        let effective_switches = switches.max(1);
        assert_eq!(
            p.islands(),
            islands.clamp(1, effective_switches),
            "{switches}/{islands}: island count is the clamped request"
        );
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().expect("nonempty"), effective_switches);
        let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
        let min = sizes.iter().min().expect("nonempty");
        let max = sizes.iter().max().expect("nonempty");
        assert!(max - min <= 1, "{switches}/{islands}: uneven {sizes:?}");
        assert!(
            sizes.iter().all(|&s| s >= 1),
            "{switches}/{islands}: empty island in {sizes:?}"
        );
        for sw in 0..effective_switches {
            let island = p.island_of(sw);
            assert!(
                (b[island]..b[island + 1]).contains(&sw),
                "{switches}/{islands}: island_of({sw}) = {island} disagrees with bounds"
            );
        }
    }

    #[test]
    fn partition_property_random_shapes() {
        // Seeded property sweep over arbitrary shapes, weighted toward
        // the degenerate corners the satellite task names: requests with
        // more islands than switches (clamped, one switch each),
        // single-switch stages, and tiny stages split many ways.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x0151_A4D5);
        for _ in 0..500 {
            let switches = rng.random_range(1..=300usize);
            let islands = rng.random_range(1..=64usize);
            check_partition_invariants(switches, islands);
        }
        for _ in 0..250 {
            // threads > switches: always clamps to one island per switch.
            let switches = rng.random_range(1..=8usize);
            let islands = switches + rng.random_range(1..=64usize);
            let p = IslandPartition::new(switches, islands);
            assert_eq!(p.islands(), switches);
            assert!(p.bounds().windows(2).all(|w| w[1] - w[0] == 1));
            check_partition_invariants(switches, islands);
        }
        for _ in 0..100 {
            // Single-switch stages swallow any thread count whole.
            let islands = rng.random_range(1..=1024usize);
            let p = IslandPartition::new(1, islands);
            assert_eq!(p.islands(), 1);
            assert_eq!(p.bounds(), &[0, 1]);
        }
    }

    #[test]
    fn partition_zero_requests_are_clamped_not_empty() {
        // `new` clamps a zero-switch stage to one switch and a
        // zero-island request to one island — an *empty* partition (or
        // an empty island) can never be constructed.
        check_partition_invariants(0, 0);
        check_partition_invariants(0, 7);
        check_partition_invariants(9, 0);
        assert_eq!(IslandPartition::new(0, 0).bounds(), &[0, 1]);
        assert_eq!(IslandPartition::new(5, 0).islands(), 1);
    }
}
