//! One-shot experiment runs: warm up, measure, summarise.

use damq_core::{FaultLedger, FaultPlan};

use crate::network::{NetworkConfig, NetworkError, NetworkSim};

/// Summary of one measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Offered load actually generated (packets/terminal/cycle).
    pub offered: f64,
    /// Delivered throughput (packets/terminal/cycle).
    pub delivered: f64,
    /// Mean birth-to-delivery latency in clock cycles (includes
    /// source-queue wait).
    pub latency_clocks: f64,
    /// Mean injection-to-delivery latency in clock cycles (in-network
    /// only).
    pub network_latency_clocks: f64,
    /// 95th-percentile birth-to-delivery latency in clock cycles.
    pub latency_p95_clocks: f64,
    /// 99th-percentile birth-to-delivery latency in clock cycles.
    pub latency_p99_clocks: f64,
    /// Fraction of generated packets discarded (discarding protocol only).
    pub discard_fraction: f64,
    /// Packets still queued at the sources when the window closed — a
    /// growing backlog is the signature of saturation under blocking.
    pub source_backlog: usize,
    /// Cycles in the measurement window.
    pub cycles: u64,
}

impl Measurement {
    /// Names of every metric, in declaration order — the serialization
    /// schema used by the bench harnesses' JSON reports.
    pub const FIELD_NAMES: [&'static str; 9] = [
        "offered",
        "delivered",
        "latency_clocks",
        "network_latency_clocks",
        "latency_p95_clocks",
        "latency_p99_clocks",
        "discard_fraction",
        "source_backlog",
        "cycles",
    ];

    /// Every metric as a `(name, value)` pair, in [`Measurement::FIELD_NAMES`]
    /// order; the integer-valued fields (`source_backlog`, `cycles`) are
    /// widened to `f64`.
    ///
    /// This is the hook serializers and aggregators iterate instead of
    /// hard-coding the struct layout — adding a metric here extends every
    /// JSON report and every multi-seed aggregate at once.
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_net::Measurement;
    ///
    /// let m = Measurement {
    ///     offered: 0.5,
    ///     delivered: 0.5,
    ///     latency_clocks: 30.0,
    ///     network_latency_clocks: 25.0,
    ///     latency_p95_clocks: 60.0,
    ///     latency_p99_clocks: 90.0,
    ///     discard_fraction: 0.0,
    ///     source_backlog: 3,
    ///     cycles: 1_000,
    /// };
    /// let fields = m.fields();
    /// assert_eq!(fields.len(), Measurement::FIELD_NAMES.len());
    /// assert_eq!(fields[0], ("offered", 0.5));
    /// assert_eq!(fields[8], ("cycles", 1_000.0));
    /// ```
    pub fn fields(&self) -> [(&'static str, f64); 9] {
        [
            ("offered", self.offered),
            ("delivered", self.delivered),
            ("latency_clocks", self.latency_clocks),
            ("network_latency_clocks", self.network_latency_clocks),
            ("latency_p95_clocks", self.latency_p95_clocks),
            ("latency_p99_clocks", self.latency_p99_clocks),
            ("discard_fraction", self.discard_fraction),
            ("source_backlog", self.source_backlog as f64),
            ("cycles", self.cycles as f64),
        ]
    }
}

/// Runs `config` for `warm_up` cycles, then measures for `window` cycles.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network construction.
///
/// # Examples
///
/// ```
/// use damq_core::BufferKind;
/// use damq_net::{measure, NetworkConfig};
///
/// let m = measure(
///     NetworkConfig::new(16, 4).buffer_kind(BufferKind::Damq).offered_load(0.3),
///     200,
///     500,
/// )?;
/// assert!(m.delivered > 0.25);
/// # Ok::<(), damq_net::NetworkError>(())
/// ```
pub fn measure(
    config: NetworkConfig,
    warm_up: u64,
    window: u64,
) -> Result<Measurement, NetworkError> {
    let mut sim = NetworkSim::new(config)?;
    sim.warm_up(warm_up);
    sim.run(window);
    Ok(summarise(&sim))
}

/// Like [`measure`], but with a [`FaultPlan`] installed for the whole run
/// (warm-up included — faults do not wait for the measurement window) and
/// an `on_cycle` callback invoked after every simulated cycle, which sweep
/// harnesses use as a watchdog heartbeat.
///
/// Returns the measurement together with the run's [`FaultLedger`] so
/// callers can report how much damage the plan actually inflicted.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network construction.
///
/// # Panics
///
/// Panics if the post-run consistency audit fails — under fault injection
/// a silently-wrong result is worse than a loud one, and the self-healing
/// sweep harness turns the panic into a reported cell outcome.
pub fn measure_with_faults(
    config: NetworkConfig,
    plan: FaultPlan,
    warm_up: u64,
    window: u64,
    mut on_cycle: impl FnMut(),
) -> Result<(Measurement, FaultLedger), NetworkError> {
    let mut sim = NetworkSim::with_faults(config, plan)?;
    for _ in 0..warm_up {
        sim.step();
        on_cycle();
    }
    sim.warm_up(0); // zero the metrics; the faults stay armed
    for _ in 0..window {
        sim.step();
        on_cycle();
    }
    // lint: allow — documented above: an audit failure under faults must
    // be loud; the isolation harness reports the panic as a cell outcome.
    sim.audit().expect("fault-injected run failed its audit");
    Ok((summarise(&sim), sim.fault_ledger()))
}

fn summarise(sim: &NetworkSim) -> Measurement {
    let m = sim.metrics();
    Measurement {
        offered: m.offered_throughput(),
        delivered: m.delivered_throughput(),
        latency_clocks: m.mean_latency_clocks(),
        network_latency_clocks: m.mean_network_latency_clocks(),
        latency_p95_clocks: m.latency_percentile_clocks(0.95),
        latency_p99_clocks: m.latency_percentile_clocks(0.99),
        discard_fraction: m.discard_fraction(),
        source_backlog: sim.source_backlog(),
        cycles: m.cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damq_core::BufferKind;
    use damq_switch::FlowControl;

    #[test]
    fn below_saturation_delivery_tracks_offer() {
        let m = measure(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Damq)
                .offered_load(0.3)
                .seed(1),
            300,
            1000,
        )
        .unwrap();
        assert!((m.delivered - m.offered).abs() < 0.02);
        assert_eq!(m.discard_fraction, 0.0);
    }

    #[test]
    fn overload_leaves_a_backlog_under_blocking() {
        let m = measure(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .offered_load(1.0)
                .flow_control(FlowControl::Blocking)
                .seed(2),
            200,
            800,
        )
        .unwrap();
        assert!(m.delivered < 0.95 * m.offered);
        assert!(m.source_backlog > 0);
    }

    #[test]
    fn percentiles_bound_the_mean() {
        let m = measure(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .offered_load(0.45)
                .seed(9),
            300,
            1_000,
        )
        .unwrap();
        assert!(m.latency_p95_clocks >= m.latency_clocks * 0.9);
        assert!(m.latency_p99_clocks >= m.latency_p95_clocks);
    }

    #[test]
    fn field_names_match_field_values() {
        let m = measure(NetworkConfig::new(16, 4).offered_load(0.2), 50, 200).unwrap();
        let fields = m.fields();
        assert_eq!(fields.len(), Measurement::FIELD_NAMES.len());
        for ((name, _), &expected) in fields.iter().zip(Measurement::FIELD_NAMES.iter()) {
            assert_eq!(*name, expected);
        }
        assert_eq!(fields[1].1, m.delivered);
        assert_eq!(fields[8].1, m.cycles as f64);
    }

    #[test]
    fn faulted_measure_reports_the_ledger_and_ticks_every_cycle() {
        let spec = damq_core::FaultSpec {
            dead_slot_fraction: 0.2,
            ..damq_core::FaultSpec::fault_free(2, 4, 4, 16, 4, 100)
        };
        let plan = FaultPlan::generate(7, &spec);
        let mut ticks = 0u64;
        let (m, ledger) = measure_with_faults(
            NetworkConfig::new(16, 4).offered_load(0.3).seed(11),
            plan,
            100,
            400,
            || ticks += 1,
        )
        .unwrap();
        assert_eq!(ticks, 500, "one heartbeat per simulated cycle");
        assert_eq!(m.cycles, 400, "warm-up stays out of the window");
        assert!(ledger.slots_killed > 0);
        assert!(m.delivered > 0.0);
    }

    #[test]
    fn window_length_is_reported() {
        let m = measure(NetworkConfig::new(16, 4).offered_load(0.1), 10, 42).unwrap();
        assert_eq!(m.cycles, 42);
    }
}
