//! Saturation-throughput search.
//!
//! Pfister & Norton's latency/throughput curves (reproduced as the paper's
//! Figure 3) are flat until the network saturates, then turn nearly
//! vertical. The *saturation throughput* — where delivered throughput stops
//! tracking offered load — is the paper's headline comparison metric
//! (Tables 4–6). This module finds it by bisection on the offered load.

use crate::network::{NetworkConfig, NetworkError};
use crate::runner::{measure, Measurement};

/// Controls for [`find_saturation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationOptions {
    /// Warm-up cycles per probe.
    pub warm_up: u64,
    /// Measurement cycles per probe.
    pub window: u64,
    /// A load is saturated when delivered throughput falls below this
    /// fraction of offered load (or that fraction of packets is discarded).
    pub efficiency_threshold: f64,
    /// Stop when the bracket is narrower than this.
    pub resolution: f64,
}

impl Default for SaturationOptions {
    fn default() -> Self {
        SaturationOptions {
            warm_up: 500,
            window: 2_000,
            efficiency_threshold: 0.975,
            resolution: 0.01,
        }
    }
}

/// Result of a saturation search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationResult {
    /// Highest offered load the network sustains (delivered ≈ offered).
    pub throughput: f64,
    /// Mean in-network latency, in clock cycles, measured just **above**
    /// the saturation point — the paper's "saturated" latency column.
    pub saturated_latency_clocks: f64,
    /// Full measurement at the just-above-saturation load.
    pub at_saturation: Measurement,
    /// Number of probe simulations run.
    pub probes: usize,
}

fn is_saturated(m: &Measurement, threshold: f64) -> bool {
    if m.offered <= 0.0 {
        return false;
    }
    let efficiency = m.delivered / m.offered;
    efficiency < threshold
}

/// Finds the saturation throughput of `config` (its `offered_load` is
/// ignored) by bisection over offered load.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network construction.
///
/// # Examples
///
/// ```no_run
/// use damq_core::BufferKind;
/// use damq_net::{find_saturation, NetworkConfig, SaturationOptions};
///
/// let damq = find_saturation(
///     NetworkConfig::new(64, 4).buffer_kind(BufferKind::Damq),
///     SaturationOptions::default(),
/// )?;
/// let fifo = find_saturation(
///     NetworkConfig::new(64, 4).buffer_kind(BufferKind::Fifo),
///     SaturationOptions::default(),
/// )?;
/// assert!(damq.throughput > fifo.throughput);
/// # Ok::<(), damq_net::NetworkError>(())
/// ```
pub fn find_saturation(
    config: NetworkConfig,
    options: SaturationOptions,
) -> Result<SaturationResult, NetworkError> {
    let mut probes = 0usize;
    let mut probe = |load: f64| -> Result<Measurement, NetworkError> {
        probes += 1;
        measure(config.offered_load(load), options.warm_up, options.window)
    };

    let mut lo = 0.05;
    let mut hi = 1.0;
    let top = probe(hi)?;
    let saturation = if !is_saturated(&top, options.efficiency_threshold) {
        // Never saturates in the probe range.
        hi
    } else {
        let bottom = probe(lo)?;
        if is_saturated(&bottom, options.efficiency_threshold) {
            lo = 0.0; // saturated even at the floor; report ~0
        }
        while hi - lo > options.resolution {
            let mid = 0.5 * (lo + hi);
            let m = probe(mid)?;
            if is_saturated(&m, options.efficiency_threshold) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    };

    // The paper's "saturated" latency column: latency just past the knee.
    let above = (saturation + 0.05).min(1.0);
    let at_saturation = probe(above)?;
    Ok(SaturationResult {
        throughput: saturation,
        saturated_latency_clocks: at_saturation.network_latency_clocks,
        at_saturation,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use damq_core::BufferKind;

    fn quick() -> SaturationOptions {
        SaturationOptions {
            warm_up: 150,
            window: 500,
            efficiency_threshold: 0.975,
            resolution: 0.02,
        }
    }

    #[test]
    fn finds_a_knee_between_zero_and_one() {
        let r = find_saturation(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .seed(1),
            quick(),
        )
        .unwrap();
        assert!(r.throughput > 0.2 && r.throughput < 1.0, "{}", r.throughput);
        assert!(r.probes >= 3);
    }

    #[test]
    fn damq_sustains_more_than_fifo() {
        let sat = |kind| {
            find_saturation(NetworkConfig::new(16, 4).buffer_kind(kind).seed(1), quick())
                .unwrap()
                .throughput
        };
        assert!(sat(BufferKind::Damq) > sat(BufferKind::Fifo));
    }

    #[test]
    fn conflict_free_traffic_never_saturates() {
        let r = find_saturation(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Damq)
                .traffic(TrafficPattern::Shifted { offset: 0 })
                .seed(2),
            quick(),
        )
        .unwrap();
        assert!((r.throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_latency_exceeds_floor() {
        let r = find_saturation(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Fifo)
                .seed(3),
            quick(),
        )
        .unwrap();
        // Two stages * 12 clocks is the floor for a 16-node radix-4 net.
        assert!(r.saturated_latency_clocks > 24.0);
    }
}
