//! Closed-form reference points from switching theory.
//!
//! The simulator's numbers should sit in known analytic brackets:
//!
//! * **Head-of-line (HOL) saturation** — an input-queued k×k crossbar with
//!   FIFO buffers saturates below 1 even with *infinite* queues (Karol,
//!   Hluchyj & Morgan 1986, the paper's reference 5): 0.75 for k = 2 down
//!   to 2 − √2 ≈ 0.586 as k → ∞. Finite buffers and multiple stages push
//!   real networks below this ceiling, so it upper-bounds FIFO saturation.
//! * **Output-queued bound** — a switch that could place every arrival
//!   directly in an output queue saturates at 1.0; DAMQ approaches (but
//!   cannot exceed) this.
//! * **Hot-spot ceiling** (Pfister & Norton 1985, reference 8) — with a
//!   fraction `h` of all traffic aimed at one of `n` sinks, that sink's
//!   unit capacity caps the per-source rate at `1 / (h·n + (1 − h))`,
//!   regardless of the network: the tree-saturation cap of Table 6.

/// Saturation throughput of an infinite-queue, input-queued k×k crossbar
/// with FIFO buffers under uniform traffic (Karol et al., Table I), for
/// `radix >= 1`. Values beyond the published table decay toward the
/// asymptote 2 − √2.
///
/// # Examples
///
/// ```
/// use damq_net::theory::hol_saturation;
///
/// assert_eq!(hol_saturation(2), 0.75);
/// assert!((hol_saturation(1_000) - 0.586).abs() < 0.01);
/// ```
pub fn hol_saturation(radix: usize) -> f64 {
    // Karol, Hluchyj & Morgan, "Input vs. Output Queueing on a
    // Space-Division Packet Switch", Table I.
    const TABLE: [f64; 8] = [1.0, 0.75, 0.6825, 0.6553, 0.6399, 0.6302, 0.6234, 0.6184];
    const ASYMPTOTE: f64 = 0.585_786_437_626_905; // 2 - sqrt(2)
    match radix {
        0 => 0.0,
        1..=8 => TABLE[radix - 1],
        _ => {
            // Geometric approach to the asymptote; within ~1% of the exact
            // values for all published radixes.
            ASYMPTOTE + (TABLE[7] - ASYMPTOTE) * 0.9_f64.powi(radix as i32 - 8)
        }
    }
}

/// The output-queueing saturation bound: 1 packet per terminal per cycle.
pub const OUTPUT_QUEUED_SATURATION: f64 = 1.0;

/// The hot-spot throughput ceiling: per-source rate at which a single sink
/// receiving fraction `hot_fraction` of **all** traffic (plus its uniform
/// share) saturates, in a network of `terminals` sinks.
///
/// # Panics
///
/// Panics unless `0.0 <= hot_fraction <= 1.0` and `terminals > 0`.
///
/// # Examples
///
/// The paper's Table 6 setting — 5% hot spot, 64 terminals — caps every
/// buffer design just below 0.25:
///
/// ```
/// use damq_net::theory::hot_spot_ceiling;
///
/// let cap = hot_spot_ceiling(0.05, 64);
/// assert!((cap - 0.241).abs() < 0.001);
/// ```
pub fn hot_spot_ceiling(hot_fraction: f64, terminals: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&hot_fraction),
        "hot fraction must be a probability"
    );
    assert!(terminals > 0, "need at least one terminal");
    1.0 / (hot_fraction * terminals as f64 + (1.0 - hot_fraction))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hol_table_values() {
        assert_eq!(hol_saturation(1), 1.0);
        assert_eq!(hol_saturation(2), 0.75);
        assert!((hol_saturation(4) - 0.6553).abs() < 1e-12);
        assert!((hol_saturation(8) - 0.6184).abs() < 1e-12);
    }

    #[test]
    fn hol_is_monotone_decreasing_to_the_asymptote() {
        let mut prev = hol_saturation(1);
        for k in 2..200 {
            let cur = hol_saturation(k);
            assert!(cur <= prev + 1e-12, "radix {k}");
            assert!(cur >= 0.5857, "radix {k}");
            prev = cur;
        }
    }

    #[test]
    fn uniform_traffic_has_no_hot_ceiling() {
        // h = 0 degenerates to the output capacity of 1.
        assert_eq!(hot_spot_ceiling(0.0, 64), 1.0);
    }

    #[test]
    fn full_hot_spot_is_one_over_n() {
        assert!((hot_spot_ceiling(1.0, 64) - 1.0 / 64.0).abs() < 1e-15);
    }
}
