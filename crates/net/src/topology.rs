//! Omega (perfect-shuffle) multistage network topology.
//!
//! An Omega network with `N = k^n` terminals is `n` identical stages, each a
//! perfect `k`-shuffle of the `N` lines followed by a column of `N/k`
//! `k`×`k` switches (Lawrie 1975). Routing is destination-digit: the switch
//! at stage `t` sends the packet out of the port named by the `t`-th
//! base-`k` digit of the destination address, most significant first.
//!
//! The paper's evaluation network is `OmegaTopology::new(64, 4)`: three
//! stages of sixteen 4×4 switches.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use damq_core::{InputPort, NodeId, OutputPort};

/// Error constructing an [`OmegaTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The radix must be at least 2.
    RadixTooSmall,
    /// The terminal count must be a power of the radix (and at least one
    /// stage's worth).
    SizeNotPowerOfRadix {
        /// Requested terminal count.
        size: usize,
        /// Requested switch radix.
        radix: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::RadixTooSmall => write!(f, "switch radix must be at least 2"),
            TopologyError::SizeNotPowerOfRadix { size, radix } => {
                write!(
                    f,
                    "network size {size} is not a positive power of radix {radix}"
                )
            }
        }
    }
}

impl Error for TopologyError {}

/// The wiring of an `N`-terminal Omega network built from `k`×`k` switches.
///
/// # Examples
///
/// ```
/// use damq_net::OmegaTopology;
///
/// let topo = OmegaTopology::new(64, 4)?;
/// assert_eq!(topo.stages(), 3);
/// assert_eq!(topo.switches_per_stage(), 16);
/// # Ok::<(), damq_net::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaTopology {
    size: usize,
    radix: usize,
    stages: usize,
}

impl OmegaTopology {
    /// Creates the topology for `size` terminals and `radix`×`radix`
    /// switches.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] unless `size` is a positive power of
    /// `radix` and `radix >= 2`.
    pub fn new(size: usize, radix: usize) -> Result<Self, TopologyError> {
        if radix < 2 {
            return Err(TopologyError::RadixTooSmall);
        }
        let mut stages = 0;
        let mut n = 1;
        while n < size {
            n *= radix;
            stages += 1;
        }
        if n != size || stages == 0 {
            return Err(TopologyError::SizeNotPowerOfRadix { size, radix });
        }
        Ok(OmegaTopology {
            size,
            radix,
            stages,
        })
    }

    /// Number of source/sink terminals.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switch radix `k`.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of switch stages (`log_k N`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Switches per stage (`N / k`).
    pub fn switches_per_stage(&self) -> usize {
        self.size / self.radix
    }

    /// The perfect `k`-shuffle applied to the `N` lines before every stage:
    /// rotate the base-`k` digits of the line number left by one.
    ///
    /// # Panics
    ///
    /// Panics if `line >= size`.
    pub fn shuffle(&self, line: usize) -> usize {
        assert!(line < self.size, "line {line} out of range");
        let top = self.size / self.radix;
        // line = d_{n-1} * (N/k) + rest; rotate: rest * k + d_{n-1}.
        (line % top) * self.radix + line / top
    }

    /// Where source terminal `source` enters stage 0: (switch index, input
    /// port).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn source_entry(&self, source: NodeId) -> (usize, InputPort) {
        let line = self.shuffle(source.index());
        (line / self.radix, InputPort::new(line % self.radix))
    }

    /// Where a packet leaving stage `stage` (not the last) through
    /// (`switch`, `output`) enters stage `stage + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is the last stage or any index is out of range.
    pub fn next_hop(&self, stage: usize, switch: usize, output: OutputPort) -> (usize, InputPort) {
        assert!(stage + 1 < self.stages, "no stage after the last");
        assert!(switch < self.switches_per_stage(), "switch out of range");
        assert!(output.index() < self.radix, "output out of range");
        let line = self.shuffle(switch * self.radix + output.index());
        (line / self.radix, InputPort::new(line % self.radix))
    }

    /// The output port a packet for `dest` takes at stage `stage`
    /// (destination-digit routing, most significant digit first).
    ///
    /// # Panics
    ///
    /// Panics if `stage` or `dest` is out of range.
    pub fn route_output(&self, stage: usize, dest: NodeId) -> OutputPort {
        assert!(stage < self.stages, "stage out of range");
        assert!(dest.index() < self.size, "destination out of range");
        OutputPort::new(dest.route_digit(stage, self.radix, self.stages))
    }

    /// The sink terminal reached from the last stage's (`switch`, `output`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn sink_of(&self, switch: usize, output: OutputPort) -> NodeId {
        assert!(switch < self.switches_per_stage(), "switch out of range");
        assert!(output.index() < self.radix, "output out of range");
        NodeId::new(switch * self.radix + output.index())
    }

    /// Walks a packet from `source` to `dest` through the wiring, returning
    /// the (stage, switch, output) path. Used by tests to verify that
    /// digit routing and shuffling agree.
    pub fn trace_route(&self, source: NodeId, dest: NodeId) -> Vec<(usize, usize, OutputPort)> {
        let mut path = Vec::with_capacity(self.stages);
        let (mut switch, _port) = self.source_entry(source);
        for stage in 0..self.stages {
            let out = self.route_output(stage, dest);
            path.push((stage, switch, out));
            if stage + 1 < self.stages {
                let (next_switch, _next_port) = self.next_hop(stage, switch, out);
                switch = next_switch;
            }
        }
        path
    }
}

/// Which MIN wiring a network uses (the switches and routing are
/// identical; only the inter-stage permutations differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// Perfect-shuffle Omega network (the paper's evaluation vehicle).
    #[default]
    Omega,
    /// k-ary n-fly butterfly (digit-exchange wiring).
    Butterfly,
}

impl TopologyKind {
    /// Both wirings.
    pub const ALL: [TopologyKind; 2] = [TopologyKind::Omega, TopologyKind::Butterfly];

    /// Lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Omega => "omega",
            TopologyKind::Butterfly => "butterfly",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete MIN wiring: either topology behind one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Perfect-shuffle Omega wiring.
    Omega(OmegaTopology),
    /// Butterfly digit-exchange wiring.
    Butterfly(crate::butterfly::ButterflyTopology),
}

impl Topology {
    /// Builds the wiring of the requested kind.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] for invalid dimensions.
    pub fn build(kind: TopologyKind, size: usize, radix: usize) -> Result<Self, TopologyError> {
        Ok(match kind {
            TopologyKind::Omega => Topology::Omega(OmegaTopology::new(size, radix)?),
            TopologyKind::Butterfly => {
                Topology::Butterfly(crate::butterfly::ButterflyTopology::new(size, radix)?)
            }
        })
    }

    /// Which wiring this is.
    pub fn kind(&self) -> TopologyKind {
        match self {
            Topology::Omega(_) => TopologyKind::Omega,
            Topology::Butterfly(_) => TopologyKind::Butterfly,
        }
    }

    /// Number of terminals.
    pub fn size(&self) -> usize {
        match self {
            Topology::Omega(t) => t.size(),
            Topology::Butterfly(t) => t.size(),
        }
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        match self {
            Topology::Omega(t) => t.radix(),
            Topology::Butterfly(t) => t.radix(),
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        match self {
            Topology::Omega(t) => t.stages(),
            Topology::Butterfly(t) => t.stages(),
        }
    }

    /// Switches per stage.
    pub fn switches_per_stage(&self) -> usize {
        match self {
            Topology::Omega(t) => t.switches_per_stage(),
            Topology::Butterfly(t) => t.switches_per_stage(),
        }
    }

    /// Where a source enters stage 0.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn source_entry(&self, source: NodeId) -> (usize, InputPort) {
        match self {
            Topology::Omega(t) => t.source_entry(source),
            Topology::Butterfly(t) => t.source_entry(source),
        }
    }

    /// Where a stage's (switch, output) feeds the next stage.
    ///
    /// # Panics
    ///
    /// Panics on the last stage or out-of-range indices.
    pub fn next_hop(&self, stage: usize, switch: usize, output: OutputPort) -> (usize, InputPort) {
        match self {
            Topology::Omega(t) => t.next_hop(stage, switch, output),
            Topology::Butterfly(t) => t.next_hop(stage, switch, output),
        }
    }

    /// The output port towards `dest` at `stage`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn route_output(&self, stage: usize, dest: NodeId) -> OutputPort {
        match self {
            Topology::Omega(t) => t.route_output(stage, dest),
            Topology::Butterfly(t) => t.route_output(stage, dest),
        }
    }

    /// The sink behind the last stage's (switch, output).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn sink_of(&self, switch: usize, output: OutputPort) -> NodeId {
        match self {
            Topology::Omega(t) => t.sink_of(switch, output),
            Topology::Butterfly(t) => t.sink_of(switch, output),
        }
    }
}

/// The full route of a packet departing a non-final stage: where it
/// enters the next stage and which output it will take there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRoute {
    /// Switch index within the next stage.
    pub next_switch: usize,
    /// Input port of that switch.
    pub next_port: InputPort,
    /// Output port the packet will request at the next stage.
    pub next_output: OutputPort,
}

/// Precomputed routing tables for one wiring.
///
/// [`Topology`] answers routing queries by recomputing shuffles and
/// destination digits per call; fine for construction and tests, but the
/// simulator asks on every backpressure probe and every departure. A
/// `RoutePlan` flattens every answer into lookup tables at construction
/// — `O(stages x size)` space — so the per-packet path is one indexed
/// load, and [`RoutePlan::departure_route`] combines the next-hop and
/// next-output queries the simulator always makes together.
///
/// The plan counts [`RoutePlan::departure_route`] calls
/// ([`RoutePlan::route_queries`]), which lets tests pin down exactly how
/// often the simulator routes each departing packet.
#[derive(Debug)]
pub struct RoutePlan {
    radix: usize,
    stages: usize,
    size: usize,
    /// Switches per stage (`size / radix`), precomputed: the departure
    /// probe runs once per flow-control candidate per cycle, and a
    /// runtime division is a hardware divide on that path.
    per_stage: usize,
    /// `(switch, port)` entered by each source, indexed by source.
    entries: Vec<(usize, InputPort)>,
    /// `(next switch, next port)` per (stage, switch, output), row-major
    /// over the non-final stages.
    next_hops: Vec<(usize, InputPort)>,
    /// Output port per (stage, dest), row-major.
    outputs: Vec<OutputPort>,
    /// Sink terminal per (switch, output) of the final stage.
    sinks: Vec<NodeId>,
    /// Alternate output per (stage, switch, output), row-major: the
    /// deflection target adaptive recovery consults when the primary
    /// output's link is down or its downstream queue is saturated. In a
    /// unique-path banyan every deflection is a deliberate misroute, so
    /// the table's job is only to name a *consistent* escape port per
    /// switch — the neighbouring output — which keeps deflected traffic
    /// deterministic and spread across the crossbar.
    alternates: Vec<OutputPort>,
    /// Departure-route queries served so far. Atomic (relaxed) so
    /// concurrent backpressure probes from sharded stage islands can
    /// count without synchronization; the total stays deterministic.
    queries: AtomicU64,
}

impl Clone for RoutePlan {
    fn clone(&self) -> Self {
        RoutePlan {
            radix: self.radix,
            stages: self.stages,
            size: self.size,
            per_stage: self.per_stage,
            entries: self.entries.clone(),
            next_hops: self.next_hops.clone(),
            outputs: self.outputs.clone(),
            sinks: self.sinks.clone(),
            alternates: self.alternates.clone(),
            // ordering: Relaxed — clone takes a point-in-time snapshot of
            // a pure statistics counter; no other memory is published
            // through it, so no acquire/release pairing is needed.
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
        }
    }
}

impl RoutePlan {
    /// Precomputes every routing answer for `topology`.
    pub fn new(topology: &Topology) -> Self {
        let size = topology.size();
        let radix = topology.radix();
        let stages = topology.stages();
        let per_stage = topology.switches_per_stage();
        let entries = (0..size)
            .map(|s| topology.source_entry(NodeId::new(s)))
            .collect();
        let mut next_hops = Vec::with_capacity(stages.saturating_sub(1) * per_stage * radix);
        for stage in 0..stages.saturating_sub(1) {
            for sw in 0..per_stage {
                for o in OutputPort::all(radix) {
                    next_hops.push(topology.next_hop(stage, sw, o));
                }
            }
        }
        let mut outputs = Vec::with_capacity(stages * size);
        for stage in 0..stages {
            for d in 0..size {
                outputs.push(topology.route_output(stage, NodeId::new(d)));
            }
        }
        let mut sinks = Vec::with_capacity(per_stage * radix);
        for sw in 0..per_stage {
            for o in OutputPort::all(radix) {
                sinks.push(topology.sink_of(sw, o));
            }
        }
        let mut alternates = Vec::with_capacity(stages * per_stage * radix);
        for _stage in 0..stages {
            for _sw in 0..per_stage {
                for o in 0..radix {
                    alternates.push(OutputPort::new((o + 1) % radix));
                }
            }
        }
        RoutePlan {
            radix,
            stages,
            size,
            per_stage,
            entries,
            next_hops,
            outputs,
            sinks,
            alternates,
            queries: AtomicU64::new(0),
        }
    }

    /// Where source terminal `source` enters stage 0.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn entry(&self, source: NodeId) -> (usize, InputPort) {
        self.entries[source.index()]
    }

    /// The output port a packet for `dest` takes at `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` or `dest` is out of range.
    pub fn route_output(&self, stage: usize, dest: NodeId) -> OutputPort {
        self.outputs[stage * self.size + dest.index()]
    }

    /// The complete route of a packet for `dest` leaving stage `stage`
    /// (not the last) through (`switch`, `output`): where it enters the
    /// next stage and the output it takes there. Counted by
    /// [`RoutePlan::route_queries`].
    ///
    /// # Panics
    ///
    /// Panics if `stage` is the last stage or any index is out of range.
    pub fn departure_route(
        &self,
        stage: usize,
        switch: usize,
        output: OutputPort,
        dest: NodeId,
    ) -> HopRoute {
        // ordering: Relaxed — a pure event count with no dependent data.
        // Atomic RMW keeps the total exact under concurrent phase-A
        // island probes; the pool's phase barrier (mutex + condvar)
        // orders it before any cross-thread read, so the deterministic
        // total needs no stronger ordering here.
        self.queries.fetch_add(1, Ordering::Relaxed);
        let per_stage = self.per_stage;
        let (next_switch, next_port) =
            self.next_hops[(stage * per_stage + switch) * self.radix + output.index()];
        HopRoute {
            next_switch,
            next_port,
            next_output: self.route_output(stage + 1, dest),
        }
    }

    /// [`RoutePlan::departure_route`] without the query-counter bump:
    /// the per-candidate backpressure probe calls this and batches its
    /// count into one [`RoutePlan::count_queries`] per switch per cycle,
    /// turning ~`radix`-squared atomic RMWs per switch into one. The
    /// total stays exact — the counter is only read between cycles.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is the last stage or any index is out of range.
    pub(crate) fn departure_route_uncounted(
        &self,
        stage: usize,
        switch: usize,
        output: OutputPort,
        dest: NodeId,
    ) -> HopRoute {
        let (next_switch, next_port) =
            self.next_hops[(stage * self.per_stage + switch) * self.radix + output.index()];
        HopRoute {
            next_switch,
            next_port,
            next_output: self.route_output(stage + 1, dest),
        }
    }

    /// Adds `n` batched [`RoutePlan::departure_route_uncounted`] queries
    /// to the counter behind [`RoutePlan::route_queries`].
    pub(crate) fn count_queries(&self, n: u64) {
        // ordering: Relaxed — same pure event count as `departure_route`.
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    /// The alternate (deflection) output adaptive recovery tries at
    /// (`stage`, `switch`) when `output`'s link is down or its
    /// downstream queue is saturated. Deflecting through it is a
    /// deliberate misroute in a unique-path banyan — the packet reaches
    /// the wrong sink and relies on end-to-end retransmission — so the
    /// caller must charge the packet's misroute budget.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn alternate_output(&self, stage: usize, switch: usize, output: OutputPort) -> OutputPort {
        self.alternates[(stage * self.per_stage + switch) * self.radix + output.index()]
    }

    /// The sink terminal reached from the last stage's (`switch`,
    /// `output`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn sink_of(&self, switch: usize, output: OutputPort) -> NodeId {
        self.sinks[switch * self.radix + output.index()]
    }

    /// How many times [`RoutePlan::departure_route`] has been called.
    pub fn route_queries(&self) -> u64 {
        // ordering: Relaxed — readers call this between cycles or after a
        // run, past the pool's phase barrier; the barrier's mutex already
        // ordered every increment before this load.
        self.queries.load(Ordering::Relaxed)
    }

    /// Number of stages the plan covers.
    pub fn stages(&self) -> usize {
        self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_dimensions() {
        let t = OmegaTopology::new(64, 4).unwrap();
        assert_eq!(t.stages(), 3);
        assert_eq!(t.switches_per_stage(), 16);
    }

    #[test]
    fn radix_2_eight_nodes() {
        let t = OmegaTopology::new(8, 2).unwrap();
        assert_eq!(t.stages(), 3);
        assert_eq!(t.switches_per_stage(), 4);
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(OmegaTopology::new(12, 4).is_err());
        assert!(OmegaTopology::new(1, 4).is_err());
        assert!(OmegaTopology::new(8, 1).is_err());
        assert_eq!(
            OmegaTopology::new(10, 2).unwrap_err(),
            TopologyError::SizeNotPowerOfRadix { size: 10, radix: 2 }
        );
    }

    #[test]
    fn shuffle_is_left_digit_rotation() {
        let t = OmegaTopology::new(8, 2).unwrap();
        // 8 lines, binary b2 b1 b0 -> b1 b0 b2.
        assert_eq!(t.shuffle(0b100), 0b001);
        assert_eq!(t.shuffle(0b011), 0b110);
        assert_eq!(t.shuffle(0b111), 0b111);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        for (size, radix) in [(8, 2), (16, 4), (64, 4), (27, 3)] {
            let t = OmegaTopology::new(size, radix).unwrap();
            let mut seen = vec![false; size];
            for line in 0..size {
                let s = t.shuffle(line);
                assert!(!seen[s], "shuffle not injective at {line}");
                seen[s] = true;
            }
        }
    }

    #[test]
    fn every_source_reaches_every_dest() {
        // The defining property of a full-access MIN: digit routing through
        // the shuffle wiring lands at the addressed sink.
        for (size, radix) in [(8, 2), (16, 4), (64, 4)] {
            let t = OmegaTopology::new(size, radix).unwrap();
            for s in 0..size {
                for d in 0..size {
                    let path = t.trace_route(NodeId::new(s), NodeId::new(d));
                    assert_eq!(path.len(), t.stages());
                    let (_, last_switch, last_out) = *path.last().unwrap();
                    assert_eq!(
                        t.sink_of(last_switch, last_out),
                        NodeId::new(d),
                        "{s} -> {d} misrouted in {size}/{radix}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_hop_ports_are_consistent_with_lines() {
        let t = OmegaTopology::new(64, 4).unwrap();
        // Each (switch, output) pair of a non-final stage maps to a distinct
        // downstream (switch, port).
        let mut seen = [false; 64];
        for sw in 0..16 {
            for o in 0..4 {
                let (nsw, np) = t.next_hop(0, sw, OutputPort::new(o));
                let line = nsw * 4 + np.index();
                assert!(!seen[line], "two links share a downstream port");
                seen[line] = true;
            }
        }
    }

    #[test]
    fn route_plan_agrees_with_both_wirings() {
        for kind in TopologyKind::ALL {
            let topo = Topology::build(kind, 64, 4).unwrap();
            let plan = RoutePlan::new(&topo);
            for s in 0..64 {
                assert_eq!(
                    plan.entry(NodeId::new(s)),
                    topo.source_entry(NodeId::new(s))
                );
            }
            for stage in 0..topo.stages() {
                for d in 0..64 {
                    assert_eq!(
                        plan.route_output(stage, NodeId::new(d)),
                        topo.route_output(stage, NodeId::new(d)),
                        "{kind} stage {stage} dest {d}"
                    );
                }
            }
            for stage in 0..topo.stages() - 1 {
                for sw in 0..topo.switches_per_stage() {
                    for o in OutputPort::all(4) {
                        for d in 0..64 {
                            let r = plan.departure_route(stage, sw, o, NodeId::new(d));
                            let (nsw, np) = topo.next_hop(stage, sw, o);
                            assert_eq!((r.next_switch, r.next_port), (nsw, np), "{kind}");
                            assert_eq!(r.next_output, topo.route_output(stage + 1, NodeId::new(d)));
                        }
                    }
                }
            }
            for sw in 0..topo.switches_per_stage() {
                for o in OutputPort::all(4) {
                    assert_eq!(plan.sink_of(sw, o), topo.sink_of(sw, o), "{kind}");
                }
            }
        }
    }

    #[test]
    fn route_plan_counts_departure_queries_only() {
        let topo = Topology::build(TopologyKind::Omega, 16, 4).unwrap();
        let plan = RoutePlan::new(&topo);
        assert_eq!(plan.route_queries(), 0);
        let _ = plan.entry(NodeId::new(3));
        let _ = plan.route_output(0, NodeId::new(9));
        let _ = plan.sink_of(2, OutputPort::new(1));
        assert_eq!(
            plan.route_queries(),
            0,
            "lookups other than departures are free"
        );
        let _ = plan.departure_route(0, 0, OutputPort::new(0), NodeId::new(5));
        let _ = plan.departure_route(0, 3, OutputPort::new(2), NodeId::new(8));
        assert_eq!(plan.route_queries(), 2);
    }

    #[test]
    fn alternate_outputs_differ_from_primaries_and_permute_the_crossbar() {
        for kind in TopologyKind::ALL {
            let topo = Topology::build(kind, 64, 4).unwrap();
            let plan = RoutePlan::new(&topo);
            for stage in 0..topo.stages() {
                for sw in 0..topo.switches_per_stage() {
                    let mut seen = [false; 4];
                    for o in OutputPort::all(4) {
                        let alt = plan.alternate_output(stage, sw, o);
                        assert_ne!(alt, o, "deflection must leave the blocked port");
                        seen[alt.index()] = true;
                    }
                    assert_eq!(seen, [true; 4], "alternates spread over all outputs");
                }
            }
        }
    }

    #[test]
    fn uniform_traffic_spreads_over_middle_stage() {
        // Sanity: packets from one source to all dests use all 4 outputs of
        // its first-stage switch equally (16 dests per output).
        let t = OmegaTopology::new(64, 4).unwrap();
        let mut counts = [0usize; 4];
        for d in 0..64 {
            let out = t.route_output(0, NodeId::new(d));
            counts[out.index()] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }
}
