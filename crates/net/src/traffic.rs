//! Traffic patterns: how sources pick packet destinations.

use rand::Rng;

use damq_core::NodeId;

/// The spatial distribution of packet destinations.
///
/// The paper simulates two patterns: uniformly-distributed traffic and
/// traffic in which "five percent of the traffic was hot spot (i.e. all
/// designated for the same destination)" (Pfister & Norton's model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Every terminal is an equally likely destination.
    Uniform,
    /// With probability `fraction` the destination is `target`; otherwise
    /// uniform over all terminals.
    HotSpot {
        /// Fraction of hot-spot packets (the paper uses 0.05).
        fraction: f64,
        /// The hot destination.
        target: NodeId,
    },
    /// Destination is a fixed function of the source: `dest = (source +
    /// offset) mod N`. Conflict-free in an Omega network for offset 0; used
    /// for latency floors and routing tests.
    Shifted {
        /// Offset added to the source address, modulo the network size.
        offset: usize,
    },
}

impl TrafficPattern {
    /// The paper's hot-spot configuration: 5% of traffic to terminal 0.
    pub fn paper_hot_spot() -> Self {
        TrafficPattern::HotSpot {
            fraction: 0.05,
            target: NodeId::new(0),
        }
    }

    /// Samples a destination for a packet generated at `source` in a
    /// network of `size` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or a hot-spot fraction is not a
    /// probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, source: NodeId, size: usize) -> NodeId {
        assert!(size > 0, "network must have terminals");
        match *self {
            TrafficPattern::Uniform => NodeId::new(rng.random_range(0..size)),
            TrafficPattern::HotSpot { fraction, target } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "hot-spot fraction must be a probability"
                );
                if rng.random_bool(fraction) {
                    target
                } else {
                    NodeId::new(rng.random_range(0..size))
                }
            }
            TrafficPattern::Shifted { offset } => NodeId::new((source.index() + offset) % size),
        }
    }

    /// Short name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::HotSpot { .. } => "hot-spot",
            TrafficPattern::Shifted { .. } => "shifted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = TrafficPattern::Uniform.sample(&mut rng, NodeId::new(0), 16);
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hot_spot_frequency_is_close_to_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let pattern = TrafficPattern::HotSpot {
            fraction: 0.05,
            target: NodeId::new(3),
        };
        let n = 200_000;
        let mut hot = 0;
        for _ in 0..n {
            if pattern.sample(&mut rng, NodeId::new(7), 64) == NodeId::new(3) {
                hot += 1;
            }
        }
        // Expected rate: 0.05 + 0.95/64 ≈ 0.0648.
        let rate = hot as f64 / n as f64;
        assert!((rate - 0.0648).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn shifted_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = TrafficPattern::Shifted { offset: 5 };
        assert_eq!(p.sample(&mut rng, NodeId::new(3), 8), NodeId::new(0));
        assert_eq!(p.sample(&mut rng, NodeId::new(1), 8), NodeId::new(6));
    }

    #[test]
    fn paper_hot_spot_targets_node_zero() {
        match TrafficPattern::paper_hot_spot() {
            TrafficPattern::HotSpot { fraction, target } => {
                assert!((fraction - 0.05).abs() < 1e-12);
                assert_eq!(target, NodeId::new(0));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
