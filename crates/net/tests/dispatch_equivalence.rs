//! Dispatch-path and storage-layout equivalence: the monomorphized
//! simulator must be bit-for-bit the same simulation as the trait-object
//! one, and the SoA buffer layouts the same simulation as their frozen
//! AoS twins.
//!
//! The enum-dispatched default (`NetworkSim<AnyBuffer>`) and the boxed
//! compatibility facade (`NetworkSim<Box<dyn SwitchBuffer>>`) differ only
//! in how buffer calls are dispatched; RNG draws, arbiter decisions and
//! routing must be identical. The structure-of-arrays designs (`FifoBuffer`,
//! `SamqBuffer`, `SafcBuffer`, `DamqBuffer`, `DafcBuffer`) and the frozen
//! per-packet-struct twins (`AosFifoBuffer`, ...) differ only in slot
//! storage; every accept/reject/dequeue decision must be identical. These
//! tests drive the same seeded configurations — fault-free and with a
//! generated fault plan active — through both axes and compare every
//! observable: delivery and latency metrics, aggregate buffer operation
//! counters, residual state, fault ledgers, and the structural audits.

use damq_core::{
    AosDafcBuffer, AosDamqBuffer, AosFifoBuffer, AosSafcBuffer, AosSamqBuffer, BufferKind,
    BufferStats, DafcBuffer, DamqBuffer, FaultLedger, FaultPlan, FaultSpec, FifoBuffer, SafcBuffer,
    SamqBuffer, SwitchBuffer,
};
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    generated: u64,
    delivered: u64,
    discarded: u64,
    mean_latency: u64,
    p99_latency: u64,
    mean_network_latency: u64,
    per_sink: Vec<u64>,
    backlog: usize,
    in_flight: usize,
    buffer_stats: BufferStats,
    occupancy: Vec<f64>,
    idle_skipped: u64,
    fault_ledger: FaultLedger,
    dead_slots: usize,
}

fn run<B: damq_core::BuildBuffer>(config: NetworkConfig, cycles: u64) -> Fingerprint {
    run_with_faults::<B>(config, cycles, None)
}

fn run_with_faults<B: damq_core::BuildBuffer>(
    config: NetworkConfig,
    cycles: u64,
    plan: Option<FaultPlan>,
) -> Fingerprint {
    let mut sim = NetworkSim::<B>::typed(config).expect("valid config");
    if let Some(plan) = plan {
        sim.install_fault_plan(plan);
    }
    sim.run(cycles);
    sim.audit().expect("post-run audit");
    let m = sim.metrics();
    Fingerprint {
        generated: m.generated(),
        delivered: m.delivered(),
        discarded: m.discarded(),
        // Scale float summaries to integers so equality is exact.
        mean_latency: (m.mean_latency_clocks() * 1e6) as u64,
        p99_latency: (m.latency_percentile_clocks(0.99) * 1e6) as u64,
        mean_network_latency: (m.mean_network_latency_clocks() * 1e6) as u64,
        per_sink: m.per_sink_delivered().to_vec(),
        backlog: sim.source_backlog(),
        in_flight: sim.packets_in_flight(),
        buffer_stats: sim.aggregate_buffer_stats(),
        occupancy: sim.occupancy_by_stage(),
        idle_skipped: sim.idle_skipped_total(),
        fault_ledger: sim.fault_ledger(),
        dead_slots: sim.dead_slots(),
    }
}

fn assert_paths_agree(config: NetworkConfig, cycles: u64, label: &str) {
    let enum_path = run::<damq_core::AnyBuffer>(config, cycles);
    let boxed_path = run::<Box<dyn SwitchBuffer>>(config, cycles);
    assert_eq!(enum_path, boxed_path, "{label}: enum vs boxed dispatch");
    assert!(enum_path.generated > 0, "{label}: degenerate run");
}

#[test]
fn two_by_two_network_agrees_across_dispatch_paths() {
    // 4 terminals of 2x2 switches: the exhaustively model-checked shape.
    for kind in BufferKind::EXTENDED {
        for flow in FlowControl::ALL {
            for seed in [1u64, 0xDA3B, 0xBEEF] {
                let config = NetworkConfig::new(4, 2)
                    .buffer_kind(kind)
                    .slots_per_buffer(4)
                    .flow_control(flow)
                    .offered_load(0.7)
                    .seed(seed);
                assert_paths_agree(config, 400, &format!("4x2 {kind}/{flow}/{seed}"));
            }
        }
    }
}

#[test]
fn paper_shape_network_agrees_across_dispatch_paths() {
    // 16 terminals of 4x4 switches under the stressier workloads.
    for kind in BufferKind::EXTENDED {
        for flow in FlowControl::ALL {
            let config = NetworkConfig::new(16, 4)
                .buffer_kind(kind)
                .slots_per_buffer(4)
                .flow_control(flow)
                .traffic(TrafficPattern::paper_hot_spot())
                .offered_load(0.5)
                .seed(0xDA3B);
            assert_paths_agree(config, 300, &format!("16x4 hot-spot {kind}/{flow}"));
        }
    }
}

#[test]
fn fully_typed_damq_matches_the_kind_erased_paths() {
    let config = NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.6)
        .seed(7);
    let typed = run::<DamqBuffer>(config, 500);
    let enum_path = run::<damq_core::AnyBuffer>(config, 500);
    assert_eq!(typed, enum_path, "typed DAMQ vs enum dispatch");
}

/// The paper-shape configuration the AoS/SoA runs share. `kind` only
/// matters for audit labels here — the typed paths build their design
/// directly — but keeping it honest keeps the fingerprints comparable
/// with the kind-erased paths too.
fn soa_config(kind: BufferKind, flow: FlowControl, seed: u64) -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .buffer_kind(kind)
        .slots_per_buffer(4)
        .flow_control(flow)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.6)
        .seed(seed)
}

/// A moderately hostile fault plan sized for the 16×4 paper shape:
/// dead slots, link flaps, corruptions and misroutes all active.
fn soa_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::generate(
        seed,
        &FaultSpec {
            dead_slot_fraction: 0.15,
            link_flaps: 2,
            flap_duration: 20,
            corrupt_packets: 3,
            misroutes: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 250)
        },
    )
}

fn assert_layouts_agree<Soa, Aos>(kind: BufferKind)
where
    Soa: damq_core::BuildBuffer,
    Aos: damq_core::BuildBuffer,
{
    for flow in FlowControl::ALL {
        for seed in [3u64, 0x50A0] {
            let config = soa_config(kind, flow, seed);
            let soa = run::<Soa>(config, 300);
            let aos = run::<Aos>(config, 300);
            assert_eq!(soa, aos, "{kind}/{flow}/{seed}: SoA vs AoS layout");
            assert!(soa.generated > 0, "{kind}/{flow}/{seed}: degenerate run");
        }
        // The same configuration under an active fault plan: kills,
        // outages, corruptions and misroutes must land identically.
        let config = soa_config(kind, flow, 0xFA07);
        let soa = run_with_faults::<Soa>(config, 300, Some(soa_fault_plan(11)));
        let aos = run_with_faults::<Aos>(config, 300, Some(soa_fault_plan(11)));
        assert_eq!(soa, aos, "{kind}/{flow}: faulted SoA vs AoS layout");
        assert!(
            soa.dead_slots > 0,
            "{kind}/{flow}: fault plan never killed a slot"
        );
    }
}

#[test]
fn soa_fifo_matches_its_aos_twin_end_to_end() {
    assert_layouts_agree::<FifoBuffer, AosFifoBuffer>(BufferKind::Fifo);
}

#[test]
fn soa_samq_matches_its_aos_twin_end_to_end() {
    assert_layouts_agree::<SamqBuffer, AosSamqBuffer>(BufferKind::Samq);
}

#[test]
fn soa_safc_matches_its_aos_twin_end_to_end() {
    assert_layouts_agree::<SafcBuffer, AosSafcBuffer>(BufferKind::Safc);
}

#[test]
fn soa_damq_matches_its_aos_twin_end_to_end() {
    assert_layouts_agree::<DamqBuffer, AosDamqBuffer>(BufferKind::Damq);
}

#[test]
fn soa_dafc_matches_its_aos_twin_end_to_end() {
    assert_layouts_agree::<DafcBuffer, AosDafcBuffer>(BufferKind::Dafc);
}
