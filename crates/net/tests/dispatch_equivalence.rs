//! Dispatch-path equivalence: the monomorphized simulator must be
//! bit-for-bit the same simulation as the trait-object one.
//!
//! The enum-dispatched default (`NetworkSim<AnyBuffer>`) and the boxed
//! compatibility facade (`NetworkSim<Box<dyn SwitchBuffer>>`) differ only
//! in how buffer calls are dispatched; RNG draws, arbiter decisions and
//! routing must be identical. These tests drive the same seeded
//! configurations through both paths (plus the fully-typed path for the
//! paper's DAMQ design) and compare every observable: delivery and
//! latency metrics, aggregate buffer operation counters, residual state,
//! and the structural audits.

use damq_core::{BufferKind, BufferStats, DamqBuffer, SwitchBuffer};
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    generated: u64,
    delivered: u64,
    discarded: u64,
    mean_latency: u64,
    p99_latency: u64,
    mean_network_latency: u64,
    per_sink: Vec<u64>,
    backlog: usize,
    in_flight: usize,
    buffer_stats: BufferStats,
    occupancy: Vec<f64>,
}

fn run<B: damq_core::BuildBuffer>(config: NetworkConfig, cycles: u64) -> Fingerprint {
    let mut sim = NetworkSim::<B>::typed(config).expect("valid config");
    sim.run(cycles);
    sim.audit().expect("post-run audit");
    let m = sim.metrics();
    Fingerprint {
        generated: m.generated(),
        delivered: m.delivered(),
        discarded: m.discarded(),
        // Scale float summaries to integers so equality is exact.
        mean_latency: (m.mean_latency_clocks() * 1e6) as u64,
        p99_latency: (m.latency_percentile_clocks(0.99) * 1e6) as u64,
        mean_network_latency: (m.mean_network_latency_clocks() * 1e6) as u64,
        per_sink: m.per_sink_delivered().to_vec(),
        backlog: sim.source_backlog(),
        in_flight: sim.packets_in_flight(),
        buffer_stats: sim.aggregate_buffer_stats(),
        occupancy: sim.occupancy_by_stage(),
    }
}

fn assert_paths_agree(config: NetworkConfig, cycles: u64, label: &str) {
    let enum_path = run::<damq_core::AnyBuffer>(config, cycles);
    let boxed_path = run::<Box<dyn SwitchBuffer>>(config, cycles);
    assert_eq!(enum_path, boxed_path, "{label}: enum vs boxed dispatch");
    assert!(enum_path.generated > 0, "{label}: degenerate run");
}

#[test]
fn two_by_two_network_agrees_across_dispatch_paths() {
    // 4 terminals of 2x2 switches: the exhaustively model-checked shape.
    for kind in BufferKind::EXTENDED {
        for flow in FlowControl::ALL {
            for seed in [1u64, 0xDA3B, 0xBEEF] {
                let config = NetworkConfig::new(4, 2)
                    .buffer_kind(kind)
                    .slots_per_buffer(4)
                    .flow_control(flow)
                    .offered_load(0.7)
                    .seed(seed);
                assert_paths_agree(config, 400, &format!("4x2 {kind}/{flow}/{seed}"));
            }
        }
    }
}

#[test]
fn paper_shape_network_agrees_across_dispatch_paths() {
    // 16 terminals of 4x4 switches under the stressier workloads.
    for kind in BufferKind::EXTENDED {
        for flow in FlowControl::ALL {
            let config = NetworkConfig::new(16, 4)
                .buffer_kind(kind)
                .slots_per_buffer(4)
                .flow_control(flow)
                .traffic(TrafficPattern::paper_hot_spot())
                .offered_load(0.5)
                .seed(0xDA3B);
            assert_paths_agree(config, 300, &format!("16x4 hot-spot {kind}/{flow}"));
        }
    }
}

#[test]
fn fully_typed_damq_matches_the_kind_erased_paths() {
    let config = NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.6)
        .seed(7);
    let typed = run::<DamqBuffer>(config, 500);
    let enum_path = run::<damq_core::AnyBuffer>(config, 500);
    assert_eq!(typed, enum_path, "typed DAMQ vs enum dispatch");
}
