//! Idle-skip equivalence: advancing quiescent switches with the fast
//! path must be byte-identical to arbitrating them empty.
//!
//! The quiescence map (see `NetworkSim` internals and
//! `docs/PERFORMANCE.md`) lets phase A advance an empty switch with one
//! counter tick. `Switch::note_idle_cycle` is pinned byte-identical to an
//! empty `transmit_cycle` per switch; these tests pin the end-to-end
//! claim: the same run with the skip on and off — serial and sharded —
//! produces identical metrics, buffer stats and residual state, and the
//! `net.idle_skipped` counter accounts exactly for the switch-cycles the
//! fast path absorbed.

use damq_core::{BufferKind, BufferStats};
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

/// Everything observable about a finished run, minus the idle-skip
/// tallies themselves (those differ by construction when the toggle
/// does).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    generated: u64,
    delivered: u64,
    discarded: u64,
    mean_latency: u64,
    per_sink: Vec<u64>,
    backlog: usize,
    in_flight: usize,
    buffer_stats: BufferStats,
    occupancy: Vec<f64>,
}

fn finish(sim: &mut NetworkSim) -> Fingerprint {
    sim.audit().expect("post-run audit");
    let m = sim.metrics();
    Fingerprint {
        generated: m.generated(),
        delivered: m.delivered(),
        discarded: m.discarded(),
        mean_latency: (m.mean_latency_clocks() * 1e6) as u64,
        per_sink: m.per_sink_delivered().to_vec(),
        backlog: sim.source_backlog(),
        in_flight: sim.packets_in_flight(),
        buffer_stats: sim.aggregate_buffer_stats(),
        occupancy: sim.occupancy_by_stage(),
    }
}

fn hotspot(kind: BufferKind) -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .buffer_kind(kind)
        .slots_per_buffer(4)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.5)
        .seed(37)
}

#[test]
fn idle_skip_correctness() {
    // A fully idle network: at load 0 the generator draws no randomness
    // and every switch stays quiescent from cycle 0, so with the skip on
    // every switch-cycle takes the fast path.
    const K: u64 = 50;
    let idle_config = NetworkConfig::new(16, 4).offered_load(0.0).seed(1);
    let mut skipping = NetworkSim::new(idle_config).unwrap();
    let mut full = NetworkSim::new(idle_config).unwrap().with_idle_skip(false);
    skipping.run(K);
    full.run(K);
    let switches = {
        let t = skipping.topology();
        (t.stages() * t.switches_per_stage()) as u64
    };
    assert_eq!(skipping.idle_skipped_total(), K * switches);
    assert_eq!(full.idle_skipped_total(), 0);
    assert_eq!(finish(&mut skipping), finish(&mut full), "fully idle run");

    // A loaded hot-spot run for every design and protocol: quiescent and
    // busy switches mix, and the results must not depend on the toggle.
    for kind in BufferKind::ALL {
        for flow in FlowControl::ALL {
            let config = hotspot(kind).flow_control(flow);
            let mut skipping = NetworkSim::new(config).unwrap();
            let mut full = NetworkSim::new(config).unwrap().with_idle_skip(false);
            skipping.run(400);
            full.run(400);
            assert_eq!(
                finish(&mut skipping),
                finish(&mut full),
                "{kind}/{flow}: idle-skip on vs off"
            );
            // Hot-spot traffic leaves some switches idle: the fast path
            // must actually fire for this test to mean anything.
            assert!(skipping.idle_skipped_total() > 0, "{kind}/{flow}");
        }
    }
}

#[test]
fn idle_skip_is_lane_count_independent() {
    // The skip decision reads the quiescence map, which is only written
    // in serial sections — so a sharded run skips exactly the same
    // switch-cycles as a serial one.
    let run = |threads: usize, skip: bool| {
        let mut sim = NetworkSim::new(hotspot(BufferKind::Damq))
            .unwrap()
            .with_threads(threads)
            .with_idle_skip(skip);
        sim.run(300);
        let skipped = sim.idle_skipped_total();
        (finish(&mut sim), skipped)
    };
    let (serial_on, skipped_serial) = run(1, true);
    let (serial_off, _) = run(1, false);
    let (sharded_on, skipped_sharded) = run(4, true);
    assert_eq!(serial_on, serial_off, "toggle changes nothing");
    assert_eq!(serial_on, sharded_on, "lane count changes nothing");
    assert_eq!(
        skipped_serial, skipped_sharded,
        "same switch-cycles skipped"
    );
    assert!(skipped_serial > 0);
}

#[test]
fn idle_skip_counter_reaches_the_registry() {
    let mut sim = NetworkSim::new(hotspot(BufferKind::Fifo))
        .unwrap()
        .with_metrics();
    sim.run(200);
    assert_eq!(
        sim.metrics_registry().counter_value("net.idle_skipped"),
        Some(sim.idle_skipped_total())
    );
    assert!(sim.idle_skipped_total() > 0);
}
