//! Sharded-stepping equivalence: an N-thread run must be byte-identical
//! to the serial run.
//!
//! `NetworkSim::with_threads(n)` splits every stage into islands and
//! runs phase A (arbitration + backpressure probes) concurrently, then
//! merges departures serially in ascending switch order (phase B). The
//! design argument (`docs/ARCHITECTURE.md`, `crates/net/src/parallel.rs`)
//! says this is *exactly* the serial simulation — same RNG draws, same
//! arbiter decisions, same telemetry byte stream. These tests pin that
//! claim: every observable — metrics, residual state, buffer counters,
//! fault ledgers, and the full JSONL trace — must be equal across
//! thread counts, on uniform, hot-spot and fault-injected workloads,
//! for all five buffer designs, under both flow-control protocols.

use damq_core::{BufferKind, BufferStats, FaultPlan, FaultSpec};
use damq_net::{NetworkConfig, NetworkSim, RecoveryConfig, TrafficPattern};
use damq_switch::FlowControl;
use damq_telemetry::MemorySink;

/// Everything observable about a finished run, including the raw trace.
#[derive(Debug, PartialEq)]
struct Run {
    generated: u64,
    delivered: u64,
    discarded: u64,
    mean_latency: u64,
    p99_latency: u64,
    mean_network_latency: u64,
    per_sink: Vec<u64>,
    backlog: usize,
    in_flight: usize,
    buffer_stats: BufferStats,
    occupancy: Vec<f64>,
    route_queries: u64,
    misrouted: u64,
    link_dropped: u64,
    corrupt_dropped: u64,
    probe_invalidated: u64,
    /// Packets still parked in recovery's retransmit buffers at the end
    /// of the run (zero unless recovery is on).
    recovery_held: usize,
    /// The metrics registry's deterministic JSON snapshot (counters plus
    /// histogram p50/p99/p999) — must be byte-identical too.
    metrics_snapshot: String,
    trace: String,
}

fn run(config: NetworkConfig, faults: Option<&FaultPlan>, threads: usize, cycles: u64) -> Run {
    let mut sim = NetworkSim::with_sink(config, MemorySink::new())
        .expect("valid config")
        .with_threads(threads)
        .with_metrics();
    assert_eq!(sim.threads(), threads.max(1));
    if let Some(plan) = faults {
        sim.install_fault_plan(plan.clone());
    }
    sim.run(cycles);
    sim.audit().expect("post-run audit");
    let m = sim.metrics();
    let ledger = sim.fault_ledger();
    Run {
        generated: m.generated(),
        delivered: m.delivered(),
        discarded: m.discarded(),
        // Scale float summaries to integers so equality is exact.
        mean_latency: (m.mean_latency_clocks() * 1e6) as u64,
        p99_latency: (m.latency_percentile_clocks(0.99) * 1e6) as u64,
        mean_network_latency: (m.mean_network_latency_clocks() * 1e6) as u64,
        per_sink: m.per_sink_delivered().to_vec(),
        backlog: sim.source_backlog(),
        in_flight: sim.packets_in_flight(),
        buffer_stats: sim.aggregate_buffer_stats(),
        occupancy: sim.occupancy_by_stage(),
        route_queries: sim.route_plan().route_queries(),
        misrouted: ledger.misrouted,
        link_dropped: ledger.link_dropped,
        corrupt_dropped: ledger.corrupt_dropped,
        probe_invalidated: ledger.probe_invalidated,
        recovery_held: sim.recovery_held(),
        metrics_snapshot: sim.metrics_snapshot(),
        trace: sim
            .into_sink()
            .events()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect(),
    }
}

fn assert_threads_agree(
    config: NetworkConfig,
    faults: Option<&FaultPlan>,
    cycles: u64,
    threads: &[usize],
    label: &str,
) {
    let serial = run(config, faults, 1, cycles);
    assert!(serial.generated > 0, "{label}: degenerate run");
    for &n in threads {
        let sharded = run(config, faults, n, cycles);
        assert_eq!(
            serial.trace, sharded.trace,
            "{label}: {n}-thread JSONL trace differs from serial"
        );
        assert_eq!(serial, sharded, "{label}: {n}-thread run differs");
    }
}

fn uniform(size: usize, radix: usize) -> NetworkConfig {
    NetworkConfig::new(size, radix)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .offered_load(0.6)
        .seed(0xDA3B)
}

fn hot_spot(size: usize, radix: usize) -> NetworkConfig {
    uniform(size, radix)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.5)
        .seed(0xBEEF)
}

fn fault_plan() -> FaultPlan {
    FaultPlan::generate(
        11,
        &FaultSpec {
            dead_slot_fraction: 0.1,
            link_flaps: 2,
            flap_duration: 15,
            corrupt_packets: 3,
            misroutes: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 150)
        },
    )
}

/// The gate `scripts/check.sh parallel-smoke` runs: two threads must
/// reproduce the serial bytes on the paper-shaped hot-spot workload.
#[test]
fn two_thread_fingerprints_match_serial() {
    assert_threads_agree(hot_spot(16, 4), None, 250, &[2], "16x4 hot-spot");
}

#[test]
fn uniform_traffic_matches_across_thread_counts() {
    for flow in FlowControl::ALL {
        let config = uniform(16, 4).flow_control(flow);
        assert_threads_agree(config, None, 300, &[2, 4, 8], &format!("uniform/{flow}"));
    }
}

#[test]
fn hot_spot_traffic_matches_across_thread_counts() {
    for flow in FlowControl::ALL {
        let config = hot_spot(16, 4).flow_control(flow);
        assert_threads_agree(config, None, 300, &[2, 4, 8], &format!("hot-spot/{flow}"));
    }
}

#[test]
fn fault_injected_runs_match_across_thread_counts() {
    let plan = fault_plan();
    for flow in FlowControl::ALL {
        let config = uniform(16, 4).flow_control(flow).seed(17);
        assert_threads_agree(
            config,
            Some(&plan),
            300,
            &[2, 4, 8],
            &format!("faulted/{flow}"),
        );
    }
}

#[test]
fn all_five_designs_match_at_four_threads() {
    for kind in BufferKind::EXTENDED {
        for flow in FlowControl::ALL {
            let config = hot_spot(16, 4).buffer_kind(kind).flow_control(flow);
            assert_threads_agree(config, None, 250, &[4], &format!("{kind}/{flow}"));
        }
    }
}

#[test]
fn degenerate_thread_counts_are_valid_partitions() {
    // threads=1 (one island holds the stage), threads=per_stage (one
    // island per switch), and threads beyond per_stage (clamped).
    let config = uniform(16, 4);
    let per_stage = 4; // 16 terminals of 4x4 switches → 4 per stage
    for threads in [1usize, per_stage, per_stage * 4] {
        let sim = NetworkSim::with_sink(config, MemorySink::new())
            .expect("valid config")
            .with_threads(threads);
        let islands = sim.island_partition().islands();
        assert!(islands >= 1 && islands <= per_stage, "islands {islands}");
        assert_eq!(sim.island_partition().bounds()[0], 0);
        assert_eq!(*sim.island_partition().bounds().last().unwrap(), per_stage);
    }
    assert_threads_agree(config, None, 200, &[per_stage, per_stage * 4], "degenerate");
}

/// Regression for the PR 6 caveat: under the blocking protocol, a
/// phase-A probe can be invalidated *only* by a misroute landing on the
/// probed input port earlier in the same stage's serial merge (the
/// banyan wiring gives every in-order departure a private downstream
/// input, so nothing else can consume its reserved space). The merge now
/// enforces that invariant with a hard assert and tallies each
/// invalidated probe in `FaultLedger::probe_invalidated`. The seeds are
/// pinned to a schedule that actually hits the misroute-during-probe
/// window, so this test fails if either the assert or the tally drifts.
#[test]
fn blocking_misroute_probe_invalidation_window() {
    let plan = FaultPlan::generate(
        37,
        &FaultSpec {
            misroutes: 8,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 300)
        },
    );
    let config = uniform(16, 4)
        .offered_load(0.9)
        .flow_control(FlowControl::Blocking);
    let serial = run(config, Some(&plan), 1, 300);
    assert_eq!(
        serial.probe_invalidated, 3,
        "pinned seed must hit the probe-invalidation window"
    );
    assert_eq!(serial.misrouted, 8, "all seeded misroutes fire");
    assert_threads_agree(config, Some(&plan), 300, &[2, 4], "probe-invalidation");

    // Without misroute faults the blocking protocol never bounces a
    // probed departure — the strict assert in the merge would fire
    // otherwise, and the tally must stay zero.
    let clean = run(config, None, 1, 300);
    assert_eq!(clean.probe_invalidated, 0);
}

/// The observability acceptance gate: named-metric snapshots — counters
/// *and* log-histogram percentiles — must be byte-identical between the
/// serial run and 2/4/8-thread runs. Registry updates happen only in
/// the serial sections of the cycle (generate, phase-B merge, inject,
/// the post-inject occupancy scan), so any divergence here means a
/// registry update leaked into phase A.
#[test]
fn metrics_registry_snapshot_matches_across_thread_counts() {
    for flow in FlowControl::ALL {
        let config = hot_spot(16, 4).flow_control(flow);
        let serial = run(config, None, 1, 300);
        assert!(
            serial.metrics_snapshot.contains("\"net.latency_cycles\""),
            "snapshot carries the latency histogram"
        );
        assert!(
            serial.metrics_snapshot.contains("\"p999\""),
            "snapshot carries tail percentiles"
        );
        for threads in [2usize, 4, 8] {
            let sharded = run(config, None, threads, 300);
            assert_eq!(
                serial.metrics_snapshot, sharded.metrics_snapshot,
                "hot-spot/{flow}: {threads}-thread metrics snapshot differs from serial"
            );
        }
    }
    // Histogram percentiles are ordered and live inside the observed
    // range on a real workload.
    let mut sim = NetworkSim::new(hot_spot(16, 4))
        .expect("valid config")
        .with_metrics();
    sim.run(300);
    let reg = sim.metrics_registry();
    let latency = reg
        .histogram_named("net.latency_cycles")
        .expect("registered");
    assert!(latency.count() > 0, "hot-spot run delivers packets");
    assert!(latency.p50() <= latency.p99() && latency.p99() <= latency.p999());
    assert!(latency.p999() <= latency.max());
}

/// The PR 9 acceptance gate: the self-healing data path — link-level
/// retransmission, believed link-health tracking, and fault-adaptive
/// deflection rerouting — mutates state only in the serial sections of
/// the cycle (`service_recovery` at cycle start, phase-B merges,
/// inject), while phase-A probes read an immutable view. These runs pin
/// that argument: with retransmission + rerouting + a storm of faults
/// all active, every observable (including the retransmit/reroute
/// telemetry and the `net.retransmits`-family counters in the registry
/// snapshot) must stay byte-identical from serial through 8 threads.
#[test]
fn recovery_runs_match_across_thread_counts() {
    let plan = FaultPlan::generate(
        11,
        &FaultSpec {
            dead_slot_fraction: 0.1,
            link_flaps: 5,
            flap_duration: 40,
            corrupt_packets: 4,
            misroutes: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 250)
        },
    );
    for flow in FlowControl::ALL {
        let config = uniform(16, 4)
            .flow_control(flow)
            .recovery(RecoveryConfig::enabled())
            .seed(29);
        let serial = run(config, Some(&plan), 1, 350);
        assert!(
            serial.trace.contains("\"retransmit\""),
            "recovery/{flow}: the storm must exercise retransmission"
        );
        assert_threads_agree(
            config,
            Some(&plan),
            350,
            &[2, 4, 8],
            &format!("recovery/{flow}"),
        );
    }
}

/// Retransmission-only (no deflection) and every buffer design: the
/// recovery path must stay lane-count-invariant regardless of the
/// underlying buffer organisation.
#[test]
fn recovery_designs_match_at_four_threads() {
    let plan = FaultPlan::generate(
        23,
        &FaultSpec {
            link_flaps: 4,
            flap_duration: 30,
            corrupt_packets: 3,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 200)
        },
    );
    let retransmit_only = RecoveryConfig {
        adaptive: false,
        misroute_budget: 0,
        ..RecoveryConfig::enabled()
    };
    for kind in BufferKind::ALL {
        for flow in FlowControl::ALL {
            let config = uniform(16, 4)
                .buffer_kind(kind)
                .flow_control(flow)
                .recovery(retransmit_only);
            assert_threads_agree(
                config,
                Some(&plan),
                300,
                &[4],
                &format!("recovery-retransmit/{kind}/{flow}"),
            );
        }
    }
}

#[test]
fn larger_network_matches_at_four_threads() {
    // 64 terminals (the paper's shape): 16 switches per stage, split 4
    // ways — every island holds several switches.
    for flow in FlowControl::ALL {
        let config = hot_spot(64, 4).flow_control(flow);
        assert_threads_agree(config, None, 200, &[4], &format!("64x4/{flow}"));
    }
}
