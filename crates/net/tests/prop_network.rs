//! Property-based tests on the Omega topology and the network simulator.

use proptest::prelude::*;

use damq_core::{BufferKind, NodeId};
use damq_net::{NetworkConfig, NetworkSim, OmegaTopology, TrafficPattern};
use damq_switch::FlowControl;

/// (size, radix) pairs that form valid Omega networks.
fn dimensions() -> impl Strategy<Value = (usize, usize)> {
    prop::sample::select(vec![
        (4usize, 2usize),
        (8, 2),
        (16, 2),
        (32, 2),
        (64, 2),
        (16, 4),
        (64, 4),
        (27, 3),
        (9, 3),
        (25, 5),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Digit routing through the shuffle wiring always reaches the
    /// addressed sink — for every topology and endpoint pair.
    #[test]
    fn routing_is_correct_for_random_pairs(
        (size, radix) in dimensions(),
        src_seed in any::<u64>(),
        dst_seed in any::<u64>(),
    ) {
        let topo = OmegaTopology::new(size, radix).unwrap();
        let src = NodeId::new((src_seed % size as u64) as usize);
        let dst = NodeId::new((dst_seed % size as u64) as usize);
        let path = topo.trace_route(src, dst);
        prop_assert_eq!(path.len(), topo.stages());
        let (_, last_switch, last_out) = *path.last().unwrap();
        prop_assert_eq!(topo.sink_of(last_switch, last_out), dst);
    }

    /// The shuffle is a permutation and applying it `stages` times is the
    /// identity (digit rotation has order `stages`).
    #[test]
    fn shuffle_has_full_period((size, radix) in dimensions()) {
        let topo = OmegaTopology::new(size, radix).unwrap();
        for line in 0..size {
            let mut x = line;
            for _ in 0..topo.stages() {
                x = topo.shuffle(x);
            }
            prop_assert_eq!(x, line, "shuffle^stages must be identity");
        }
    }

    /// Packet conservation holds for random configurations and loads.
    #[test]
    fn conservation_under_random_configs(
        (size, radix) in dimensions(),
        kind_idx in 0usize..4,
        blocking in any::<bool>(),
        load in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let kind = BufferKind::ALL[kind_idx];
        let slots = if kind.is_statically_allocated() { radix } else { 3 };
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(if blocking {
                    FlowControl::Blocking
                } else {
                    FlowControl::Discarding
                })
                .offered_load(load)
                .seed(seed),
        )
        .unwrap();
        sim.run(120);
        let m = sim.metrics();
        let accounted = m.delivered()
            + m.discarded()
            + sim.source_backlog() as u64
            + sim.packets_in_flight() as u64;
        prop_assert_eq!(m.generated(), accounted);
        sim.check_invariants();
    }

    /// Blocking networks never lose a packet, whatever the configuration.
    #[test]
    fn blocking_never_discards(
        (size, radix) in dimensions(),
        kind_idx in 0usize..4,
        load in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        let kind = BufferKind::ALL[kind_idx];
        let slots = if kind.is_statically_allocated() { radix } else { 3 };
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(FlowControl::Blocking)
                .offered_load(load)
                .seed(seed),
        )
        .unwrap();
        sim.run(200);
        prop_assert_eq!(sim.metrics().discarded(), 0);
    }

    /// Every delivered packet arrives at the sink it was addressed to
    /// (verified inside the simulator by a debug assertion; here we verify
    /// deliveries only happen to sinks that were actually addressed, via
    /// the per-sink counters under a fixed permutation).
    #[test]
    fn permutation_traffic_reaches_only_its_targets(
        (size, radix) in dimensions(),
        offset_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let offset = (offset_seed % size as u64) as usize;
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(BufferKind::Damq)
                .traffic(TrafficPattern::Shifted { offset })
                .offered_load(0.5)
                .seed(seed),
        )
        .unwrap();
        sim.run(100);
        // Every sink is hit by exactly one source under a shift; since all
        // sources generate at the same rate, deliveries should cover
        // exactly the set of addressed sinks.
        let per_sink = sim.metrics().per_sink_delivered();
        let expected: std::collections::HashSet<usize> =
            (0..size).map(|s| (s + offset) % size).collect();
        for (sink, &count) in per_sink.iter().enumerate() {
            if !expected.contains(&sink) {
                prop_assert_eq!(count, 0, "sink {} was never addressed", sink);
            }
        }
        prop_assert!(sim.metrics().delivered() > 0);
    }
}
