//! Randomized property tests on the Omega topology and the network
//! simulator, driven by the workspace's deterministic generator (formerly
//! `proptest`; every case reproduces from the printed seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{BufferKind, NodeId};
use damq_net::{NetworkConfig, NetworkSim, OmegaTopology, TrafficPattern};
use damq_switch::FlowControl;

/// (size, radix) pairs that form valid Omega networks.
const DIMENSIONS: [(usize, usize); 10] = [
    (4, 2),
    (8, 2),
    (16, 2),
    (32, 2),
    (64, 2),
    (16, 4),
    (64, 4),
    (27, 3),
    (9, 3),
    (25, 5),
];

fn dims(rng: &mut StdRng) -> (usize, usize) {
    DIMENSIONS[rng.random_range(0..DIMENSIONS.len())]
}

/// Digit routing through the shuffle wiring always reaches the addressed
/// sink — for every topology and endpoint pair.
#[test]
fn routing_is_correct_for_random_pairs() {
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (size, radix) = dims(&mut rng);
        let topo = OmegaTopology::new(size, radix).unwrap();
        let src = NodeId::new(rng.random_range(0..size));
        let dst = NodeId::new(rng.random_range(0..size));
        let path = topo.trace_route(src, dst);
        assert_eq!(path.len(), topo.stages(), "seed {seed}");
        let (_, last_switch, last_out) = *path.last().unwrap();
        assert_eq!(topo.sink_of(last_switch, last_out), dst, "seed {seed}");
    }
}

/// The shuffle is a permutation and applying it `stages` times is the
/// identity (digit rotation has order `stages`).
#[test]
fn shuffle_has_full_period() {
    for &(size, radix) in &DIMENSIONS {
        let topo = OmegaTopology::new(size, radix).unwrap();
        for line in 0..size {
            let mut x = line;
            for _ in 0..topo.stages() {
                x = topo.shuffle(x);
            }
            assert_eq!(x, line, "shuffle^stages must be identity ({size}, {radix})");
        }
    }
}

/// Packet conservation holds for random configurations and loads.
#[test]
fn conservation_under_random_configs() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (size, radix) = dims(&mut rng);
        let kind = BufferKind::ALL[rng.random_range(0..4usize)];
        let blocking = rng.random_bool(0.5);
        let load = rng.random_range(0.05..1.0f64);
        let sim_seed = rng.next_u64();
        let slots = if kind.is_statically_allocated() {
            radix
        } else {
            3
        };
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(if blocking {
                    FlowControl::Blocking
                } else {
                    FlowControl::Discarding
                })
                .offered_load(load)
                .seed(sim_seed),
        )
        .unwrap();
        sim.run(120);
        let m = sim.metrics();
        let accounted = m.delivered()
            + m.discarded()
            + sim.source_backlog() as u64
            + sim.packets_in_flight() as u64;
        assert_eq!(m.generated(), accounted, "seed {seed}");
        sim.check_invariants();
    }
}

/// Packet conservation balances after *every* cycle — not just at the end
/// of a run — and the full structural audit (every buffer of every switch,
/// plus the lifetime ledger) passes alongside it, for all five designs.
#[test]
fn per_cycle_conservation_and_audit() {
    for seed in 0..24 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let (size, radix) = dims(&mut rng);
        let kind = BufferKind::EXTENDED[rng.random_range(0..5usize)];
        let blocking = rng.random_bool(0.5);
        let load = rng.random_range(0.05..1.0f64);
        let sim_seed = rng.next_u64();
        let slots = if kind.is_statically_allocated() {
            radix
        } else {
            3
        };
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(if blocking {
                    FlowControl::Blocking
                } else {
                    FlowControl::Discarding
                })
                .offered_load(load)
                .seed(sim_seed),
        )
        .unwrap();
        for cycle in 0..80 {
            sim.step();
            if let Err(e) = sim.audit() {
                panic!("{kind} cycle {cycle}, seed {seed}: {e}");
            }
        }
    }
}

/// The conservation ledger counts over the simulation's whole lifetime, so
/// it must keep balancing after `warm_up` zeroes the window metrics while
/// packets are still resident in the network.
#[test]
fn conservation_ledger_survives_metric_resets() {
    for seed in 0..12 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let (size, radix) = dims(&mut rng);
        let sim_seed = rng.next_u64();
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(BufferKind::Damq)
                .slots_per_buffer(3)
                .offered_load(0.9)
                .seed(sim_seed),
        )
        .unwrap();
        sim.warm_up(40);
        for cycle in 0..40 {
            sim.step();
            if let Err(e) = sim.audit_conservation() {
                panic!("cycle {cycle} after warm-up, seed {seed}: {e}");
            }
        }
    }
}

/// Blocking networks never lose a packet, whatever the configuration.
#[test]
fn blocking_never_discards() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let (size, radix) = dims(&mut rng);
        let kind = BufferKind::ALL[rng.random_range(0..4usize)];
        let load = rng.random_range(0.5..1.0f64);
        let sim_seed = rng.next_u64();
        let slots = if kind.is_statically_allocated() {
            radix
        } else {
            3
        };
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(FlowControl::Blocking)
                .offered_load(load)
                .seed(sim_seed),
        )
        .unwrap();
        sim.run(200);
        assert_eq!(sim.metrics().discarded(), 0, "seed {seed}");
    }
}

/// Every delivered packet arrives at the sink it was addressed to
/// (verified inside the simulator by a debug assertion; here we verify
/// deliveries only happen to sinks that were actually addressed, via the
/// per-sink counters under a fixed permutation).
#[test]
fn permutation_traffic_reaches_only_its_targets() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let (size, radix) = dims(&mut rng);
        let offset = rng.random_range(0..size);
        let sim_seed = rng.next_u64();
        let mut sim = NetworkSim::new(
            NetworkConfig::new(size, radix)
                .buffer_kind(BufferKind::Damq)
                .traffic(TrafficPattern::Shifted { offset })
                .offered_load(0.5)
                .seed(sim_seed),
        )
        .unwrap();
        sim.run(100);
        // Every sink is hit by exactly one source under a shift; since all
        // sources generate at the same rate, deliveries should cover
        // exactly the set of addressed sinks.
        let per_sink = sim.metrics().per_sink_delivered();
        let expected: std::collections::HashSet<usize> =
            (0..size).map(|s| (s + offset) % size).collect();
        for (sink, &count) in per_sink.iter().enumerate() {
            if !expected.contains(&sink) {
                assert_eq!(count, 0, "sink {sink} was never addressed, seed {seed}");
            }
        }
        assert!(sim.metrics().delivered() > 0, "seed {seed}");
    }
}
