//! Integration tests for the telemetry layer threaded through the
//! network simulator: the golden byte-stable 2×2 trace, span-nesting and
//! packet-conservation properties of real traces, the per-cycle occupancy
//! cross-check against the simulator's own audit accessors, and the
//! guarantee that instrumentation does not perturb simulation results.

use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern, CLOCKS_PER_CYCLE};
use damq_switch::FlowControl;
use damq_telemetry::{Event, EventKind, JsonlSink, MemorySink, TraceSummary};

/// The tiny deterministic run behind the golden trace: a 2×2 Omega
/// network (one switch) under heavy uniform load.
fn golden_config() -> NetworkConfig {
    NetworkConfig::new(2, 2)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.75)
        .seed(7)
}

fn golden_trace() -> String {
    let mut sim = NetworkSim::with_sink(golden_config(), JsonlSink::new(Vec::new()))
        .expect("2x2 Omega is a valid topology");
    sim.emit_run_meta("golden 2x2");
    sim.run(12);
    let bytes = sim
        .into_sink()
        .into_inner()
        .expect("writing to a Vec cannot fail");
    String::from_utf8(bytes).expect("JSONL is UTF-8")
}

#[test]
fn golden_2x2_trace_is_byte_stable() {
    let actual = golden_trace();
    if std::env::var_os("DAMQ_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_2x2.jsonl");
        std::fs::write(path, &actual).expect("write golden trace");
        return;
    }
    let expected = include_str!("golden/trace_2x2.jsonl");
    assert_eq!(
        actual, expected,
        "the 2x2 golden trace drifted; if the event schema or simulator \
         scheduling changed intentionally, regenerate \
         crates/net/tests/golden/trace_2x2.jsonl"
    );
    // And the golden bytes round-trip through the parser.
    let events = Event::parse_trace(expected).expect("golden trace parses");
    let summary = TraceSummary::from_events(&events);
    summary
        .check_well_nested()
        .expect("golden trace is well-nested");
    assert_eq!(summary.meta.as_ref().unwrap().design, "DAMQ");
    assert!(summary.delivered > 0, "the golden run delivers packets");
}

#[test]
fn spans_are_well_nested_on_a_hot_spot_run() {
    let config = NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Fifo)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.5)
        .seed(42);
    let mut sim = NetworkSim::with_sink(config, MemorySink::new()).expect("valid config");
    sim.run(300);

    let summary = TraceSummary::from_events(sim.sink().events());
    summary
        .check_well_nested()
        .expect("every span is well-nested");

    // The trace's counters reproduce packet conservation: everything
    // generated is injected, dropped at entry, or still queued; everything
    // injected is delivered, dropped in flight, or still buffered.
    assert_eq!(
        summary.generated,
        summary.injected + summary.entry_discards + sim.source_backlog() as u64
    );
    assert_eq!(
        summary.injected,
        summary.delivered + summary.network_discards + sim.packets_in_flight() as u64
    );
    assert!(summary.delivered > 0);
    // FIFO under a hot spot must exhibit HOL blocking.
    assert!(
        summary.hol_blocked_cycles > 0,
        "FIFO hot spot shows HOL blocking"
    );
}

#[test]
fn cycle_samples_match_the_simulator_audit_every_cycle() {
    let config = NetworkConfig::new(4, 2)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.6)
        .seed(11);
    let mut sim = NetworkSim::with_sink(config, MemorySink::new()).expect("valid config");
    let capacity = 2.0 * 4.0; // radix * slots_per_buffer, per switch

    for _ in 0..200 {
        sim.step();
        sim.audit().expect("simulator invariants hold");
        let sample = sim
            .sink()
            .events()
            .iter()
            .rev()
            .find_map(|e| match &e.kind {
                EventKind::CycleSample {
                    occupied, backlog, ..
                } => Some((occupied.clone(), *backlog)),
                _ => None,
            })
            .expect("every cycle emits a sample");
        let (occupied, backlog) = sample;
        for (stage, &slots) in occupied.iter().enumerate() {
            let from_audit: f64 = sim
                .stage_occupancy(stage)
                .iter()
                .map(|fraction| fraction * capacity)
                .sum();
            assert_eq!(
                slots,
                from_audit.round() as u32,
                "stage {stage} occupancy diverged from the audit view at cycle {}",
                sim.cycle()
            );
        }
        assert_eq!(backlog as usize, sim.source_backlog());
    }
}

#[test]
fn per_hop_latency_breakdown_sums_to_end_to_end() {
    let config = NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.4)
        .seed(5);
    let mut sim = NetworkSim::with_sink(config, MemorySink::new()).expect("valid config");
    sim.run(400);

    let summary = TraceSummary::from_events(sim.sink().events());
    let waits = summary.mean_hop_waits();
    assert_eq!(waits.len(), sim.topology().stages(), "one wait per stage");
    let hop_sum: f64 = waits.iter().sum();
    let end_to_end = summary
        .mean_network_latency()
        .expect("packets were delivered");
    assert!(
        (hop_sum - end_to_end).abs() < 1e-9,
        "per-hop waits {hop_sum} must sum to end-to-end latency {end_to_end}"
    );

    // The trace-derived latency agrees with the simulator's own metrics —
    // the number that lands in results/json (converted to clocks there).
    let metrics_clocks = sim.metrics().mean_network_latency_clocks();
    let trace_clocks = end_to_end * CLOCKS_PER_CYCLE as f64;
    assert!(
        (trace_clocks - metrics_clocks).abs() < 1e-6,
        "trace says {trace_clocks} clocks, metrics say {metrics_clocks}"
    );
}

#[test]
fn instrumentation_does_not_perturb_results() {
    let config = NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Safc)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Discarding)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.5)
        .seed(99);

    let mut bare = NetworkSim::new(config).expect("valid config");
    let mut traced = NetworkSim::with_sink(config, MemorySink::new()).expect("valid config");
    bare.run(300);
    traced.run(300);

    assert_eq!(bare.metrics().generated(), traced.metrics().generated());
    assert_eq!(bare.metrics().injected(), traced.metrics().injected());
    assert_eq!(bare.metrics().delivered(), traced.metrics().delivered());
    assert_eq!(bare.metrics().discarded(), traced.metrics().discarded());
    assert_eq!(bare.source_backlog(), traced.source_backlog());
    assert_eq!(bare.packets_in_flight(), traced.packets_in_flight());
    assert_eq!(
        bare.metrics().mean_network_latency_clocks(),
        traced.metrics().mean_network_latency_clocks()
    );
    assert!(
        !traced.sink().is_empty(),
        "the traced run did record events"
    );
}
