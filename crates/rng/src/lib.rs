//! Deterministic, dependency-free random numbers for the DAMQ simulators.
//!
//! The crates registry is not reachable from the build environment, so the
//! workspace cannot depend on the external `rand` crate. This crate
//! re-implements, with zero dependencies, exactly the surface the
//! simulators use — and mirrors `rand`'s module layout (`rngs::StdRng`,
//! the [`Rng`] and [`SeedableRng`] traits, `random_bool`, `random_range`)
//! so the simulation code imports it under the dependency name `rand` and
//! compiles unchanged.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — the
//! standard pairing recommended by its authors. It is *not* cryptographic;
//! it is a fast, high-quality simulation PRNG with a fixed, documented
//! algorithm, which is what reproducible experiments need: the same seed
//! produces the same packet stream on every platform, forever.
//!
//! # Examples
//!
//! ```
//! use damq_rng::rngs::StdRng;
//! use damq_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.random_range(1..=6usize);
//! assert!((1..=6).contains(&die));
//! let p = rng.random_bool(0.5);
//! let again = StdRng::seed_from_u64(42).random_range(1..=6usize);
//! assert_eq!(die, again); // same seed, same stream
//! # let _ = p;
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Seeding interface: construct a generator from a `u64`.
///
/// Mirrors the method of `rand::SeedableRng` that the simulators call.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw `u64` stream.
///
/// All provided methods are deterministic functions of the underlying
/// stream, so two generators with equal state produce equal samples.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value as a uniform `f64` in `[0, 1)` with 53 bits
    /// of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard uniform-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Samples uniformly from `range` (see [`SampleRange`] for the
    /// supported range types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A range type [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps a raw draw onto `0..span` without modulo bias worth caring about
/// for simulation use (Lemire's multiply-shift reduction).
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = (self.end - self.start) as u64;
        self.start + reduce(rng.next_u64(), span) as usize
    }
}

impl SampleRange for core::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        let span = (end - start) as u64 + 1;
        // span can never be 0 here: end - start <= usize::MAX fits u64
        // only on 64-bit targets, where +1 wraps only for the full range —
        // which no caller uses; guard anyway.
        if span == 0 {
            return start + reduce(rng.next_u64(), u64::MAX) as usize;
        }
        start + reduce(rng.next_u64(), span) as usize
    }
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + reduce(rng.next_u64(), self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard simulation generator: xoshiro256\*\*.
    ///
    /// Unlike `rand`'s `StdRng` (which explicitly reserves the right to
    /// change algorithm between releases) this generator is pinned: seeds
    /// written into experiment configs keep reproducing the same streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(5..10usize);
            assert!((5..10).contains(&x));
            let y = rng.random_range(5..=10usize);
            assert!((5..=10).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn uniformity_over_a_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).random_range(3..3usize);
    }
}
