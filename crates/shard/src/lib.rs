//! Barrier-synchronized phase pool for the sharded network simulator.
//!
//! `damq-net` steps one pipeline stage per *phase*: every switch in the
//! stage arbitrates and probes independently (phase A), then a serial
//! merge applies the departures in a fixed order (phase B). This crate
//! provides the one concurrency primitive that phase structure needs —
//! [`PhasePool`], a set of persistent worker threads that execute a
//! *chunked phase* over disjoint slices of a buffer and then rejoin at a
//! barrier before the caller continues.
//!
//! The pool is the only place in the workspace that touches `unsafe`:
//! the network crate is `#![forbid(unsafe_code)]`, so the raw-pointer
//! chunk distribution lives here behind the safe [`PhasePool::run_phase`]
//! API. The safety argument is local and small:
//!
//! * items are split by caller-supplied ascending chunk bounds, and each
//!   chunk index is claimed by exactly one thread, so every `&mut [T]`
//!   chunk and every `&mut L` lane handed to the phase closure is
//!   pairwise disjoint;
//! * the submitting thread blocks until every worker has finished the
//!   phase (a mutex/condvar barrier establishes the happens-before), so
//!   no borrow outlives the call.
//!
//! A pool built with one thread spawns no workers and runs phases
//! inline, making the single-threaded path identical to a plain loop.
//!
//! # Examples
//!
//! ```
//! use damq_shard::PhasePool;
//!
//! let pool = PhasePool::new(4);
//! let mut items = vec![1u64; 100];
//! let mut sums = vec![0u64; 4];
//! let bounds = [0, 25, 50, 75, 100];
//! pool.run_phase(&mut items, &bounds, &mut sums, &2u64, &|_, start, chunk, sum, mul| {
//!     for (i, item) in chunk.iter_mut().enumerate() {
//!         *item *= mul + (start + i) as u64 * 0; // touch the chunk
//!         *sum += *item;
//!     }
//! });
//! assert_eq!(sums.iter().sum::<u64>(), 200);
//! ```

#![deny(missing_docs)]

pub mod model;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
// lint: allow — the phase timer measures the *pool's* wall-clock (lane
// busy time, barrier waits), never simulation state; cycle time in the
// simulators is the logical `cycle` counter, not `Instant`.
use std::time::Instant;

/// A lifetime-erased pointer to the phase job shared with the workers.
///
/// The raw pointer is only dereferenced between job submission and the
/// completion barrier in [`PhasePool::run_erased`], while the referent —
/// a closure on the submitting thread's stack — is guaranteed alive.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution from many threads is
// its contract) and the pool's barrier keeps it alive for as long as any
// worker can observe the pointer.
unsafe impl Send for Job {}

/// Dispatch state shared between the submitting thread and the workers.
struct PoolState {
    /// Incremented per submitted phase; workers run each epoch once.
    epoch: u64,
    /// The current phase job, `Some` only while a phase is in flight.
    job: Option<Job>,
    /// Workers that have not yet finished the current phase.
    remaining: usize,
    /// Set when a worker's job panicked; re-raised by the caller.
    panicked: bool,
    /// Set by `Drop` to shut the workers down.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a new phase is published (or on shutdown).
    work: Condvar,
    /// Signalled when the last worker finishes the current phase.
    done: Condvar,
    /// Opt-in wall-clock phase timer (off by default).
    timing: Timing,
}

/// Wall-clock accumulators for the opt-in phase timer. All counters are
/// harness-side observability: they never feed back into simulation
/// state, so `Relaxed` ordering everywhere is sufficient — each counter
/// is an independent statistic with no dependent data.
struct Timing {
    /// Whether lanes should time their phase-closure execution.
    enabled: AtomicBool,
    /// Per-lane nanoseconds spent executing phase closures.
    lane_busy_ns: Vec<AtomicU64>,
    /// Submitting thread's nanoseconds blocked at the completion barrier.
    barrier_wait_ns: AtomicU64,
    /// Phases executed while the timer was enabled.
    phases: AtomicU64,
}

impl Timing {
    fn new(threads: usize) -> Self {
        Timing {
            enabled: AtomicBool::new(false),
            lane_busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            barrier_wait_ns: AtomicU64::new(0),
            phases: AtomicU64::new(0),
        }
    }

    /// `Some(start)` when the timer is on, for a `stop`-paired sample.
    // lint: allow — harness wall-clock, never simulation state.
    #[inline]
    fn start(&self) -> Option<Instant> {
        // ordering: Relaxed — a stale read only delays the timer taking
        // effect by one phase; no data depends on the flag.
        self.enabled
            .load(Ordering::Relaxed)
            // lint: allow — harness wall-clock, never simulation state.
            .then(Instant::now)
    }

    /// Adds the elapsed time since `start` to lane `tid`'s busy total.
    // lint: allow — harness wall-clock, never simulation state.
    #[inline]
    fn stop_lane(&self, tid: usize, start: Option<Instant>) {
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos() as u64;
            // ordering: Relaxed — a pure statistic with no dependent data.
            self.lane_busy_ns[tid].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Wall-clock totals drained from a [`PhasePool`]'s phase timer by
/// [`PhasePool::take_times`]. All values are nanoseconds of *harness*
/// wall-clock — they describe where the pool spent real time, never
/// simulated cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Per-lane time spent executing phase closures (index = lane id;
    /// lane 0 is the submitting thread).
    pub lane_busy_ns: Vec<u64>,
    /// Time the submitting thread spent blocked at the completion
    /// barrier after finishing its own lane — the idle share.
    pub barrier_wait_ns: u64,
    /// Phases executed while the timer was enabled.
    pub phases: u64,
}

/// A persistent pool of `threads - 1` workers plus the calling thread,
/// executing barrier-synchronized phases over disjoint chunks.
///
/// Workers park on a condition variable between phases (no spinning: the
/// pool stays well-behaved on oversubscribed or single-core hosts). The
/// submitting thread always executes as thread 0, so `PhasePool::new(1)`
/// spawns nothing and runs every phase inline.
pub struct PhasePool {
    threads: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PhasePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasePool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl PhasePool {
    /// Builds a pool that executes phases on `threads` lanes (clamped to
    /// at least 1). The calling thread is lane 0; `threads - 1` workers
    /// are spawned for the rest.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            timing: Timing::new(threads),
        });
        let workers = (1..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("damq-shard-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("spawning a phase worker")
            })
            .collect();
        PhasePool {
            threads,
            shared,
            workers,
        }
    }

    /// Number of lanes (caller + workers) phases execute on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Turns the wall-clock phase timer on or off. Off by default;
    /// while off, phases pay only one relaxed flag load.
    pub fn set_timing(&self, enabled: bool) {
        // ordering: Relaxed — an observability flag; lanes may see the
        // change one phase late, which only shifts a statistic.
        self.shared.timing.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the phase timer is currently enabled.
    pub fn timing_enabled(&self) -> bool {
        // ordering: Relaxed — see `set_timing`.
        self.shared.timing.enabled.load(Ordering::Relaxed)
    }

    /// Drains the accumulated phase-timer totals, resetting them to
    /// zero. Call between phases (never concurrently with `run_phase`)
    /// for a consistent snapshot.
    pub fn take_times(&self) -> PhaseTimes {
        let timing = &self.shared.timing;
        PhaseTimes {
            lane_busy_ns: timing
                .lane_busy_ns
                .iter()
                // ordering: Relaxed — drained between phases; the phase
                // barrier already ordered every worker's accumulation.
                .map(|ns| ns.swap(0, Ordering::Relaxed))
                .collect(),
            // ordering: Relaxed — same between-phases drain.
            barrier_wait_ns: timing.barrier_wait_ns.swap(0, Ordering::Relaxed),
            // ordering: Relaxed — same between-phases drain.
            phases: timing.phases.swap(0, Ordering::Relaxed),
        }
    }

    /// Runs one phase: `items` is split at `bounds` into
    /// `lanes.len()` chunks, and `f(chunk_index, chunk_start, chunk,
    /// lane, ctx)` runs once per chunk — concurrently when the pool has
    /// workers — with chunk `i` paired with `lanes[i]`. Returns after
    /// every chunk completes (the phase barrier).
    ///
    /// Chunks are assigned to threads round-robin by index, so any
    /// number of chunks works on any pool size; with one thread (or one
    /// chunk) everything runs inline on the caller.
    ///
    /// Chunk `i` covers `items[bounds[i]..bounds[i + 1]]`; `f` also
    /// receives `bounds[i]` so it can recover absolute item indices.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ascending sequence of
    /// `lanes.len() + 1` offsets starting at 0 and ending at
    /// `items.len()`, or (propagated) if `f` panics on any lane.
    pub fn run_phase<T, L, C, F>(
        &self,
        items: &mut [T],
        bounds: &[usize],
        lanes: &mut [L],
        ctx: &C,
        f: &F,
    ) where
        T: Send,
        L: Send,
        C: Sync,
        F: Fn(usize, usize, &mut [T], &mut L, &C) + Sync,
    {
        let chunks = lanes.len();
        assert_eq!(bounds.len(), chunks + 1, "one bound per chunk edge");
        assert_eq!(bounds[0], 0, "chunks start at the first item");
        assert_eq!(bounds[chunks], items.len(), "chunks cover every item");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "chunk bounds must ascend"
        );

        if self.workers.is_empty() || chunks == 1 {
            let timer = self.shared.timing.start();
            let mut rest = items;
            for (i, lane) in lanes.iter_mut().enumerate() {
                let (chunk, tail) = rest.split_at_mut(bounds[i + 1] - bounds[i]);
                f(i, bounds[i], chunk, lane, ctx);
                rest = tail;
            }
            // The inline path is all lane 0 and has no barrier.
            self.shared.timing.stop_lane(0, timer);
            if timer.is_some() {
                // ordering: Relaxed — a pure phase count, no dependent data.
                self.shared.timing.phases.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }

        let items_ptr = SendPtr(items.as_mut_ptr());
        let lanes_ptr = SendPtr(lanes.as_mut_ptr());
        let threads = self.threads;
        let job = move |tid: usize| {
            let mut index = tid;
            while index < chunks {
                let start = bounds[index];
                let len = bounds[index + 1] - start;
                // SAFETY: `bounds` was validated ascending and in range,
                // and each chunk index is claimed by exactly one thread
                // (round-robin by `tid`), so this chunk does not overlap
                // any other thread's slice. The caller blocks at the
                // phase barrier before the borrows behind the raw
                // pointers expire.
                let chunk =
                    unsafe { std::slice::from_raw_parts_mut(items_ptr.get().add(start), len) };
                // SAFETY: `lanes` has one element per chunk and `index <
                // chunks`; the same round-robin claim makes this lane
                // exclusive to this thread until the phase barrier.
                let lane = unsafe { &mut *lanes_ptr.get().add(index) };
                f(index, start, chunk, lane, ctx);
                index += threads;
            }
        };
        self.run_erased(&job);
    }

    /// Publishes `job` to the workers, runs lane 0 on the calling
    /// thread, and blocks until every worker has finished this epoch.
    fn run_erased(&self, job: &(dyn Fn(usize) + Sync)) {
        // SAFETY: only the lifetime is erased. The pointer is dropped
        // from the shared state before this function returns, and the
        // barrier below guarantees no worker still holds it.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut state = self.shared.state.lock().expect("phase pool poisoned");
            state.epoch += 1;
            state.job = Some(Job(erased as *const _));
            state.remaining = self.workers.len();
            self.shared.work.notify_all();
        }

        // Lane 0 runs here. A panic must still wait for the workers
        // (they hold borrows into the caller's frame) before unwinding.
        let timer = self.shared.timing.start();
        let lane0 = catch_unwind(AssertUnwindSafe(|| job(0)));
        self.shared.timing.stop_lane(0, timer);

        // Time blocked at the barrier is the submitter's idle share:
        // lane 0 is done, the stragglers are not.
        let barrier = self.shared.timing.start();
        let mut state = self.shared.state.lock().expect("phase pool poisoned");
        while state.remaining > 0 {
            state = self.shared.done.wait(state).expect("phase pool poisoned");
        }
        if let Some(start) = barrier {
            let ns = start.elapsed().as_nanos() as u64;
            let timing = &self.shared.timing;
            // ordering: Relaxed — pure statistics with no dependent data.
            timing.barrier_wait_ns.fetch_add(ns, Ordering::Relaxed);
            // ordering: Relaxed — same.
            timing.phases.fetch_add(1, Ordering::Relaxed);
        }
        state.job = None;
        let worker_panicked = std::mem::replace(&mut state.panicked, false);
        drop(state);

        if let Err(payload) = lane0 {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "a phase worker panicked");
    }
}

impl Drop for PhasePool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("phase pool poisoned");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("phase pool poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(job) = state.job {
                        seen_epoch = state.epoch;
                        break job;
                    }
                }
                state = shared.work.wait(state).expect("phase pool poisoned");
            }
        };
        let timer = shared.timing.start();
        // SAFETY: the submitter keeps the job alive until `remaining`
        // hits 0, which happens only after this call returns.
        let outcome = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(tid)));
        shared.timing.stop_lane(tid, timer);
        let mut state = shared.state.lock().expect("phase pool poisoned");
        if outcome.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// A raw pointer that may cross threads. Disjointness of the accesses
/// derived from it is argued at each use site.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// wrapper — edition-2021 disjoint field capture would otherwise
    /// capture the raw pointer itself and lose the `Send`/`Sync` impls.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: `T: Send` makes handing `&mut T` to another thread sound; the
// pool's chunk assignment guarantees exclusivity, and its barrier
// guarantees the pointee outlives every access.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr<T>` across threads only exposes the pointer
// *value* (`get` copies it, never dereferences); every dereference site
// is separately justified by the chunk-exclusivity argument above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_bounds(len: usize, chunks: usize) -> Vec<usize> {
        let base = len / chunks;
        let rem = len % chunks;
        let mut bounds = vec![0];
        let mut at = 0;
        for i in 0..chunks {
            at += base + usize::from(i < rem);
            bounds.push(at);
        }
        bounds
    }

    #[test]
    fn parallel_phase_matches_serial() {
        let serial = PhasePool::new(1);
        let parallel = PhasePool::new(4);
        let make = || (0..1000u64).collect::<Vec<_>>();

        let run = |pool: &PhasePool, chunks: usize| {
            let mut items = make();
            let mut sums = vec![0u64; chunks];
            let bounds = even_bounds(items.len(), chunks);
            pool.run_phase(
                &mut items,
                &bounds,
                &mut sums,
                &3u64,
                &|_, _, chunk, sum, mul| {
                    for item in chunk.iter_mut() {
                        *item *= mul;
                        *sum += *item;
                    }
                },
            );
            (items, sums.iter().sum::<u64>())
        };

        let (items_a, sum_a) = run(&serial, 4);
        let (items_b, sum_b) = run(&parallel, 4);
        assert_eq!(items_a, items_b);
        assert_eq!(sum_a, sum_b);
        assert_eq!(sum_a, 3 * 999 * 1000 / 2);
    }

    #[test]
    fn chunk_starts_recover_absolute_indices() {
        let pool = PhasePool::new(3);
        let mut items = vec![0usize; 31];
        let bounds = even_bounds(items.len(), 3);
        let mut lanes = vec![(); 3];
        pool.run_phase(
            &mut items,
            &bounds,
            &mut lanes,
            &(),
            &|_, start, chunk, _, _| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    *item = start + i;
                }
            },
        );
        let expect: Vec<usize> = (0..31).collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn more_chunks_than_threads_round_robins() {
        let pool = PhasePool::new(2);
        let mut items = vec![1u32; 64];
        let bounds = even_bounds(items.len(), 16);
        let mut counts = vec![0u32; 16];
        pool.run_phase(
            &mut items,
            &bounds,
            &mut counts,
            &(),
            &|_, _, chunk, count, _| {
                *count = chunk.iter().sum();
            },
        );
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn pool_is_reusable_across_many_phases() {
        let pool = PhasePool::new(4);
        let mut items = vec![0u64; 100];
        let bounds = even_bounds(items.len(), 4);
        let mut lanes = vec![(); 4];
        for _ in 0..500 {
            pool.run_phase(
                &mut items,
                &bounds,
                &mut lanes,
                &(),
                &|_, _, chunk, _, _| {
                    for item in chunk.iter_mut() {
                        *item += 1;
                    }
                },
            );
        }
        assert!(items.iter().all(|&v| v == 500));
    }

    #[test]
    fn empty_chunks_are_fine() {
        let pool = PhasePool::new(4);
        let mut items: Vec<u8> = Vec::new();
        let bounds = [0, 0, 0, 0, 0];
        let mut lanes = vec![0u8; 4];
        pool.run_phase(
            &mut items,
            &bounds,
            &mut lanes,
            &(),
            &|_, _, chunk, lane, _| {
                *lane = chunk.len() as u8;
            },
        );
        assert_eq!(lanes, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "chunks cover every item")]
    fn bounds_must_cover_items() {
        let pool = PhasePool::new(1);
        let mut items = vec![0u8; 10];
        let mut lanes = vec![(); 2];
        pool.run_phase(&mut items, &[0, 5, 9], &mut lanes, &(), &|_, _, _, _, _| {});
    }

    #[test]
    fn phase_timer_accumulates_and_drains() {
        for threads in [1, 3] {
            let pool = PhasePool::new(threads);
            let mut items = vec![0u64; 300];
            let bounds = even_bounds(items.len(), threads);
            let mut lanes = vec![(); threads];
            let bump = |_: usize, _: usize, chunk: &mut [u64], _: &mut (), _: &()| {
                for item in chunk.iter_mut() {
                    *item += 1;
                }
            };

            // Timer off by default: phases run untimed.
            assert!(!pool.timing_enabled());
            pool.run_phase(&mut items, &bounds, &mut lanes, &(), &bump);
            let off = pool.take_times();
            assert_eq!(off.phases, 0);
            assert!(off.lane_busy_ns.iter().all(|&ns| ns == 0));

            pool.set_timing(true);
            for _ in 0..10 {
                pool.run_phase(&mut items, &bounds, &mut lanes, &(), &bump);
            }
            let on = pool.take_times();
            assert_eq!(on.phases, 10);
            assert_eq!(on.lane_busy_ns.len(), threads);
            assert!(on.lane_busy_ns[0] > 0, "lane 0 always runs");
            // Drained: a second take reads zeros.
            let drained = pool.take_times();
            assert_eq!(drained.phases, 0);
            assert_eq!(drained.barrier_wait_ns, 0);
            assert!(drained.lane_busy_ns.iter().all(|&ns| ns == 0));
        }
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = PhasePool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut items = vec![0u8; 8];
            let mut lanes = vec![(); 2];
            pool.run_phase(
                &mut items,
                &[0, 4, 8],
                &mut lanes,
                &(),
                &|index, _, _, _, _| {
                    assert_ne!(index, 1, "boom");
                },
            );
        }));
        assert!(outcome.is_err());
        // The pool survives a panicked phase and keeps working.
        let mut items = vec![1u8; 8];
        let mut sums = vec![0u8; 2];
        pool.run_phase(
            &mut items,
            &[0, 4, 8],
            &mut sums,
            &(),
            &|_, _, chunk, sum, _| {
                *sum = chunk.iter().sum();
            },
        );
        assert_eq!(sums, vec![4, 4]);
    }
}
