//! A loom-lite schedule-exploring model checker for the phase pool.
//!
//! The `// SAFETY:` comments in this crate assert protocol claims —
//! *jobs never outlive their submitter*, *barrier epochs never skip or
//! double-fire*, *phase-A chunk slices are disjoint*, *panics propagate
//! exactly once* — that the fingerprint test suite can only falsify if
//! the OS scheduler happens to exhibit the bad interleaving. This module
//! machine-checks them instead: it rebuilds the pool's mutex/condvar
//! protocol as a small-step state machine (one step per critical
//! section) and exhaustively enumerates every thread interleaving of a
//! miniature pool, checking ghost-state invariants on each transition.
//!
//! The abstraction is the standard one for mutex-based protocols:
//!
//! * every critical section of `run_erased` / `worker_loop` becomes one
//!   atomic step, since the pool mutex serializes them anyway;
//! * a condvar wait is modeled as *blocked until the predicate holds* —
//!   with notification under the same lock and a recheck loop, wake
//!   order and spurious wakeups add no behaviors beyond the choice of
//!   which runnable thread steps next, which the explorer enumerates;
//! * the phase closure's memory accesses are replaced by ghost state: a
//!   generation tag on the published job (dangling-pointer detection)
//!   and a claim table over chunks (disjointness detection).
//!
//! Exploration is a memoized depth-first search over the state graph —
//! every distinct reachable state is expanded once, so termination is
//! structural, not bounded by a step budget. [`Violation`]s surface
//! protocol bugs; [`Mutation`]s reintroduce two historical near-misses
//! (dropping the barrier wait, forgetting the epoch increment) to prove
//! the checker actually fails on broken protocols.

use std::collections::BTreeSet;

/// Shape of the miniature pool to explore: thread count, phase count,
/// chunk count, an optional injected panic, and an optional protocol
/// mutation.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Worker threads (excluding the submitter, which runs lane 0).
    pub workers: usize,
    /// Phases the submitter runs back to back.
    pub phases: u64,
    /// Chunks per phase, claimed round-robin by `tid` stride.
    pub chunks: usize,
    /// Inject a panic: worker index (0-based) and the chunk at which its
    /// phase closure panics. The run must propagate it exactly once.
    pub panic_at: Option<(usize, usize)>,
    /// Protocol mutation under test, if any.
    pub mutation: Option<Mutation>,
}

impl ModelConfig {
    /// A well-formed miniature pool: `workers` workers, `phases` phases,
    /// `chunks` chunks, no panic, no mutation.
    pub fn new(workers: usize, phases: u64, chunks: usize) -> Self {
        ModelConfig {
            workers,
            phases,
            chunks,
            panic_at: None,
            mutation: None,
        }
    }
}

/// A seeded protocol bug. Each mutation re-creates a plausible
/// mis-implementation of `run_erased`; the checker must return a
/// [`Violation`] for every one of them, otherwise it has no teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The submitter does not wait for `remaining == 0` before tearing
    /// the job down and moving on — the barrier that makes the
    /// lifetime-erasing `transmute` sound is gone.
    DropBarrierWait,
    /// The submitter forgets `epoch += 1` on every phase after the
    /// first, so workers (who run each epoch once) never pick the next
    /// phase up.
    SkipEpochIncrement,
}

/// A checked claim that some interleaving falsified, with the schedule
/// position it was detected at folded into the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A worker dereferenced the job after the submitter invalidated it
    /// (the backing closure may be gone: use after free).
    JobOutlivedSubmitter {
        /// Worker that touched the dead job (0-based).
        worker: usize,
        /// Generation the worker was still executing.
        generation: u64,
    },
    /// A worker observed an epoch that is not exactly its last epoch
    /// plus one — a phase was skipped or run twice.
    EpochSkippedOrRepeated {
        /// Worker that observed the bad epoch (0-based).
        worker: usize,
        /// Epoch the worker had last completed.
        seen: u64,
        /// Epoch it observed next.
        observed: u64,
    },
    /// More completion signals arrived than workers exist — the barrier
    /// double-fired.
    BarrierDoubleFire,
    /// Two threads claimed the same chunk in one phase.
    OverlappingChunks {
        /// The doubly-claimed chunk index.
        chunk: usize,
    },
    /// A phase ended with unclaimed chunks.
    UnclaimedChunk {
        /// The never-claimed chunk index.
        chunk: usize,
    },
    /// An injected panic propagated `count` times instead of once.
    PanicPropagation {
        /// How many times the panic reached the submitter.
        count: u32,
    },
    /// No thread can step but the run has not finished.
    Deadlock {
        /// Phase the submitter was on when the schedule wedged.
        phase: u64,
    },
}

/// What an exhaustive exploration visited, when no claim was falsified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct reachable states expanded.
    pub states: usize,
    /// Transitions (thread steps) taken across all of them.
    pub transitions: usize,
    /// Terminal states reached (complete schedules, post-memoization).
    pub terminals: usize,
}

/// Submitter program counter, mirroring `run_erased` + `Drop`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum SubmitterPc {
    /// About to publish phase `p`: `epoch += 1`, set job, reset barrier.
    Publish(u64),
    /// Running lane 0 of phase `p`: claiming chunks with stride.
    RunLane0(u64, usize),
    /// Blocked on the `done` condvar until `remaining == 0`, then tears
    /// the phase down.
    AwaitBarrier(u64),
    /// Setting `shutdown` and notifying workers (the `Drop` impl).
    Teardown,
    /// Joined; nothing left to do.
    Finished,
}

/// One worker's program counter, mirroring `worker_loop`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum WorkerPc {
    /// Parked on the `work` condvar: runnable when shutdown is set or a
    /// fresh-epoch job is published.
    Idle,
    /// Executing the phase closure: claiming chunk `.0` next.
    Exec(usize),
    /// About to take the completion critical section (`remaining -= 1`),
    /// carrying whether the closure panicked.
    Complete(bool),
    /// Saw shutdown and returned.
    Exited,
}

/// One worker's model state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Worker {
    pc: WorkerPc,
    /// Last epoch this worker completed (the `seen_epoch` local).
    seen_epoch: u64,
    /// Generation of the job this worker is executing.
    generation: u64,
}

/// The full model state: shared pool state, ghost state, every thread's
/// program counter. `Ord` is derived so visited-set memoization can use
/// a `BTreeSet` (deterministic iteration, per workspace lint 9).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    // Shared pool state (everything `PoolState` holds, under the mutex).
    epoch: u64,
    job: Option<u64>,
    remaining: usize,
    panicked: bool,
    shutdown: bool,
    // Ghost state.
    /// Generation whose backing closure is still alive on the
    /// submitter's stack; `None` once torn down.
    alive_generation: Option<u64>,
    /// Which thread (worker index + 1, or 0 for the submitter) claimed
    /// each chunk this phase.
    chunk_owner: Vec<Option<usize>>,
    /// Times the injected panic reached the submitter.
    panics_propagated: u32,
    // Threads.
    submitter: SubmitterPc,
    workers: Vec<Worker>,
}

impl State {
    fn initial(config: &ModelConfig) -> State {
        State {
            epoch: 0,
            job: None,
            remaining: 0,
            panicked: false,
            shutdown: false,
            alive_generation: None,
            chunk_owner: vec![None; config.chunks],
            panics_propagated: 0,
            submitter: SubmitterPc::Publish(0),
            workers: vec![
                Worker {
                    pc: WorkerPc::Idle,
                    seen_epoch: 0,
                    generation: 0,
                };
                config.workers
            ],
        }
    }

    fn finished(&self) -> bool {
        self.submitter == SubmitterPc::Finished
            && self.workers.iter().all(|w| w.pc == WorkerPc::Exited)
    }

    /// Whether the submitter can take its next step.
    fn submitter_runnable(&self, config: &ModelConfig) -> bool {
        match self.submitter {
            SubmitterPc::AwaitBarrier(_) => {
                self.remaining == 0 || config.mutation == Some(Mutation::DropBarrierWait)
            }
            SubmitterPc::Finished => false,
            _ => true,
        }
    }

    /// Whether worker `i` can take its next step. An idle worker parked
    /// on the condvar is runnable exactly when its wake predicate holds.
    fn worker_runnable(&self, i: usize) -> bool {
        match self.workers[i].pc {
            WorkerPc::Idle => {
                self.shutdown || (self.job.is_some() && self.epoch != self.workers[i].seen_epoch)
            }
            WorkerPc::Exited => false,
            _ => true,
        }
    }

    /// Advances the submitter by one atomic step.
    fn step_submitter(&mut self, config: &ModelConfig) -> Result<(), Violation> {
        let stride = config.workers + 1;
        match self.submitter {
            SubmitterPc::Publish(p) => {
                // `run_erased`'s publish critical section.
                let skip = config.mutation == Some(Mutation::SkipEpochIncrement) && p > 0;
                if !skip {
                    self.epoch += 1;
                }
                self.job = Some(self.epoch);
                self.alive_generation = Some(self.epoch);
                self.remaining = config.workers;
                self.chunk_owner = vec![None; config.chunks];
                self.submitter = SubmitterPc::RunLane0(p, 0);
                Ok(())
            }
            SubmitterPc::RunLane0(p, chunk) => {
                // Lane 0 claims chunks 0, stride, 2*stride, … — one claim
                // per step so claims interleave with the workers'.
                if chunk < config.chunks {
                    claim(&mut self.chunk_owner, chunk, 0)?;
                    self.submitter = SubmitterPc::RunLane0(p, chunk + stride);
                } else {
                    self.submitter = SubmitterPc::AwaitBarrier(p);
                }
                Ok(())
            }
            SubmitterPc::AwaitBarrier(p) => {
                // Barrier passed (or mutated away): tear the phase down.
                self.job = None;
                self.alive_generation = None;
                let worker_panicked = std::mem::replace(&mut self.panicked, false);
                if worker_panicked {
                    // `run_erased` asserts and unwinds: the panic reaches
                    // the caller now, and no further phase runs.
                    self.panics_propagated += 1;
                    if self.panics_propagated > 1 {
                        return Err(Violation::PanicPropagation {
                            count: self.panics_propagated,
                        });
                    }
                    self.submitter = SubmitterPc::Teardown;
                    return Ok(());
                }
                for (c, owner) in self.chunk_owner.iter().enumerate() {
                    if owner.is_none() {
                        return Err(Violation::UnclaimedChunk { chunk: c });
                    }
                }
                self.submitter = if p + 1 < config.phases {
                    SubmitterPc::Publish(p + 1)
                } else {
                    SubmitterPc::Teardown
                };
                Ok(())
            }
            SubmitterPc::Teardown => {
                self.shutdown = true;
                self.submitter = SubmitterPc::Finished;
                Ok(())
            }
            SubmitterPc::Finished => Ok(()),
        }
    }

    /// Advances worker `i` by one atomic step.
    fn step_worker(&mut self, i: usize, config: &ModelConfig) -> Result<(), Violation> {
        let tid = i + 1;
        let stride = config.workers + 1;
        match self.workers[i].pc {
            WorkerPc::Idle => {
                // `worker_loop`'s wake critical section.
                if self.shutdown {
                    self.workers[i].pc = WorkerPc::Exited;
                    return Ok(());
                }
                let generation = self.job.expect("runnable idle worker has a job");
                let seen = self.workers[i].seen_epoch;
                if self.epoch != seen + 1 {
                    return Err(Violation::EpochSkippedOrRepeated {
                        worker: i,
                        seen,
                        observed: self.epoch,
                    });
                }
                self.workers[i].seen_epoch = self.epoch;
                self.workers[i].generation = generation;
                self.workers[i].pc = WorkerPc::Exec(tid);
                Ok(())
            }
            WorkerPc::Exec(chunk) => {
                // Outside the lock: the closure dereferences the erased
                // job pointer — ghost-check it is still alive.
                if self.alive_generation != Some(self.workers[i].generation) {
                    return Err(Violation::JobOutlivedSubmitter {
                        worker: i,
                        generation: self.workers[i].generation,
                    });
                }
                if chunk < config.chunks {
                    if config.panic_at == Some((i, chunk)) {
                        self.workers[i].pc = WorkerPc::Complete(true);
                        return Ok(());
                    }
                    claim(&mut self.chunk_owner, chunk, tid)?;
                    self.workers[i].pc = WorkerPc::Exec(chunk + stride);
                } else {
                    self.workers[i].pc = WorkerPc::Complete(false);
                }
                Ok(())
            }
            WorkerPc::Complete(did_panic) => {
                // `worker_loop`'s completion critical section.
                if did_panic {
                    self.panicked = true;
                }
                if self.remaining == 0 {
                    return Err(Violation::BarrierDoubleFire);
                }
                self.remaining -= 1;
                self.workers[i].pc = WorkerPc::Idle;
                Ok(())
            }
            WorkerPc::Exited => Ok(()),
        }
    }
}

/// Records a chunk claim, failing on overlap.
fn claim(owners: &mut [Option<usize>], chunk: usize, tid: usize) -> Result<(), Violation> {
    if owners[chunk].is_some() {
        return Err(Violation::OverlappingChunks { chunk });
    }
    owners[chunk] = Some(tid);
    Ok(())
}

/// Exhaustively explores every interleaving of the miniature pool
/// described by `config`, checking all four protocol claims on every
/// transition. Returns the exploration size, or the first [`Violation`]
/// any schedule exhibits.
pub fn explore(config: &ModelConfig) -> Result<Exploration, Violation> {
    let initial = State::initial(config);
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut stack: Vec<State> = vec![initial];
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.finished() {
            terminals += 1;
            if config.panic_at.is_some() {
                let expected = u32::from(config.mutation.is_none());
                if state.panics_propagated != expected {
                    return Err(Violation::PanicPropagation {
                        count: state.panics_propagated,
                    });
                }
            }
            continue;
        }

        let mut stepped = false;
        if state.submitter_runnable(config) {
            stepped = true;
            transitions += 1;
            let mut next = state.clone();
            next.step_submitter(config)?;
            stack.push(next);
        }
        for i in 0..config.workers {
            if state.worker_runnable(i) {
                stepped = true;
                transitions += 1;
                let mut next = state.clone();
                next.step_worker(i, config)?;
                stack.push(next);
            }
        }
        if !stepped {
            let phase = match state.submitter {
                SubmitterPc::Publish(p)
                | SubmitterPc::RunLane0(p, _)
                | SubmitterPc::AwaitBarrier(p) => p,
                _ => config.phases,
            };
            return Err(Violation::Deadlock { phase });
        }
    }

    Ok(Exploration {
        states: visited.len(),
        transitions,
        terminals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_workers_two_phases_explore_clean() {
        let report = explore(&ModelConfig::new(2, 2, 5)).expect("protocol is sound");
        assert!(report.states > 100, "exploration is nontrivial: {report:?}");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn single_worker_many_phases_explore_clean() {
        explore(&ModelConfig::new(1, 3, 4)).expect("protocol is sound");
    }

    #[test]
    fn dropped_barrier_wait_is_caught() {
        let mut config = ModelConfig::new(2, 2, 4);
        config.mutation = Some(Mutation::DropBarrierWait);
        let violation = explore(&config).expect_err("mutation must be caught");
        assert!(
            matches!(
                violation,
                Violation::JobOutlivedSubmitter { .. }
                    | Violation::EpochSkippedOrRepeated { .. }
                    | Violation::OverlappingChunks { .. }
                    | Violation::UnclaimedChunk { .. }
            ),
            "unexpected violation: {violation:?}"
        );
    }

    #[test]
    fn skipped_epoch_increment_is_caught() {
        let mut config = ModelConfig::new(2, 2, 4);
        config.mutation = Some(Mutation::SkipEpochIncrement);
        let violation = explore(&config).expect_err("mutation must be caught");
        assert!(
            matches!(violation, Violation::Deadlock { .. }),
            "workers never wake for the unincremented epoch: {violation:?}"
        );
    }

    #[test]
    fn injected_panic_propagates_exactly_once() {
        let mut config = ModelConfig::new(2, 2, 4);
        config.panic_at = Some((1, 2));
        explore(&config).expect("panic must propagate exactly once");
    }
}
