//! Exhaustive schedule exploration of the miniature `PhasePool` model.
//!
//! Sweeps the model checker over a matrix of pool shapes (worker count ×
//! phases × chunks), verifies every interleaving upholds the four
//! protocol claims, and proves the checker has teeth by requiring it to
//! fail on the two seeded mutations. Exploration sizes are printed so
//! the bounded-interleaving count is visible in `--nocapture` runs and
//! state-space regressions show up in review.

use damq_shard::model::{explore, ModelConfig, Mutation, Violation};

/// The pool shapes explored exhaustively: (workers, phases, chunks).
/// Kept miniature on purpose — the state space is exponential in
/// threads, and 2–3 threads over 2 phases already exercise every
/// protocol edge (wake order, barrier races, teardown races).
const SHAPES: [(usize, u64, usize); 6] = [
    (1, 1, 2),
    (1, 3, 4),
    (2, 1, 3),
    (2, 2, 5),
    (2, 3, 2),
    (3, 2, 4),
];

#[test]
fn every_shape_explores_clean() {
    for (workers, phases, chunks) in SHAPES {
        let report = explore(&ModelConfig::new(workers, phases, chunks))
            .unwrap_or_else(|v| panic!("{workers}w/{phases}p/{chunks}c violated: {v:?}"));
        println!(
            "model-check {workers}w/{phases}p/{chunks}c: {} states, {} transitions, \
             {} terminal schedules",
            report.states, report.transitions, report.terminals
        );
        assert!(
            report.states > workers * chunks,
            "exploration collapsed: {report:?}"
        );
        assert!(report.terminals >= 1, "no schedule ran to completion");
    }
}

#[test]
fn panic_injection_propagates_exactly_once_everywhere() {
    // Panic at every (worker, chunk) the worker actually claims, for a
    // 2-worker pool: tid = worker + 1, stride = 3.
    for worker in 0..2usize {
        let tid = worker + 1;
        for chunk in (tid..5).step_by(3) {
            let mut config = ModelConfig::new(2, 2, 5);
            config.panic_at = Some((worker, chunk));
            let report = explore(&config).unwrap_or_else(|v| {
                panic!("panic at worker {worker}, chunk {chunk} mishandled: {v:?}")
            });
            println!(
                "model-check panic@({worker},{chunk}): {} states explored",
                report.states
            );
        }
    }
}

#[test]
fn mutation_dropped_barrier_wait_has_teeth() {
    let mut config = ModelConfig::new(2, 2, 4);
    config.mutation = Some(Mutation::DropBarrierWait);
    let violation = explore(&config).expect_err("a schedule must expose the missing barrier");
    println!("model-check DropBarrierWait caught: {violation:?}");
    assert!(
        matches!(
            violation,
            Violation::JobOutlivedSubmitter { .. }
                | Violation::EpochSkippedOrRepeated { .. }
                | Violation::OverlappingChunks { .. }
                | Violation::UnclaimedChunk { .. }
        ),
        "unexpected violation kind: {violation:?}"
    );
}

#[test]
fn mutation_skipped_epoch_increment_has_teeth() {
    let mut config = ModelConfig::new(2, 2, 4);
    config.mutation = Some(Mutation::SkipEpochIncrement);
    let violation = explore(&config).expect_err("a schedule must expose the frozen epoch");
    println!("model-check SkipEpochIncrement caught: {violation:?}");
    assert!(
        matches!(violation, Violation::Deadlock { .. }),
        "the frozen epoch should wedge the pool: {violation:?}"
    );
}

#[test]
fn mutations_are_caught_across_shapes() {
    // Teeth must not depend on one lucky shape: both mutations must be
    // caught on every multi-phase shape in the matrix.
    for (workers, phases, chunks) in SHAPES {
        if phases < 2 {
            // SkipEpochIncrement only bites from the second phase on.
            continue;
        }
        for mutation in [Mutation::DropBarrierWait, Mutation::SkipEpochIncrement] {
            let mut config = ModelConfig::new(workers, phases, chunks);
            config.mutation = Some(mutation);
            assert!(
                explore(&config).is_err(),
                "{mutation:?} not caught at {workers}w/{phases}p/{chunks}c"
            );
        }
    }
}
