//! Crossbar arbitration: *dumb* and *smart* round-robin (paper §4.2).
//!
//! Each cycle the central arbiter examines the input buffers one at a time,
//! in a rotating priority order, "transmitting packets from the longest
//! queue in the buffer which was not blocked". The two policies differ in
//! fairness bookkeeping:
//!
//! * [`ArbiterPolicy::Dumb`] rotates the starting buffer unconditionally
//!   every cycle.
//! * [`ArbiterPolicy::Smart`] rotates **only past buffers that actually
//!   transmitted** (a buffer that had priority but could send nothing keeps
//!   its priority), and breaks ties among a buffer's queues using a *stale
//!   count* — how many cycles a queue has held packets without being served
//!   — so that no queue starves inside its buffer.

use damq_core::{InputPort, OutputPort};

/// Which arbitration policy the switch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbiterPolicy {
    /// Unconditional round-robin over buffers; longest queue within a buffer.
    Dumb,
    /// Round-robin that only charges buffers for cycles in which they
    /// transmitted, with stale counts for intra-buffer fairness.
    #[default]
    Smart,
}

impl ArbiterPolicy {
    /// Both policies, dumb first (the order of the paper's Table 3 columns).
    pub const ALL: [ArbiterPolicy; 2] = [ArbiterPolicy::Dumb, ArbiterPolicy::Smart];

    /// Short lower-case name ("dumb" / "smart").
    pub fn name(self) -> &'static str {
        match self {
            ArbiterPolicy::Dumb => "dumb",
            ArbiterPolicy::Smart => "smart",
        }
    }
}

impl std::fmt::Display for ArbiterPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A candidate transmission offered to the arbiter: a queue inside one
/// buffer with at least one sendable packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The queue's output port.
    pub output: OutputPort,
    /// Current length of that queue in packets.
    pub queue_len: usize,
}

/// Arbitration state carried across cycles: the priority pointer and the
/// per-(buffer, queue) stale counts.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbiterPolicy,
    ports: usize,
    fanout: usize,
    priority: usize,
    stale: Vec<u32>, // ports x fanout, row-major
}

impl Arbiter {
    /// Creates an arbiter for a switch with `ports` input buffers of
    /// `fanout` queues each.
    ///
    /// # Panics
    ///
    /// Panics if `ports` or `fanout` is zero.
    pub fn new(policy: ArbiterPolicy, ports: usize, fanout: usize) -> Self {
        assert!(ports > 0, "arbiter needs at least one input buffer");
        assert!(fanout > 0, "arbiter needs at least one output queue");
        Arbiter {
            policy,
            ports,
            fanout,
            priority: 0,
            stale: vec![0; ports * fanout],
        }
    }

    /// The policy this arbiter runs.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// The buffer that will be examined first next cycle.
    pub fn priority_port(&self) -> InputPort {
        InputPort::new(self.priority)
    }

    /// The order in which buffers are examined this cycle.
    pub fn examination_order(&self) -> impl Iterator<Item = InputPort> + '_ {
        (0..self.ports).map(move |i| InputPort::new((self.priority + i) % self.ports))
    }

    /// Picks which of `candidates` (the not-blocked queues of one buffer)
    /// to serve. Returns `None` if there are no candidates.
    ///
    /// Dumb: longest queue, ties to the lowest output index. Smart: highest
    /// stale count first, then longest queue, then lowest index.
    pub fn select_queue(&self, input: InputPort, candidates: &[Candidate]) -> Option<Candidate> {
        candidates.iter().copied().max_by_key(|c| {
            let stale = match self.policy {
                ArbiterPolicy::Dumb => 0,
                ArbiterPolicy::Smart => self.stale_count(input, c.output),
            };
            // Reverse index so that max_by_key's tie-break prefers low index.
            (stale, c.queue_len, usize::MAX - c.output.index())
        })
    }

    /// Advances the priority pointer one port, wrapping by compare
    /// instead of `%` (`ports` is runtime, so the modulo is a divide).
    fn rotate_priority(&mut self) {
        self.priority += 1;
        if self.priority == self.ports {
            self.priority = 0;
        }
    }

    /// Stale count of queue `output` in buffer `input`.
    pub fn stale_count(&self, input: InputPort, output: OutputPort) -> u32 {
        self.stale[input.index() * self.fanout + output.index()]
    }

    /// Finishes a cycle.
    ///
    /// Both matrices are flat, row-major `ports x fanout` — the same layout
    /// as the switch's batched-kernel scratch, so no per-row indirection.
    /// `served[i * fanout + o]` must be true iff buffer `i`'s queue `o`
    /// transmitted; `occupied[i * fanout + o]` iff that queue still holds
    /// packets. Updates the priority pointer and (for smart) the stale
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have the wrong shape.
    pub fn complete_cycle(&mut self, served: &[bool], occupied: &[bool]) {
        assert_eq!(
            served.len(),
            self.ports * self.fanout,
            "served matrix shape"
        );
        assert_eq!(
            occupied.len(),
            self.ports * self.fanout,
            "occupied matrix shape"
        );
        let row = self.priority * self.fanout;
        let first_transmitted = served[row..row + self.fanout].iter().any(|&s| s);
        match self.policy {
            ArbiterPolicy::Dumb => {
                self.rotate_priority();
            }
            ArbiterPolicy::Smart => {
                for ((stale, &served), &occupied) in self.stale.iter_mut().zip(served).zip(occupied)
                {
                    *stale = if !served && occupied {
                        stale.saturating_add(1)
                    } else {
                        0
                    };
                }
                if first_transmitted {
                    self.rotate_priority();
                }
            }
        }
    }

    /// Finishes a cycle in which the whole switch was quiescent — no queue
    /// held a packet, so nothing was served and nothing was occupied.
    ///
    /// Byte-identical to `complete_cycle(all-false, all-false)`: dumb
    /// rotates unconditionally; smart keeps its priority (nothing
    /// transmitted) and leaves the stale counts at zero, which they must
    /// already be, since a queue only accrues staleness while occupied and
    /// every queue was observed empty when the switch went quiescent.
    pub fn complete_idle_cycle(&mut self) {
        match self.policy {
            ArbiterPolicy::Dumb => {
                self.rotate_priority();
            }
            ArbiterPolicy::Smart => {
                debug_assert!(
                    self.stale.iter().all(|&s| s == 0),
                    "quiescent switch carried a nonzero stale count"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(o: usize, len: usize) -> Candidate {
        Candidate {
            output: OutputPort::new(o),
            queue_len: len,
        }
    }

    fn no_service(ports: usize, fanout: usize) -> Vec<bool> {
        vec![false; ports * fanout]
    }

    #[test]
    fn dumb_picks_longest_queue() {
        let a = Arbiter::new(ArbiterPolicy::Dumb, 4, 4);
        let picked = a
            .select_queue(InputPort::new(0), &[cand(0, 1), cand(2, 3), cand(3, 2)])
            .unwrap();
        assert_eq!(picked.output, OutputPort::new(2));
    }

    #[test]
    fn ties_go_to_lowest_output_index() {
        let a = Arbiter::new(ArbiterPolicy::Dumb, 4, 4);
        let picked = a
            .select_queue(InputPort::new(0), &[cand(3, 2), cand(1, 2)])
            .unwrap();
        assert_eq!(picked.output, OutputPort::new(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let a = Arbiter::new(ArbiterPolicy::Dumb, 2, 2);
        assert!(a.select_queue(InputPort::new(0), &[]).is_none());
    }

    #[test]
    fn dumb_rotates_unconditionally() {
        let mut a = Arbiter::new(ArbiterPolicy::Dumb, 3, 2);
        assert_eq!(a.priority_port(), InputPort::new(0));
        a.complete_cycle(&no_service(3, 2), &no_service(3, 2));
        assert_eq!(a.priority_port(), InputPort::new(1));
        a.complete_cycle(&no_service(3, 2), &no_service(3, 2));
        assert_eq!(a.priority_port(), InputPort::new(2));
        a.complete_cycle(&no_service(3, 2), &no_service(3, 2));
        assert_eq!(a.priority_port(), InputPort::new(0));
    }

    #[test]
    fn smart_keeps_priority_when_first_buffer_sent_nothing() {
        let mut a = Arbiter::new(ArbiterPolicy::Smart, 3, 2);
        // Paper: "that buffer will be the first one examined again".
        a.complete_cycle(&no_service(3, 2), &no_service(3, 2));
        assert_eq!(a.priority_port(), InputPort::new(0));
        let mut served = no_service(3, 2);
        served[1] = true; // buffer 0, queue 1
        a.complete_cycle(&served, &no_service(3, 2));
        assert_eq!(a.priority_port(), InputPort::new(1));
    }

    #[test]
    fn stale_counts_accumulate_and_reset() {
        let mut a = Arbiter::new(ArbiterPolicy::Smart, 2, 2);
        let mut occupied = no_service(2, 2);
        occupied[0] = true; // buffer 0, queue 0
        occupied[1] = true; // buffer 0, queue 1
                            // Queue (0,1) passed over twice.
        a.complete_cycle(&no_service(2, 2), &occupied);
        a.complete_cycle(&no_service(2, 2), &occupied);
        assert_eq!(a.stale_count(InputPort::new(0), OutputPort::new(1)), 2);
        // Serving it resets the count.
        let mut served = no_service(2, 2);
        served[1] = true; // buffer 0, queue 1
        a.complete_cycle(&served, &occupied);
        assert_eq!(a.stale_count(InputPort::new(0), OutputPort::new(1)), 0);
        assert_eq!(a.stale_count(InputPort::new(0), OutputPort::new(0)), 3);
    }

    #[test]
    fn smart_selects_stalest_queue_over_longest() {
        let mut a = Arbiter::new(ArbiterPolicy::Smart, 1, 3);
        let mut occupied = no_service(1, 3);
        occupied[2] = true; // buffer 0, queue 2
        a.complete_cycle(&no_service(1, 3), &occupied);
        // Queue 2 is stale (count 1); queue 0 is longer but fresh.
        let picked = a
            .select_queue(InputPort::new(0), &[cand(0, 5), cand(2, 1)])
            .unwrap();
        assert_eq!(picked.output, OutputPort::new(2));
    }

    #[test]
    fn idle_cycle_matches_all_false_complete_cycle() {
        for policy in ArbiterPolicy::ALL {
            let mut full = Arbiter::new(policy, 3, 2);
            let mut fast = Arbiter::new(policy, 3, 2);
            for _ in 0..5 {
                full.complete_cycle(&no_service(3, 2), &no_service(3, 2));
                fast.complete_idle_cycle();
                assert_eq!(full.priority_port(), fast.priority_port(), "{policy}");
            }
        }
    }

    #[test]
    fn emptied_queue_loses_its_stale_count() {
        let mut a = Arbiter::new(ArbiterPolicy::Smart, 1, 2);
        let mut occupied = no_service(1, 2);
        occupied[0] = true; // buffer 0, queue 0
        a.complete_cycle(&no_service(1, 2), &occupied);
        assert_eq!(a.stale_count(InputPort::new(0), OutputPort::new(0)), 1);
        // Queue drains (e.g. the packet was dropped): stale count clears.
        a.complete_cycle(&no_service(1, 2), &no_service(1, 2));
        assert_eq!(a.stale_count(InputPort::new(0), OutputPort::new(0)), 0);
    }
}
