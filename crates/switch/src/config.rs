//! Switch configuration.

use damq_core::{BufferConfig, BufferKind, DEFAULT_SLOT_BYTES};

use crate::arbiter::ArbiterPolicy;
use crate::flow::FlowControl;

/// Complete description of an n×n switch: geometry, buffer design,
/// arbitration and flow control.
///
/// Built incrementally ([C-BUILDER]) and consumed by
/// [`Switch::new`](crate::Switch::new).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#builders-enable-construction-of-complex-values-c-builder
///
/// # Examples
///
/// ```
/// use damq_core::BufferKind;
/// use damq_switch::{ArbiterPolicy, Switch, SwitchConfig};
///
/// let sw = Switch::new(
///     SwitchConfig::new(4)
///         .buffer_kind(BufferKind::Damq)
///         .slots_per_buffer(4)
///         .arbiter_policy(ArbiterPolicy::Smart),
/// )?;
/// assert_eq!(sw.ports(), 4);
/// # Ok::<(), damq_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    ports: usize,
    buffer_kind: BufferKind,
    slots_per_buffer: usize,
    slot_bytes: usize,
    arbiter_policy: ArbiterPolicy,
    flow_control: FlowControl,
}

impl SwitchConfig {
    /// Starts a configuration for a `ports`×`ports` switch with the paper's
    /// defaults: DAMQ buffers of 4 slots × 8 bytes, smart arbitration,
    /// blocking flow control.
    pub fn new(ports: usize) -> Self {
        SwitchConfig {
            ports,
            buffer_kind: BufferKind::Damq,
            slots_per_buffer: 4,
            slot_bytes: DEFAULT_SLOT_BYTES,
            arbiter_policy: ArbiterPolicy::Smart,
            flow_control: FlowControl::Blocking,
        }
    }

    /// Selects the input-buffer design.
    pub fn buffer_kind(mut self, kind: BufferKind) -> Self {
        self.buffer_kind = kind;
        self
    }

    /// Sets the storage per input buffer, in slots.
    pub fn slots_per_buffer(mut self, slots: usize) -> Self {
        self.slots_per_buffer = slots;
        self
    }

    /// Sets the slot size in bytes.
    pub fn slot_bytes(mut self, bytes: usize) -> Self {
        self.slot_bytes = bytes;
        self
    }

    /// Selects the crossbar arbitration policy.
    pub fn arbiter_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.arbiter_policy = policy;
        self
    }

    /// Selects the flow-control discipline.
    pub fn flow_control(mut self, flow: FlowControl) -> Self {
        self.flow_control = flow;
        self
    }

    /// Number of input (and output) ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The configured buffer design.
    pub fn kind(&self) -> BufferKind {
        self.buffer_kind
    }

    /// Storage per input buffer, in slots.
    pub fn slots(&self) -> usize {
        self.slots_per_buffer
    }

    /// Slot size in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_bytes
    }

    /// The configured arbitration policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.arbiter_policy
    }

    /// The configured flow control.
    pub fn flow(&self) -> FlowControl {
        self.flow_control
    }

    /// The per-buffer configuration implied by this switch configuration.
    pub fn buffer_config(&self) -> BufferConfig {
        BufferConfig::new(self.ports, self.slots_per_buffer).slot_bytes(self.slot_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_omega_setup() {
        let c = SwitchConfig::new(4);
        assert_eq!(c.ports(), 4);
        assert_eq!(c.kind(), BufferKind::Damq);
        assert_eq!(c.slots(), 4);
        assert_eq!(c.policy(), ArbiterPolicy::Smart);
        assert_eq!(c.flow(), FlowControl::Blocking);
    }

    #[test]
    fn builder_overrides_stick() {
        let c = SwitchConfig::new(2)
            .buffer_kind(BufferKind::Fifo)
            .slots_per_buffer(6)
            .slot_bytes(16)
            .arbiter_policy(ArbiterPolicy::Dumb)
            .flow_control(FlowControl::Discarding);
        assert_eq!(c.kind(), BufferKind::Fifo);
        assert_eq!(c.slots(), 6);
        assert_eq!(c.slot_size(), 16);
        assert_eq!(c.policy(), ArbiterPolicy::Dumb);
        assert_eq!(c.flow(), FlowControl::Discarding);
        assert_eq!(c.buffer_config().capacity(), 6);
    }
}
