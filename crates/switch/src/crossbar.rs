//! The crossbar connection matrix.
//!
//! A crossbar connects input buffers to output ports. Within one cycle each
//! output may be driven by at most one input; how many connections a single
//! input may hold simultaneously depends on the buffer design (1, or the
//! fanout for SAFC's fully-connected fabric). [`Crossbar`] tracks and
//! validates the connections made during one arbitration round.

use damq_core::{InputPort, OutputPort};

/// Per-cycle crossbar state: which input drives each output.
///
/// # Examples
///
/// ```
/// use damq_switch::Crossbar;
/// use damq_core::{InputPort, OutputPort};
///
/// let mut xbar = Crossbar::new(4, 4);
/// assert!(xbar.try_connect(InputPort::new(1), OutputPort::new(2)));
/// assert!(!xbar.try_connect(InputPort::new(3), OutputPort::new(2))); // taken
/// assert_eq!(xbar.driver(OutputPort::new(2)), Some(InputPort::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    inputs: usize,
    drivers: Vec<Option<InputPort>>,
    connections_made: u64,
    cycles: u64,
}

impl Crossbar {
    /// Creates an `inputs`×`outputs` crossbar with no connections.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        Crossbar {
            inputs,
            drivers: vec![None; outputs],
            connections_made: 0,
            cycles: 0,
        }
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.drivers.len()
    }

    /// Whether `output` is still unclaimed this cycle.
    pub fn is_free(&self, output: OutputPort) -> bool {
        output.index() < self.drivers.len() && self.drivers[output.index()].is_none()
    }

    /// The input currently driving `output`, if any.
    pub fn driver(&self, output: OutputPort) -> Option<InputPort> {
        self.drivers.get(output.index()).copied().flatten()
    }

    /// Claims `output` for `input`. Returns `false` (and changes nothing) if
    /// the output is already driven or out of range.
    pub fn try_connect(&mut self, input: InputPort, output: OutputPort) -> bool {
        if input.index() >= self.inputs || !self.is_free(output) {
            return false;
        }
        self.drivers[output.index()] = Some(input);
        self.connections_made += 1;
        true
    }

    /// Connections established in the current cycle.
    pub fn active_connections(&self) -> usize {
        self.drivers.iter().filter(|d| d.is_some()).count()
    }

    /// Clears all connections, ending the cycle.
    pub fn release_all(&mut self) {
        self.drivers.fill(None);
        self.cycles += 1;
    }

    /// Ends a cycle in which no connection was attempted (the switch was
    /// quiescent). Equivalent to `release_all` on an unused crossbar, minus
    /// the redundant `drivers` clear.
    pub fn tick_idle_cycle(&mut self) {
        debug_assert!(self.drivers.iter().all(Option::is_none));
        self.cycles += 1;
    }

    /// Mean fraction of outputs driven per completed cycle (crossbar
    /// utilisation so far).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.drivers.is_empty() {
            0.0
        } else {
            self.connections_made as f64 / (self.cycles as f64 * self.drivers.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connects_and_blocks_double_drive() {
        let mut x = Crossbar::new(2, 2);
        assert!(x.try_connect(InputPort::new(0), OutputPort::new(0)));
        assert!(x.try_connect(InputPort::new(1), OutputPort::new(1)));
        assert!(!x.try_connect(InputPort::new(0), OutputPort::new(1)));
        assert_eq!(x.active_connections(), 2);
    }

    #[test]
    fn one_input_may_drive_many_outputs() {
        // The fully-connected (SAFC) case: input 0 feeds all outputs.
        let mut x = Crossbar::new(4, 4);
        for o in 0..4 {
            assert!(x.try_connect(InputPort::new(0), OutputPort::new(o)));
        }
        assert_eq!(x.active_connections(), 4);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut x = Crossbar::new(2, 2);
        assert!(!x.try_connect(InputPort::new(2), OutputPort::new(0)));
        assert!(!x.try_connect(InputPort::new(0), OutputPort::new(2)));
    }

    #[test]
    fn release_all_resets_and_counts_cycles() {
        let mut x = Crossbar::new(2, 2);
        x.try_connect(InputPort::new(0), OutputPort::new(1));
        x.release_all();
        assert!(x.is_free(OutputPort::new(1)));
        assert_eq!(x.active_connections(), 0);
        // One of two outputs used for one cycle -> 50% utilisation.
        assert!((x.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_zero_before_any_cycle() {
        assert_eq!(Crossbar::new(2, 2).utilization(), 0.0);
    }
}
