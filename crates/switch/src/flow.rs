//! Inter-switch flow-control disciplines.
//!
//! The paper evaluates both families of switches (§4): *discarding* switches
//! drop a packet that arrives at a full buffer, and *blocking* switches hold
//! the transmitter back until the downstream buffer has room (which requires
//! the upstream node to know about downstream space — and, for the
//! statically-allocated designs, about space in the specific *queue* the
//! packet will join, i.e. pre-routing).

use std::fmt;

/// What happens when a packet heads for a buffer that cannot hold it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowControl {
    /// The packet is dropped and counted; the sender proceeds.
    Discarding,
    /// The sender keeps the packet and retries later; nothing is lost.
    #[default]
    Blocking,
}

impl FlowControl {
    /// Both disciplines, discarding first.
    pub const ALL: [FlowControl; 2] = [FlowControl::Discarding, FlowControl::Blocking];

    /// Lower-case name ("discarding" / "blocking").
    pub fn name(self) -> &'static str {
        match self {
            FlowControl::Discarding => "discarding",
            FlowControl::Blocking => "blocking",
        }
    }

    /// Whether senders must check downstream space before transmitting.
    pub fn requires_backpressure(self) -> bool {
        matches!(self, FlowControl::Blocking)
    }
}

impl fmt::Display for FlowControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_backpressure() {
        assert_eq!(FlowControl::Discarding.name(), "discarding");
        assert_eq!(FlowControl::Blocking.name(), "blocking");
        assert!(!FlowControl::Discarding.requires_backpressure());
        assert!(FlowControl::Blocking.requires_backpressure());
    }

    #[test]
    fn default_is_blocking() {
        assert_eq!(FlowControl::default(), FlowControl::Blocking);
    }
}
