//! n×n switch model built on the buffer designs of [`damq_core`].
//!
//! A [`Switch`] couples one input buffer per port (any of the four designs:
//! FIFO, SAMQ, SAFC, DAMQ) with a [`Crossbar`] and a central [`Arbiter`]
//! implementing the paper's *dumb* and *smart* round-robin policies. The
//! host (a network simulator, or a test) drives the switch one cycle at a
//! time: arriving packets go in through [`Switch::receive`], and
//! [`Switch::transmit_cycle`] performs arbitration and returns the departing
//! packets.
//!
//! Flow control ([`FlowControl`]) is a property of the *network* protocol:
//! a blocking network only lets a switch transmit into downstream space,
//! which the host expresses through the `can_send` predicate of
//! [`Switch::transmit_cycle`]; a discarding network always lets packets fly
//! and drops those that find a full buffer.
//!
//! Because one cycle of a switch is a pure function of its own state and
//! the `can_send` answers (see the determinism note on
//! [`Switch::transmit_cycle`]), hosts may arbitrate many switches
//! concurrently — `damq-net`'s sharded stepping
//! (`NetworkSim::with_threads`) does exactly that, with all shared-state
//! mutation deferred to a serial merge phase.
//!
//! # Examples
//!
//! Two packets for different outputs leave a DAMQ switch in one cycle:
//!
//! ```
//! use damq_core::{BufferKind, InputPort, NodeId, OutputPort, Packet};
//! use damq_switch::{Switch, SwitchConfig};
//!
//! let mut sw = Switch::new(SwitchConfig::new(4).buffer_kind(BufferKind::Damq))?;
//! let mk = |s| Packet::builder(NodeId::new(s), NodeId::new(0)).build();
//! sw.receive(InputPort::new(0), OutputPort::new(1), mk(0))?;
//! sw.receive(InputPort::new(2), OutputPort::new(3), mk(1))?;
//! assert_eq!(sw.transmit_cycle(|_, _| true).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arbiter;
mod config;
mod crossbar;
mod flow;
mod switch;

pub use arbiter::{Arbiter, ArbiterPolicy, Candidate};
pub use config::SwitchConfig;
pub use crossbar::Crossbar;
pub use flow::FlowControl;
pub use switch::{CycleSink, Departure, Switch};
