//! The n×n switch: input buffers + crossbar + central arbiter.

use damq_core::{
    AnyBuffer, BufferStats, BuildBuffer, FrontMeta, InputPort, OutputPort, Packet, Rejected,
    SwitchBuffer,
};

use crate::arbiter::{Arbiter, Candidate};
use crate::config::SwitchConfig;
use crate::crossbar::Crossbar;

/// One packet leaving a switch in a transmission cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Departure {
    /// Buffer the packet came from.
    pub input: InputPort,
    /// Output port it leaves through.
    pub output: OutputPort,
    /// The packet itself (hop already recorded).
    pub packet: Packet,
}

/// The caller's side of one arbitration cycle: flow control plus departure
/// handling, as a single object so the cycle kernel makes no allocations.
///
/// [`Switch::transmit_cycle_with`] consults [`can_send`](CycleSink::can_send)
/// while gathering candidates and hands each winning packet to
/// [`depart`](CycleSink::depart) the moment it is dequeued. One object
/// carries both halves because they typically share mutable state (the
/// network's per-output route scratch), which two separate closures could
/// not both borrow.
pub trait CycleSink {
    /// Flow control: may the head packet of `output`'s queue leave this
    /// cycle? Return `false` to block it (e.g. no space downstream).
    ///
    /// The probe sees [`FrontMeta`] — destination and length, read from
    /// the buffer's index registers — rather than the packet itself, so
    /// the examination walk never drags out-of-line payloads through the
    /// cache (see [`SwitchBuffer::front_meta`]).
    fn can_send(&mut self, output: OutputPort, front: FrontMeta) -> bool;

    /// Accepts a departing packet (hop already recorded). Called at most
    /// once per output per cycle.
    fn depart(&mut self, input: InputPort, output: OutputPort, packet: Packet);
}

/// Adapter giving the classic closure-plus-`Vec` surface of
/// [`Switch::transmit_cycle`] on top of [`CycleSink`].
struct CollectSink<F> {
    can_send: F,
    departures: Vec<Departure>,
}

impl<F: FnMut(OutputPort, FrontMeta) -> bool> CycleSink for CollectSink<F> {
    fn can_send(&mut self, output: OutputPort, front: FrontMeta) -> bool {
        (self.can_send)(output, front)
    }

    fn depart(&mut self, input: InputPort, output: OutputPort, packet: Packet) {
        self.departures.push(Departure {
            input,
            output,
            packet,
        });
    }
}

/// An n×n switch with per-input buffers of a configurable design, a
/// crossbar, and a central arbiter.
///
/// The buffer type is a compile-time parameter. The default,
/// [`AnyBuffer`], picks the design at run time from the configuration's
/// [`BufferKind`](damq_core::BufferKind) through enum dispatch — no heap
/// indirection, and the per-design fast paths stay visible to the
/// inliner. Instantiate with a concrete design
/// (`Switch::<DamqBuffer>::typed(..)`) to monomorphize the switch fully.
///
/// The switch is driven externally in two phases per network cycle:
///
/// 1. [`Switch::transmit_cycle`] — the arbiter connects buffers to output
///    ports and dequeues at most one packet per output (and, except for
///    SAFC, at most one per buffer). The caller supplies a `can_send`
///    predicate implementing the flow-control discipline (always `true` for
///    discarding, downstream-space check for blocking).
/// 2. [`Switch::receive`] — arriving packets, already routed to an output
///    port, are stored; a full buffer rejects the packet and the caller
///    decides (per protocol) whether that is a discard or a stall.
///
/// # Examples
///
/// ```
/// use damq_core::{BufferKind, NodeId, InputPort, OutputPort, Packet};
/// use damq_switch::{Switch, SwitchConfig};
///
/// let mut sw = Switch::new(SwitchConfig::new(4).buffer_kind(BufferKind::Damq))?;
/// let p = Packet::builder(NodeId::new(0), NodeId::new(9)).build();
/// sw.receive(InputPort::new(1), OutputPort::new(3), p)?;
///
/// let sent = sw.transmit_cycle(|_out, _pkt| true);
/// assert_eq!(sent.len(), 1);
/// assert_eq!(sent[0].output, OutputPort::new(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Switch<B: SwitchBuffer = AnyBuffer> {
    config: SwitchConfig,
    buffers: Vec<B>,
    arbiter: Arbiter,
    crossbar: Crossbar,
    hol_blocked_last_cycle: u64,
    hol_blocked_total: u64,
    /// Packets resident across all buffers, maintained incrementally on
    /// `receive`/dequeue so quiescence checks never touch the buffers.
    resident: usize,
    // Per-cycle scratch, hoisted out of the cycle kernel so steady-state
    // stepping performs no allocations. All matrices are flat, row-major
    // ports x ports.
    served: Vec<bool>,
    occupied: Vec<bool>,
    lens: Vec<u16>,
    dirty: Vec<bool>,
    candidates: Vec<Candidate>,
}

impl Switch {
    /// Builds a switch from its configuration, selecting the buffer design
    /// named by the configuration's
    /// [`BufferKind`](damq_core::BufferKind) at run time (the
    /// [`AnyBuffer`] default).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`](damq_core::ConfigError) if the buffer
    /// configuration is invalid for the chosen design (zero dimensions, or a
    /// capacity that does not divide among static partitions).
    pub fn new(config: SwitchConfig) -> Result<Self, damq_core::ConfigError> {
        Switch::typed(config)
    }
}

impl<B: BuildBuffer> Switch<B> {
    /// Builds a switch whose buffer type is fixed by the caller.
    ///
    /// Concrete designs ignore the configuration's `buffer_kind`
    /// (`Switch::<DamqBuffer>::typed(..)` holds DAMQ buffers regardless);
    /// kind-erased types ([`AnyBuffer`], `Box<dyn SwitchBuffer>`) honour
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`](damq_core::ConfigError) as
    /// [`Switch::new`] does.
    pub fn typed(config: SwitchConfig) -> Result<Self, damq_core::ConfigError> {
        let ports = config.ports();
        let buffer_config = config.buffer_config();
        let buffers = (0..ports)
            .map(|_| B::build_buffer(buffer_config, config.kind()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Switch {
            config,
            buffers,
            arbiter: Arbiter::new(config.policy(), ports, ports),
            crossbar: Crossbar::new(ports, ports),
            hol_blocked_last_cycle: 0,
            hol_blocked_total: 0,
            resident: 0,
            served: vec![false; ports * ports],
            occupied: vec![false; ports * ports],
            lens: vec![0; ports * ports],
            dirty: vec![false; ports],
            // lint: allow — construction-time scratch, not the cycle kernel.
            candidates: Vec::with_capacity(ports),
        })
    }
}

impl<B: SwitchBuffer> Switch<B> {
    /// Number of input (and output) ports.
    pub fn ports(&self) -> usize {
        self.config.ports()
    }

    /// The switch's configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Read access to the buffer at `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn buffer(&self, input: InputPort) -> &B {
        &self.buffers[input.index()]
    }

    /// The arbiter (for inspecting priority/stale state in tests).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Whether the buffer at `input` could store a packet of `slots` slots
    /// routed to `output` right now.
    pub fn can_accept(&self, input: InputPort, output: OutputPort, slots: usize) -> bool {
        self.buffers[input.index()].can_accept(output, slots)
    }

    /// Batched backpressure snapshot: fills `caps[i * ports + o]` with
    /// the largest packet (in slots) input buffer `i` would accept for
    /// output `o` right now — `can_accept(i, o, s)` iff
    /// `s <= caps[i * ports + o]`. The network simulator takes this
    /// snapshot per stage while the switch is frozen, so its probe loop
    /// reads a flat array instead of chasing through buffer state.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is not `ports * ports` long.
    pub fn accept_capacities_into(&self, caps: &mut [u16]) {
        let ports = self.ports();
        assert_eq!(caps.len(), ports * ports, "capacity matrix shape");
        for (b, row) in self.buffers.iter().zip(caps.chunks_exact_mut(ports)) {
            for (o, cap) in row.iter_mut().enumerate() {
                *cap = b.accept_capacity(OutputPort::new(o)).min(u16::MAX as usize) as u16;
            }
        }
    }

    /// Stores a packet arriving on `input`, already routed to `output`.
    ///
    /// # Errors
    ///
    /// Returns the packet inside [`Rejected`] when the buffer cannot hold it
    /// (buffer full, static queue full, or packet too large).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn receive(
        &mut self,
        input: InputPort,
        output: OutputPort,
        packet: Packet,
    ) -> Result<(), Rejected> {
        let stored = self.buffers[input.index()].try_enqueue(output, packet);
        if stored.is_ok() {
            self.resident += 1;
        }
        stored
    }

    /// Runs one arbitration/transmission cycle.
    ///
    /// Buffers are examined in the arbiter's rotating order. Each buffer
    /// offers its non-blocked queues (per `can_send`) as candidates, the
    /// arbiter picks one per read port, and the winning packets are
    /// dequeued. Each output port carries at most one packet per cycle.
    ///
    /// `can_send(output, packet)` implements flow control: return `false`
    /// to block that packet this cycle (e.g. no space downstream).
    ///
    /// Departing packets have their hop count incremented.
    ///
    /// # Determinism
    ///
    /// The cycle is a pure function of the switch's own state and the
    /// `can_send` answers: the examination order comes from the arbiter's
    /// priority pointer (stable for the whole cycle), candidates are
    /// walked in ascending output order, and no global or ambient state
    /// is consulted. This is what lets the sharded network simulator
    /// (`damq-net`'s `NetworkSim::with_threads`) arbitrate many switches
    /// concurrently — each call observes only its own switch plus
    /// read-only downstream probes — and still produce byte-identical
    /// results at any thread count. Mutation of *shared* state (the
    /// downstream `receive`) is the caller's job, after arbitration.
    pub fn transmit_cycle<F>(&mut self, can_send: F) -> Vec<Departure>
    where
        F: FnMut(OutputPort, FrontMeta) -> bool,
    {
        let mut sink = CollectSink {
            can_send,
            // lint: allow — compatibility adapter, not the cycle kernel.
            departures: Vec::new(),
        };
        self.transmit_cycle_with(&mut sink);
        sink.departures
    }

    /// Runs one arbitration/transmission cycle against a [`CycleSink`].
    ///
    /// Identical semantics to [`transmit_cycle`](Switch::transmit_cycle) —
    /// that method is a thin adapter over this one — but allocation-free:
    /// departures stream into the sink instead of a fresh `Vec`, and the
    /// per-cycle state (queue lengths, served/occupied matrices) lives in
    /// flat scratch arrays reused across cycles. Queue lengths are
    /// prefetched per buffer via
    /// [`queue_lens_into`](SwitchBuffer::queue_lens_into) — one batched
    /// register read instead of `ports x fanout` virtual calls — and kept
    /// consistent arithmetically: serving a queue decrements its cached
    /// length (exact for every per-output design; a FIFO's single read port
    /// never re-reads its row within the cycle), and rows of buffers that
    /// dequeued are re-fetched before the occupancy sweep, because a FIFO
    /// dequeue exposes a new head output and reshapes its whole row.
    pub fn transmit_cycle_with<S: CycleSink>(&mut self, sink: &mut S) {
        let ports = self.ports();
        self.served.fill(false);
        self.dirty.fill(false);

        // Batched prefetch of every buffer's queue-length registers.
        for (b, row) in self.buffers.iter().zip(self.lens.chunks_exact_mut(ports)) {
            b.queue_lens_into(row);
        }

        // Inline rotating walk instead of collecting `examination_order()`:
        // the arbiter's priority pointer is stable for the whole cycle.
        // (Wrap by compare, not `%` — `ports` is a runtime value, so the
        // modulo is a hardware divide on the hottest loop in the kernel.)
        let mut i = self.arbiter.priority_port().index();
        for _ in 0..ports {
            let input = InputPort::new(i);
            let row = i * ports;
            let reads = self.buffers[i].read_ports();
            for _ in 0..reads {
                self.candidates.clear();
                let buffer = &self.buffers[i];
                for o in OutputPort::all(ports) {
                    if !self.crossbar.is_free(o) {
                        continue;
                    }
                    let queue_len = self.lens[row + o.index()] as usize;
                    if queue_len == 0 {
                        continue;
                    }
                    let front = buffer.front_meta(o).expect("nonempty queue has a front");
                    if sink.can_send(o, front) {
                        self.candidates.push(Candidate {
                            output: o,
                            queue_len,
                        });
                    }
                }
                let Some(pick) = self.arbiter.select_queue(input, &self.candidates) else {
                    break;
                };
                let connected = self.crossbar.try_connect(input, pick.output);
                debug_assert!(connected, "candidate filtered on free outputs");
                let mut packet = self.buffers[i]
                    .dequeue(pick.output)
                    .expect("candidate queue was nonempty");
                packet.record_hop();
                self.served[row + pick.output.index()] = true;
                self.lens[row + pick.output.index()] -= 1;
                self.dirty[i] = true;
                self.resident -= 1;
                sink.depart(input, pick.output, packet);
            }
            i += 1;
            if i == ports {
                i = 0;
            }
        }

        // Re-fetch rows whose buffer dequeued before deriving occupancy: a
        // FIFO dequeue can expose a head for a different output, reshaping
        // its whole row (per-output designs are already exact).
        for (i, b) in self.buffers.iter().enumerate() {
            if self.dirty[i] {
                b.queue_lens_into(&mut self.lens[i * ports..(i + 1) * ports]);
            }
        }
        for (occ, &len) in self.occupied.iter_mut().zip(&self.lens) {
            *occ = len > 0;
        }
        self.arbiter.complete_cycle(&self.served, &self.occupied);
        self.crossbar.release_all();

        // End-of-cycle head-of-line accounting: packets still resident that
        // a per-output design could have offered but this design could not.
        self.hol_blocked_last_cycle = self.buffers.iter_mut().map(|b| b.note_hol_blocked()).sum();
        self.hol_blocked_total += self.hol_blocked_last_cycle;
    }

    /// Whether every input buffer is empty, in O(1) from the incrementally
    /// maintained resident count.
    pub fn is_quiescent(&self) -> bool {
        self.resident == 0
    }

    /// Advances a quiescent switch by one cycle without touching its
    /// buffers.
    ///
    /// Byte-identical to running [`transmit_cycle`](Switch::transmit_cycle)
    /// on an empty switch: the crossbar counts an idle cycle, the arbiter
    /// takes its idle step (dumb rotates; smart holds priority, and its
    /// stale counts are provably already zero — the cycle that emptied the
    /// switch observed every queue unoccupied), HOL accounting reads zero,
    /// and no buffer statistic moves (an empty FIFO records nothing).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the switch [`is_quiescent`](Switch::is_quiescent).
    pub fn note_idle_cycle(&mut self) {
        debug_assert!(self.is_quiescent(), "idle-skip on a non-quiescent switch");
        self.crossbar.tick_idle_cycle();
        self.arbiter.complete_idle_cycle();
        self.hol_blocked_last_cycle = 0;
    }

    /// Packets head-of-line blocked at the end of the most recent
    /// [`transmit_cycle`](Switch::transmit_cycle) (always 0 for per-output
    /// buffer designs).
    pub fn hol_blocked_last_cycle(&self) -> u64 {
        self.hol_blocked_last_cycle
    }

    /// Accumulated packet-cycles of head-of-line blocking since
    /// construction.
    pub fn hol_blocked_total(&self) -> u64 {
        self.hol_blocked_total
    }

    /// Total packets resident in all input buffers, in O(1) from the
    /// incrementally maintained count.
    pub fn packets_resident(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.buffers.iter().map(|b| b.packet_count()).sum::<usize>(),
            "resident cache drifted from the buffers"
        );
        self.resident
    }

    /// Total slots in use across all input buffers.
    pub fn occupied_slots(&self) -> usize {
        self.buffers.iter().map(|b| b.used_slots()).sum()
    }

    /// Total slot capacity across all input buffers.
    pub fn total_slots(&self) -> usize {
        self.buffers.iter().map(|b| b.capacity_slots()).sum()
    }

    /// Permanently disables one slot in the buffer at `input` (fault
    /// injection), hinting the partition for `hint` on statically-allocated
    /// designs.
    ///
    /// Returns `false` if `input` is out of range or every slot of that
    /// buffer is already dead — never panics, so fault plans may name
    /// arbitrary sites.
    pub fn kill_buffer_slot(&mut self, input: InputPort, hint: OutputPort) -> bool {
        match self.buffers.get_mut(input.index()) {
            Some(buffer) => buffer.kill_slot(hint),
            None => false,
        }
    }

    /// Slots lost to fault injection across all input buffers.
    pub fn dead_slots(&self) -> usize {
        self.buffers.iter().map(|b| b.dead_slots()).sum()
    }

    /// Fraction of buffer storage in use (0.0 = empty, 1.0 = full).
    pub fn occupancy_fraction(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.occupied_slots() as f64 / total as f64
        }
    }

    /// Aggregated operation counters over all input buffers.
    pub fn aggregate_stats(&self) -> BufferStats {
        let mut total = BufferStats::new();
        for b in &self.buffers {
            total.merge(b.stats());
        }
        total
    }

    /// Zeroes every buffer's counters.
    pub fn reset_stats(&mut self) {
        for b in &mut self.buffers {
            b.reset_stats();
        }
    }

    /// Mean crossbar utilisation since construction.
    pub fn crossbar_utilization(&self) -> f64 {
        self.crossbar.utilization()
    }

    /// Verifies every buffer's structural invariants without panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (see
    /// [`AuditError`](damq_core::AuditError)).
    pub fn audit(&self) -> Result<(), damq_core::AuditError> {
        for b in &self.buffers {
            b.audit()?;
        }
        Ok(())
    }

    /// Checks every buffer's internal invariants (testing aid).
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        for b in &self.buffers {
            b.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPolicy;
    use damq_core::{BufferKind, NodeId};

    fn pkt(src: usize) -> Packet {
        Packet::builder(NodeId::new(src), NodeId::new(0)).build()
    }

    fn switch(kind: BufferKind) -> Switch {
        Switch::new(
            SwitchConfig::new(4)
                .buffer_kind(kind)
                .slots_per_buffer(4)
                .arbiter_policy(ArbiterPolicy::Dumb),
        )
        .unwrap()
    }

    #[test]
    fn one_packet_per_output_per_cycle() {
        let mut sw = switch(BufferKind::Damq);
        // Two buffers hold packets for the same output.
        sw.receive(InputPort::new(0), OutputPort::new(2), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(1), OutputPort::new(2), pkt(1))
            .unwrap();
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 1);
        assert_eq!(sw.packets_resident(), 1);
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 1);
        assert_eq!(sw.packets_resident(), 0);
    }

    #[test]
    fn conflict_free_packets_all_leave_together() {
        let mut sw = switch(BufferKind::Damq);
        for i in 0..4 {
            sw.receive(InputPort::new(i), OutputPort::new((i + 1) % 4), pkt(i))
                .unwrap();
        }
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 4);
    }

    #[test]
    fn fifo_switch_suffers_head_of_line_blocking() {
        let mut sw = switch(BufferKind::Fifo);
        // Buffer 0: head -> out0, second -> out1. Buffer 1: head -> out0.
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        sw.receive(InputPort::new(1), OutputPort::new(0), pkt(2))
            .unwrap();
        // Cycle 1: only one packet can use out0; the out1 packet is blocked
        // behind buffer 0's head, so at most... in fact exactly one departs
        // if buffer 0 wins out0, two never happen.
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 1, "HOL blocking limits this cycle to 1");
        assert_eq!(sent[0].output, OutputPort::new(0));
    }

    #[test]
    fn hol_accounting_tracks_fifo_blocking() {
        let mut sw = switch(BufferKind::Fifo);
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        // Stall out0: the head cannot leave, so the out1 packet behind it
        // is head-of-line blocked this cycle.
        let sent = sw.transmit_cycle(|out, _| out.index() != 0);
        assert!(sent.is_empty());
        assert_eq!(sw.hol_blocked_last_cycle(), 1);
        // Unstall: the head departs, the out1 packet becomes the head and
        // is no longer blocked.
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 1);
        assert_eq!(sw.hol_blocked_last_cycle(), 0);
        assert_eq!(sw.hol_blocked_total(), 1);
        assert_eq!(sw.aggregate_stats().hol_blocked(), 1);

        let mut dsw = switch(BufferKind::Damq);
        dsw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        dsw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        let _ = dsw.transmit_cycle(|out, _| out.index() != 0);
        assert_eq!(
            dsw.hol_blocked_total(),
            0,
            "per-output designs never HOL-block"
        );
    }

    #[test]
    fn damq_switch_avoids_head_of_line_blocking() {
        let mut sw = switch(BufferKind::Damq);
        // Buffer 0: two packets for out1 (its longest queue) and one for
        // out0. Buffer 1: one packet for out0. A FIFO would serialise all
        // of buffer 0 behind whichever packet arrived first; DAMQ lets
        // buffer 0 serve out1 while buffer 1 serves out0.
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(2))
            .unwrap();
        sw.receive(InputPort::new(1), OutputPort::new(0), pkt(3))
            .unwrap();
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 2, "multi-queue removes HOL blocking");
        let outputs: Vec<_> = sent.iter().map(|d| d.output.index()).collect();
        assert!(outputs.contains(&0) && outputs.contains(&1));
        // Everything drains within three cycles (one output-0 conflict).
        let sent2 = sw.transmit_cycle(|_, _| true);
        let sent3 = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len() + sent2.len() + sent3.len(), 4);
    }

    #[test]
    fn safc_buffer_sends_to_multiple_outputs_at_once() {
        let mut sw = switch(BufferKind::Safc);
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 2, "fully-connected buffer uses both outputs");
        let inputs: Vec<_> = sent.iter().map(|d| d.input).collect();
        assert_eq!(inputs, vec![InputPort::new(0), InputPort::new(0)]);
    }

    #[test]
    fn damq_single_read_port_sends_one_per_cycle() {
        let mut sw = switch(BufferKind::Damq);
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap();
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent.len(), 1, "single read port");
    }

    #[test]
    fn blocked_outputs_hold_packets() {
        let mut sw = switch(BufferKind::Damq);
        sw.receive(InputPort::new(0), OutputPort::new(3), pkt(0))
            .unwrap();
        let sent = sw.transmit_cycle(|out, _| out.index() != 3);
        assert!(sent.is_empty());
        assert_eq!(sw.packets_resident(), 1);
    }

    #[test]
    fn departures_record_hops() {
        let mut sw = switch(BufferKind::Fifo);
        sw.receive(InputPort::new(2), OutputPort::new(1), pkt(0))
            .unwrap();
        let sent = sw.transmit_cycle(|_, _| true);
        assert_eq!(sent[0].packet.hops(), 1);
    }

    #[test]
    fn aggregate_stats_cover_all_buffers() {
        let mut sw = switch(BufferKind::Damq);
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(3), OutputPort::new(2), pkt(1))
            .unwrap();
        let _ = sw.transmit_cycle(|_, _| true);
        let stats = sw.aggregate_stats();
        assert_eq!(stats.packets_accepted(), 2);
        assert_eq!(stats.packets_forwarded(), 2);
    }

    #[test]
    fn full_buffer_rejects_and_caller_keeps_packet() {
        let mut sw = Switch::new(
            SwitchConfig::new(2)
                .buffer_kind(BufferKind::Damq)
                .slots_per_buffer(1),
        )
        .unwrap();
        sw.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        let rejected = sw
            .receive(InputPort::new(0), OutputPort::new(1), pkt(1))
            .unwrap_err();
        assert_eq!(rejected.packet.source(), NodeId::new(1));
    }

    #[test]
    fn occupancy_accounting() {
        let mut sw = switch(BufferKind::Damq);
        assert_eq!(sw.occupancy_fraction(), 0.0);
        assert_eq!(sw.total_slots(), 16);
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(0))
            .unwrap();
        sw.receive(InputPort::new(2), OutputPort::new(3), pkt(1))
            .unwrap();
        assert_eq!(sw.occupied_slots(), 2);
        assert!((sw.occupancy_fraction() - 2.0 / 16.0).abs() < 1e-12);
        let _ = sw.transmit_cycle(|_, _| true);
        assert_eq!(sw.occupied_slots(), 0);
    }

    #[test]
    fn crossbar_utilization_accumulates() {
        let mut sw = switch(BufferKind::Damq);
        for i in 0..4 {
            sw.receive(InputPort::new(i), OutputPort::new((i + 1) % 4), pkt(i))
                .unwrap();
        }
        let _ = sw.transmit_cycle(|_, _| true); // 4/4 outputs used
        let _ = sw.transmit_cycle(|_, _| true); // 0/4 outputs used
        assert!((sw.crossbar_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quiescence_tracks_residency() {
        let mut sw = switch(BufferKind::Damq);
        assert!(sw.is_quiescent());
        sw.receive(InputPort::new(0), OutputPort::new(2), pkt(0))
            .unwrap();
        assert!(!sw.is_quiescent());
        let _ = sw.transmit_cycle(|_, _| true);
        assert!(sw.is_quiescent());
        // A rejected receive does not disturb the resident count.
        let mut tiny = Switch::new(
            SwitchConfig::new(2)
                .buffer_kind(BufferKind::Damq)
                .slots_per_buffer(1),
        )
        .unwrap();
        tiny.receive(InputPort::new(0), OutputPort::new(0), pkt(0))
            .unwrap();
        let _ = tiny.receive(InputPort::new(0), OutputPort::new(1), pkt(1));
        assert_eq!(tiny.packets_resident(), 1);
    }

    #[test]
    fn idle_cycle_is_byte_identical_to_empty_transmit_cycle() {
        for policy in ArbiterPolicy::ALL {
            for kind in BufferKind::ALL {
                let cfg = SwitchConfig::new(4)
                    .buffer_kind(kind)
                    .slots_per_buffer(4)
                    .arbiter_policy(policy);
                let mut full = Switch::new(cfg).unwrap();
                let mut fast = Switch::new(cfg).unwrap();
                // Shared non-trivial history so arbiter/crossbar state is
                // mid-stream, then drain to quiescence.
                for sw in [&mut full, &mut fast] {
                    sw.receive(InputPort::new(0), OutputPort::new(1), pkt(0))
                        .unwrap();
                    sw.receive(InputPort::new(2), OutputPort::new(1), pkt(1))
                        .unwrap();
                    while !sw.is_quiescent() {
                        let _ = sw.transmit_cycle(|_, _| true);
                    }
                }
                for cycle in 0..5 {
                    assert!(sw_state(&full) == sw_state(&fast), "{kind}/{policy}");
                    let sent = full.transmit_cycle(|_, _| true);
                    assert!(sent.is_empty());
                    fast.note_idle_cycle();
                    assert!(
                        sw_state(&full) == sw_state(&fast),
                        "{kind}/{policy} diverged at idle cycle {cycle}"
                    );
                }
                // Both resume identically when traffic returns.
                for sw in [&mut full, &mut fast] {
                    sw.receive(InputPort::new(1), OutputPort::new(3), pkt(2))
                        .unwrap();
                    let sent = sw.transmit_cycle(|_, _| true);
                    assert_eq!(sent.len(), 1);
                }
                assert!(sw_state(&full) == sw_state(&fast), "{kind}/{policy}");
            }
        }
    }

    /// Every externally observable piece of switch state.
    fn sw_state(sw: &Switch) -> (InputPort, u64, u64, usize, String, u64) {
        (
            sw.arbiter().priority_port(),
            sw.hol_blocked_last_cycle(),
            sw.hol_blocked_total(),
            sw.packets_resident(),
            format!("{:?}", sw.aggregate_stats()),
            sw.crossbar_utilization().to_bits(),
        )
    }

    #[test]
    fn smart_arbiter_state_progresses_only_on_service() {
        let mut sw = Switch::new(
            SwitchConfig::new(2)
                .buffer_kind(BufferKind::Damq)
                .arbiter_policy(ArbiterPolicy::Smart),
        )
        .unwrap();
        // Nothing to send: priority must stay at buffer 0.
        let _ = sw.transmit_cycle(|_, _| true);
        assert_eq!(sw.arbiter().priority_port(), InputPort::new(0));
        sw.receive(InputPort::new(0), OutputPort::new(1), pkt(0))
            .unwrap();
        let _ = sw.transmit_cycle(|_, _| true);
        assert_eq!(sw.arbiter().priority_port(), InputPort::new(1));
    }
}
