//! Replaying a trace into per-packet lifecycles and per-cycle series.
//!
//! [`TraceSummary`] is the analysis half of the telemetry layer: feed it
//! the events of one run (incrementally via [`feed`](TraceSummary::feed)
//! or at once via [`from_events`](TraceSummary::from_events)) and it
//! reconstructs packet lifecycle spans, bounded-memory occupancy series,
//! HOL-blocking and discard timelines — everything `trace_report` renders.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::series::{Downsampler, OccupancyHistogram};

/// One crossbar traversal in a packet's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Cycle the packet crossed the crossbar.
    pub cycle: u64,
    /// Stage of the forwarding switch.
    pub stage: u32,
    /// Switch index within its stage.
    pub switch: u32,
    /// Output port taken.
    pub output: u32,
}

/// The reconstructed life of one packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lifecycle {
    /// Packet serial number.
    pub packet: u64,
    /// Cycle the source created the packet.
    pub generated: Option<u64>,
    /// Cycle the packet entered a first-stage buffer.
    pub injected: Option<u64>,
    /// Crossbar traversals, in trace order.
    pub hops: Vec<Hop>,
    /// Delivery cycle and sink terminal, once delivered.
    pub delivered: Option<(u64, u32)>,
    /// Cycle the packet was discarded (at entry or in the network).
    pub discarded: Option<u64>,
}

impl Lifecycle {
    /// Cycles spent waiting before each hop.
    ///
    /// The wait at stage `s` is `hops[s].cycle − arrival(s)`, where the
    /// packet arrives at stage 0 when injected and at stage `s > 0` on
    /// the cycle it was forwarded out of stage `s − 1`. `None` until the
    /// packet has been injected.
    pub fn hop_waits(&self) -> Option<Vec<u64>> {
        let injected = self.injected?;
        let mut arrival = injected;
        let mut waits = Vec::with_capacity(self.hops.len());
        for hop in &self.hops {
            waits.push(hop.cycle.saturating_sub(arrival));
            arrival = hop.cycle;
        }
        Some(waits)
    }

    /// Cycles from injection to delivery. `None` until delivered.
    pub fn network_latency(&self) -> Option<u64> {
        let (delivered, _) = self.delivered?;
        Some(delivered - self.injected?)
    }

    /// Cycles from generation to delivery (includes source-queue wait).
    pub fn total_latency(&self) -> Option<u64> {
        let (delivered, _) = self.delivered?;
        Some(delivered - self.generated?)
    }

    /// Cycles spent in the source queue before injection.
    pub fn source_wait(&self) -> Option<u64> {
        Some(self.injected? - self.generated?)
    }

    fn entry(&mut self, packet: u64) -> &mut Self {
        self.packet = packet;
        self
    }
}

/// Default bin budget for the summary's per-cycle series.
const SUMMARY_BINS: usize = 64;

/// Everything a trace says about one run, in bounded memory except for
/// the per-packet lifecycle map (which is proportional to packets, not
/// cycles).
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Per-packet lifecycle spans, keyed by packet serial.
    pub lifecycles: BTreeMap<u64, Lifecycle>,
    /// The run's `RunMeta`, if the trace contained one.
    pub meta: Option<RunMeta>,
    /// Per-stage occupied-slot time series (index = stage).
    pub stage_occupancy: Vec<Downsampler>,
    /// Per-stage forwarded-packets (link utilisation) time series.
    pub stage_forwarded: Vec<Downsampler>,
    /// Network-wide HOL-blocked packet count per cycle.
    pub hol_series: Downsampler,
    /// Discards (entry + network) per cycle.
    pub discard_series: Downsampler,
    /// Source-queue backlog per cycle.
    pub backlog_series: Downsampler,
    /// How often buffers sat at each occupancy level, across the run.
    pub buffer_occupancy: OccupancyHistogram,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets injected.
    pub injected: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Packets dropped at network entry.
    pub entry_discards: u64,
    /// Packets dropped between stages.
    pub network_discards: u64,
    /// Sum over cycles of HOL-blocked packet counts.
    pub hol_blocked_cycles: u64,
    /// Buffer slots disabled by fault injection.
    pub slot_kills: u64,
    /// Link-outage windows opened by fault injection.
    pub link_downs: u64,
    /// Packets dropped at a sink with a failed checksum.
    pub corrupt_drops: u64,
    /// Packets dropped after arriving at the wrong sink.
    pub misroutes: u64,
    /// Link-level resend attempts by the recovery layer.
    pub retransmits: u64,
    /// Parked packets dropped after exhausting their retries.
    pub gave_ups: u64,
    /// Departures deflected to an alternate output by adaptive routing.
    pub reroutes: u64,
    /// Deflected packets fed back into a source queue at the wrong sink.
    pub recirculations: u64,
    /// Last cycle stamp seen.
    pub last_cycle: u64,
    /// Per-cycle discard counter, flushed into `discard_series` when the
    /// cycle stamp advances.
    pending_discards: u64,
    pending_cycle: Option<u64>,
}

/// Copy of the run-identification fields from [`EventKind::RunMeta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Buffer design under test.
    pub design: String,
    /// Number of terminals.
    pub terminals: u32,
    /// Switch radix.
    pub radix: u32,
    /// Number of stages.
    pub stages: u32,
    /// Slots per input buffer.
    pub slots: u32,
    /// Free-form run description.
    pub note: String,
}

impl Default for TraceSummary {
    fn default() -> Self {
        TraceSummary::new()
    }
}

impl TraceSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        TraceSummary {
            lifecycles: BTreeMap::new(),
            meta: None,
            stage_occupancy: Vec::new(),
            stage_forwarded: Vec::new(),
            hol_series: Downsampler::new(SUMMARY_BINS),
            discard_series: Downsampler::new(SUMMARY_BINS),
            backlog_series: Downsampler::new(SUMMARY_BINS),
            buffer_occupancy: OccupancyHistogram::new(),
            generated: 0,
            injected: 0,
            delivered: 0,
            entry_discards: 0,
            network_discards: 0,
            hol_blocked_cycles: 0,
            slot_kills: 0,
            link_downs: 0,
            corrupt_drops: 0,
            misroutes: 0,
            retransmits: 0,
            gave_ups: 0,
            reroutes: 0,
            recirculations: 0,
            last_cycle: 0,
            pending_discards: 0,
            pending_cycle: None,
        }
    }

    /// Builds a summary from a complete event slice.
    pub fn from_events(events: &[Event]) -> Self {
        let mut summary = TraceSummary::new();
        for event in events {
            summary.feed(event);
        }
        summary.finish();
        summary
    }

    fn lifecycle(&mut self, packet: u64) -> &mut Lifecycle {
        self.lifecycles.entry(packet).or_default().entry(packet)
    }

    /// Per-cycle counters (currently discards) are accumulated until the
    /// cycle stamp advances, then flushed as one sample.
    fn roll_cycle(&mut self, cycle: u64) {
        match self.pending_cycle {
            Some(current) if current == cycle => {}
            Some(_) => {
                self.discard_series.record(self.pending_discards as f64);
                self.pending_discards = 0;
                self.pending_cycle = Some(cycle);
            }
            None => self.pending_cycle = Some(cycle),
        }
    }

    /// Incorporates one event.
    pub fn feed(&mut self, event: &Event) {
        self.last_cycle = self.last_cycle.max(event.cycle);
        self.roll_cycle(event.cycle);
        match &event.kind {
            EventKind::RunMeta {
                design,
                terminals,
                radix,
                stages,
                slots,
                note,
            } => {
                self.meta = Some(RunMeta {
                    design: design.clone(),
                    terminals: *terminals,
                    radix: *radix,
                    stages: *stages,
                    slots: *slots,
                    note: note.clone(),
                });
            }
            EventKind::Generated { packet, .. } => {
                self.generated += 1;
                self.lifecycle(*packet).generated = Some(event.cycle);
            }
            EventKind::Injected { packet, .. } => {
                self.injected += 1;
                self.lifecycle(*packet).injected = Some(event.cycle);
            }
            EventKind::EntryDiscarded { packet, .. } => {
                self.entry_discards += 1;
                self.pending_discards += 1;
                self.lifecycle(*packet).discarded = Some(event.cycle);
            }
            EventKind::Forwarded {
                packet,
                stage,
                switch,
                output,
            } => {
                let cycle = event.cycle;
                self.lifecycle(*packet).hops.push(Hop {
                    cycle,
                    stage: *stage,
                    switch: *switch,
                    output: *output,
                });
            }
            EventKind::NetworkDiscarded { packet, .. } => {
                self.network_discards += 1;
                self.pending_discards += 1;
                self.lifecycle(*packet).discarded = Some(event.cycle);
            }
            EventKind::Delivered { packet, sink } => {
                self.delivered += 1;
                self.lifecycle(*packet).delivered = Some((event.cycle, *sink));
            }
            EventKind::HolBlocked { blocked, .. } => {
                self.hol_blocked_cycles += u64::from(*blocked);
            }
            EventKind::SlotKilled { .. } => {
                self.slot_kills += 1;
            }
            EventKind::LinkDown { .. } => {
                self.link_downs += 1;
            }
            EventKind::CorruptDropped { packet, .. } => {
                self.corrupt_drops += 1;
                self.pending_discards += 1;
                self.lifecycle(*packet).discarded = Some(event.cycle);
            }
            EventKind::Misrouted { packet, .. } => {
                self.misroutes += 1;
                self.pending_discards += 1;
                self.lifecycle(*packet).discarded = Some(event.cycle);
            }
            EventKind::Retransmit { .. } => {
                self.retransmits += 1;
            }
            EventKind::GaveUp { packet, .. } => {
                self.gave_ups += 1;
                self.pending_discards += 1;
                self.lifecycle(*packet).discarded = Some(event.cycle);
            }
            EventKind::Rerouted { .. } => {
                self.reroutes += 1;
            }
            // A recirculated packet is back in a source queue, still
            // live: it neither discards nor closes the lifecycle.
            EventKind::Recirculated { .. } => {
                self.recirculations += 1;
            }
            EventKind::CycleSample {
                occupied,
                forwarded,
                buffer_occupancy,
                backlog,
                hol_blocked,
            } => {
                while self.stage_occupancy.len() < occupied.len() {
                    self.stage_occupancy.push(Downsampler::new(SUMMARY_BINS));
                }
                for (stage, &v) in occupied.iter().enumerate() {
                    self.stage_occupancy[stage].record(f64::from(v));
                }
                while self.stage_forwarded.len() < forwarded.len() {
                    self.stage_forwarded.push(Downsampler::new(SUMMARY_BINS));
                }
                for (stage, &v) in forwarded.iter().enumerate() {
                    self.stage_forwarded[stage].record(f64::from(v));
                }
                for (level, &n) in buffer_occupancy.iter().enumerate() {
                    self.buffer_occupancy.observe_many(level, u64::from(n));
                }
                self.backlog_series.record(f64::from(*backlog));
                self.hol_series.record(f64::from(*hol_blocked));
            }
        }
    }

    /// Flushes trailing per-cycle counters. Called by
    /// [`from_events`](TraceSummary::from_events); call it yourself after
    /// the last [`feed`](TraceSummary::feed).
    pub fn finish(&mut self) {
        if self.pending_cycle.take().is_some() {
            self.discard_series.record(self.pending_discards as f64);
            self.pending_discards = 0;
        }
    }

    /// Mean network latency (inject → deliver) over delivered packets.
    pub fn mean_network_latency(&self) -> Option<f64> {
        let latencies: Vec<u64> = self
            .lifecycles
            .values()
            .filter_map(Lifecycle::network_latency)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        Some(latencies.iter().sum::<u64>() as f64 / latencies.len() as f64)
    }

    /// Mean wait per stage over delivered packets: element `s` is the
    /// average number of cycles delivered packets spent waiting in stage
    /// `s`. These per-hop means sum to
    /// [`mean_network_latency`](TraceSummary::mean_network_latency).
    pub fn mean_hop_waits(&self) -> Vec<f64> {
        let mut sums: Vec<u64> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for life in self.lifecycles.values() {
            if life.delivered.is_none() {
                continue;
            }
            let Some(waits) = life.hop_waits() else {
                continue;
            };
            if waits.len() > sums.len() {
                sums.resize(waits.len(), 0);
                counts.resize(waits.len(), 0);
            }
            for (s, w) in waits.iter().enumerate() {
                sums[s] += w;
                counts[s] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s as f64 / c as f64 })
            .collect()
    }

    /// Checks the span-nesting invariants every well-formed trace obeys,
    /// returning the first violation as text.
    ///
    /// For every packet: delivery implies injection; cycle stamps are
    /// monotone (generated ≤ injected < hop₀ < hop₁ < …); the delivery
    /// stamp equals the last forward stamp; a packet is not both
    /// delivered and discarded.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_well_nested(&self) -> Result<(), String> {
        for (id, life) in &self.lifecycles {
            if let (Some(g), Some(i)) = (life.generated, life.injected) {
                if g > i {
                    return Err(format!("packet {id}: generated@{g} after injected@{i}"));
                }
            }
            if let Some(injected) = life.injected {
                let mut prev = injected;
                for hop in &life.hops {
                    if hop.cycle <= prev {
                        return Err(format!(
                            "packet {id}: hop at cycle {} not after {}",
                            hop.cycle, prev
                        ));
                    }
                    prev = hop.cycle;
                }
            }
            if let Some((delivered, _)) = life.delivered {
                if life.injected.is_none() {
                    return Err(format!("packet {id}: delivered without inject"));
                }
                if life.discarded.is_some() {
                    return Err(format!("packet {id}: both delivered and discarded"));
                }
                match life.hops.last() {
                    Some(last) if last.cycle == delivered => {}
                    Some(last) => {
                        return Err(format!(
                            "packet {id}: delivered@{delivered} but last hop@{}",
                            last.cycle
                        ));
                    }
                    None => {
                        return Err(format!("packet {id}: delivered with no hops"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Event> {
        vec![
            Event::new(
                0,
                EventKind::RunMeta {
                    design: "FIFO".into(),
                    terminals: 2,
                    radix: 2,
                    stages: 1,
                    slots: 4,
                    note: "test".into(),
                },
            ),
            Event::new(
                1,
                EventKind::Generated {
                    packet: 0,
                    source: 0,
                    dest: 1,
                },
            ),
            Event::new(
                1,
                EventKind::Injected {
                    packet: 0,
                    source: 0,
                },
            ),
            Event::new(
                1,
                EventKind::CycleSample {
                    occupied: vec![1],
                    forwarded: vec![0],
                    buffer_occupancy: vec![1, 1],
                    backlog: 0,
                    hol_blocked: 0,
                },
            ),
            Event::new(
                3,
                EventKind::Forwarded {
                    packet: 0,
                    stage: 0,
                    switch: 0,
                    output: 1,
                },
            ),
            Event::new(3, EventKind::Delivered { packet: 0, sink: 1 }),
            Event::new(
                4,
                EventKind::Generated {
                    packet: 1,
                    source: 1,
                    dest: 0,
                },
            ),
            Event::new(
                4,
                EventKind::EntryDiscarded {
                    packet: 1,
                    source: 1,
                },
            ),
        ]
    }

    #[test]
    fn summary_reconstructs_lifecycles() {
        let summary = TraceSummary::from_events(&trace());
        assert_eq!(summary.generated, 2);
        assert_eq!(summary.injected, 1);
        assert_eq!(summary.delivered, 1);
        assert_eq!(summary.entry_discards, 1);
        assert_eq!(summary.meta.as_ref().unwrap().design, "FIFO");

        let life = &summary.lifecycles[&0];
        assert_eq!(life.network_latency(), Some(2));
        assert_eq!(life.total_latency(), Some(2));
        assert_eq!(life.source_wait(), Some(0));
        assert_eq!(life.hop_waits(), Some(vec![2]));

        let dropped = &summary.lifecycles[&1];
        assert_eq!(dropped.discarded, Some(4));
        assert_eq!(dropped.network_latency(), None);

        assert_eq!(summary.stage_occupancy.len(), 1);
        assert_eq!(summary.buffer_occupancy.observations(), 2);
        summary.check_well_nested().unwrap();
    }

    #[test]
    fn mean_hop_waits_sum_to_network_latency() {
        let summary = TraceSummary::from_events(&trace());
        let hops: f64 = summary.mean_hop_waits().iter().sum();
        assert!((hops - summary.mean_network_latency().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn nesting_violations_are_caught() {
        let events = vec![Event::new(5, EventKind::Delivered { packet: 7, sink: 0 })];
        let summary = TraceSummary::from_events(&events);
        assert!(summary.check_well_nested().is_err());

        let events = vec![
            Event::new(
                2,
                EventKind::Injected {
                    packet: 0,
                    source: 0,
                },
            ),
            Event::new(
                2,
                EventKind::Forwarded {
                    packet: 0,
                    stage: 0,
                    switch: 0,
                    output: 0,
                },
            ),
        ];
        let summary = TraceSummary::from_events(&events);
        assert!(
            summary.check_well_nested().is_err(),
            "hop must follow inject"
        );
    }

    #[test]
    fn discard_series_flushes_per_cycle() {
        let events = vec![
            Event::new(
                1,
                EventKind::EntryDiscarded {
                    packet: 0,
                    source: 0,
                },
            ),
            Event::new(
                1,
                EventKind::EntryDiscarded {
                    packet: 1,
                    source: 1,
                },
            ),
            Event::new(
                2,
                EventKind::EntryDiscarded {
                    packet: 2,
                    source: 0,
                },
            ),
        ];
        let summary = TraceSummary::from_events(&events);
        let bins = summary.discard_series.bins_with_pending();
        let total: f64 = bins.iter().map(|b| b.sum).sum();
        assert_eq!(total, 3.0);
        assert_eq!(summary.discard_series.samples(), 2);
    }
}
