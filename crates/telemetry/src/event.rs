//! The cycle-stamped packet-lifecycle event model and its JSONL encoding.
//!
//! Every event is one line of JSON with a fixed key order, so traces are
//! byte-deterministic for a given simulation (no floats, no timestamps).
//! The parser accepts exactly what the writer emits — a deliberately small
//! flat-object subset of JSON (string values, unsigned integers, arrays of
//! unsigned integers) — so golden-trace tests can round-trip files without
//! an external JSON dependency.

use std::fmt;

/// One telemetry record: something that happened at a network cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The network cycle the event belongs to.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event at `cycle`.
    pub fn new(cycle: u64, kind: EventKind) -> Self {
        Event { cycle, kind }
    }
}

/// The event vocabulary.
///
/// Packet-lifecycle events carry the packet's serial number so a trace can
/// be replayed into per-packet spans: every delivered packet has a
/// matching `Injected`, its `Forwarded` stamps are strictly increasing,
/// and its last `Forwarded` coincides with `Delivered` (packets cross a
/// stage boundary instantaneously once per cycle). `HolBlocked` and
/// `CycleSample` are aggregate per-cycle observations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// Start of a run: identifies the experiment the following events
    /// belong to. A trace file may hold several runs, each introduced by
    /// its own `RunMeta`.
    RunMeta {
        /// Buffer design under test (e.g. `"DAMQ"`).
        design: String,
        /// Number of terminals.
        terminals: u32,
        /// Switch radix.
        radix: u32,
        /// Number of stages.
        stages: u32,
        /// Slots per input buffer.
        slots: u32,
        /// Free-form description (traffic pattern, load, seed).
        note: String,
    },
    /// A source created a packet (it enters the source queue).
    Generated {
        /// Packet serial number.
        packet: u64,
        /// Generating terminal.
        source: u32,
        /// Destination terminal.
        dest: u32,
    },
    /// A packet left its source queue into a first-stage buffer.
    Injected {
        /// Packet serial number.
        packet: u64,
        /// Injecting terminal.
        source: u32,
    },
    /// A packet was dropped trying to enter the network (discarding
    /// protocol, first-stage buffer full).
    EntryDiscarded {
        /// Packet serial number.
        packet: u64,
        /// Terminal whose packet was dropped.
        source: u32,
    },
    /// A packet crossed the crossbar of one switch.
    Forwarded {
        /// Packet serial number.
        packet: u64,
        /// Stage of the forwarding switch.
        stage: u32,
        /// Index of the forwarding switch within its stage.
        switch: u32,
        /// Output port the packet left through.
        output: u32,
    },
    /// A packet was dropped between stages (discarding protocol,
    /// downstream buffer full).
    NetworkDiscarded {
        /// Packet serial number.
        packet: u64,
        /// Stage the packet was leaving.
        stage: u32,
        /// Switch the packet was leaving.
        switch: u32,
    },
    /// A packet reached its sink.
    Delivered {
        /// Packet serial number.
        packet: u64,
        /// Receiving terminal.
        sink: u32,
    },
    /// Head-of-line blocking observed in one switch this cycle: `blocked`
    /// resident packets sit behind a head packet routed to a different
    /// output (only FIFO buffers exhibit this).
    HolBlocked {
        /// Stage of the switch.
        stage: u32,
        /// Switch index within its stage.
        switch: u32,
        /// Packets blocked behind a foreign-output head.
        blocked: u32,
    },
    /// Fault injection permanently disabled one buffer slot.
    SlotKilled {
        /// Stage of the affected switch.
        stage: u32,
        /// Switch index within its stage.
        switch: u32,
        /// Input port whose buffer lost the slot.
        input: u32,
    },
    /// Fault injection took a link out of service for a window of cycles.
    LinkDown {
        /// Stage of the affected switch.
        stage: u32,
        /// Switch index within its stage.
        switch: u32,
        /// Input port fed by the flapping link.
        input: u32,
        /// First cycle at which the link carries traffic again.
        until: u64,
    },
    /// A packet arrived at its sink with a failed checksum (payload
    /// corrupted in flight by fault injection) and was dropped.
    CorruptDropped {
        /// Packet serial number.
        packet: u64,
        /// Terminal that rejected the delivery.
        sink: u32,
    },
    /// A packet arrived at the wrong sink (a transient misroute flipped an
    /// output decision upstream) and was dropped there.
    Misrouted {
        /// Packet serial number.
        packet: u64,
        /// Terminal the packet wrongly arrived at.
        sink: u32,
    },
    /// The recovery layer resent a parked packet over its hop (a lost or
    /// corrupted transfer timed out, or a NACK arrived).
    Retransmit {
        /// Packet serial number.
        packet: u64,
        /// Stage of the retransmitting hop (`stages` for the final
        /// switch-to-sink hop).
        stage: u32,
        /// Switch index the retransmit buffer belongs to.
        switch: u32,
        /// Resend attempt number (1 = first resend).
        attempt: u32,
        /// Link-level sequence number of the transfer.
        seq: u64,
    },
    /// The recovery layer exhausted its retries for a parked packet and
    /// dropped it.
    GaveUp {
        /// Packet serial number.
        packet: u64,
        /// Stage of the hop that gave up.
        stage: u32,
        /// Switch index the retransmit buffer belongs to.
        switch: u32,
        /// Resend attempts made before giving up.
        attempts: u32,
    },
    /// Adaptive routing deflected a packet to an alternate output queue
    /// because the primary output's link was believed down or its queue
    /// was saturated.
    Rerouted {
        /// Packet serial number.
        packet: u64,
        /// Stage of the deflecting switch.
        stage: u32,
        /// Switch index within its stage.
        switch: u32,
        /// Alternate output queue the packet was deflected into.
        output: u32,
    },
    /// A deflected packet reached the wrong sink intact and was fed back
    /// into that terminal's source queue for another traversal.
    Recirculated {
        /// Packet serial number.
        packet: u64,
        /// Terminal that recirculates the packet.
        sink: u32,
    },
    /// Per-cycle aggregate state, recorded once per cycle while the sink
    /// is enabled.
    CycleSample {
        /// Occupied slots per stage (summed over the stage's switches).
        occupied: Vec<u32>,
        /// Packets forwarded per stage this cycle (link utilisation).
        forwarded: Vec<u32>,
        /// Histogram of per-buffer occupancy: entry `k` counts input
        /// buffers currently holding exactly `k` used slots.
        buffer_occupancy: Vec<u32>,
        /// Packets waiting in source queues.
        backlog: u32,
        /// Total HOL-blocked packets across the network this cycle.
        hol_blocked: u32,
    },
}

impl EventKind {
    /// The `"type"` tag used in the JSONL encoding.
    pub fn type_tag(&self) -> &'static str {
        match self {
            EventKind::RunMeta { .. } => "run_meta",
            EventKind::Generated { .. } => "generated",
            EventKind::Injected { .. } => "injected",
            EventKind::EntryDiscarded { .. } => "entry_discarded",
            EventKind::Forwarded { .. } => "forwarded",
            EventKind::NetworkDiscarded { .. } => "network_discarded",
            EventKind::Delivered { .. } => "delivered",
            EventKind::HolBlocked { .. } => "hol_blocked",
            EventKind::SlotKilled { .. } => "slot_killed",
            EventKind::LinkDown { .. } => "link_down",
            EventKind::CorruptDropped { .. } => "corrupt_dropped",
            EventKind::Misrouted { .. } => "misrouted",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::GaveUp { .. } => "gave_up",
            EventKind::Rerouted { .. } => "rerouted",
            EventKind::Recirculated { .. } => "recirculated",
            EventKind::CycleSample { .. } => "cycle_sample",
        }
    }

    /// The packet serial this event belongs to, for lifecycle events.
    pub fn packet(&self) -> Option<u64> {
        match *self {
            EventKind::Generated { packet, .. }
            | EventKind::Injected { packet, .. }
            | EventKind::EntryDiscarded { packet, .. }
            | EventKind::Forwarded { packet, .. }
            | EventKind::NetworkDiscarded { packet, .. }
            | EventKind::Delivered { packet, .. }
            | EventKind::CorruptDropped { packet, .. }
            | EventKind::Misrouted { packet, .. }
            | EventKind::Retransmit { packet, .. }
            | EventKind::GaveUp { packet, .. }
            | EventKind::Rerouted { packet, .. }
            | EventKind::Recirculated { packet, .. } => Some(packet),
            _ => None,
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_arr_field(out: &mut String, key: &str, values: &[u32]) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

impl Event {
    /// Serializes the event as one line of JSON (no trailing newline).
    ///
    /// The encoding is deterministic: fixed key order, integers only.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"type\":\"");
        out.push_str(self.kind.type_tag());
        out.push('"');
        push_u64_field(&mut out, "cycle", self.cycle);
        match &self.kind {
            EventKind::RunMeta {
                design,
                terminals,
                radix,
                stages,
                slots,
                note,
            } => {
                push_str_field(&mut out, "design", design);
                push_u64_field(&mut out, "terminals", u64::from(*terminals));
                push_u64_field(&mut out, "radix", u64::from(*radix));
                push_u64_field(&mut out, "stages", u64::from(*stages));
                push_u64_field(&mut out, "slots", u64::from(*slots));
                push_str_field(&mut out, "note", note);
            }
            EventKind::Generated {
                packet,
                source,
                dest,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "source", u64::from(*source));
                push_u64_field(&mut out, "dest", u64::from(*dest));
            }
            EventKind::Injected { packet, source }
            | EventKind::EntryDiscarded { packet, source } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "source", u64::from(*source));
            }
            EventKind::Forwarded {
                packet,
                stage,
                switch,
                output,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "output", u64::from(*output));
            }
            EventKind::NetworkDiscarded {
                packet,
                stage,
                switch,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
            }
            EventKind::Delivered { packet, sink } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "sink", u64::from(*sink));
            }
            EventKind::HolBlocked {
                stage,
                switch,
                blocked,
            } => {
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "blocked", u64::from(*blocked));
            }
            EventKind::SlotKilled {
                stage,
                switch,
                input,
            } => {
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "input", u64::from(*input));
            }
            EventKind::LinkDown {
                stage,
                switch,
                input,
                until,
            } => {
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "input", u64::from(*input));
                push_u64_field(&mut out, "until", *until);
            }
            EventKind::CorruptDropped { packet, sink }
            | EventKind::Misrouted { packet, sink }
            | EventKind::Recirculated { packet, sink } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "sink", u64::from(*sink));
            }
            EventKind::Retransmit {
                packet,
                stage,
                switch,
                attempt,
                seq,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "attempt", u64::from(*attempt));
                push_u64_field(&mut out, "seq", *seq);
            }
            EventKind::GaveUp {
                packet,
                stage,
                switch,
                attempts,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "attempts", u64::from(*attempts));
            }
            EventKind::Rerouted {
                packet,
                stage,
                switch,
                output,
            } => {
                push_u64_field(&mut out, "packet", *packet);
                push_u64_field(&mut out, "stage", u64::from(*stage));
                push_u64_field(&mut out, "switch", u64::from(*switch));
                push_u64_field(&mut out, "output", u64::from(*output));
            }
            EventKind::CycleSample {
                occupied,
                forwarded,
                buffer_occupancy,
                backlog,
                hol_blocked,
            } => {
                push_arr_field(&mut out, "occupied", occupied);
                push_arr_field(&mut out, "forwarded", forwarded);
                push_arr_field(&mut out, "buffer_occupancy", buffer_occupancy);
                push_u64_field(&mut out, "backlog", u64::from(*backlog));
                push_u64_field(&mut out, "hol_blocked", u64::from(*hol_blocked));
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input, unknown event types or
    /// missing fields.
    pub fn parse_jsonl(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&Value, ParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ParseError::new(format!("missing field '{key}'")))
        };
        let get_u64 = |key: &str| -> Result<u64, ParseError> {
            match get(key)? {
                Value::Int(v) => Ok(*v),
                _ => Err(ParseError::new(format!("field '{key}' is not an integer"))),
            }
        };
        let get_u32 = |key: &str| -> Result<u32, ParseError> {
            u32::try_from(get_u64(key)?)
                .map_err(|_| ParseError::new(format!("field '{key}' out of u32 range")))
        };
        let get_str = |key: &str| -> Result<String, ParseError> {
            match get(key)? {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(ParseError::new(format!("field '{key}' is not a string"))),
            }
        };
        let get_arr = |key: &str| -> Result<Vec<u32>, ParseError> {
            match get(key)? {
                Value::Arr(items) => items
                    .iter()
                    .map(|&v| {
                        u32::try_from(v).map_err(|_| {
                            ParseError::new(format!("field '{key}' element out of u32 range"))
                        })
                    })
                    .collect(),
                _ => Err(ParseError::new(format!("field '{key}' is not an array"))),
            }
        };

        let cycle = get_u64("cycle")?;
        let kind = match get_str("type")?.as_str() {
            "run_meta" => EventKind::RunMeta {
                design: get_str("design")?,
                terminals: get_u32("terminals")?,
                radix: get_u32("radix")?,
                stages: get_u32("stages")?,
                slots: get_u32("slots")?,
                note: get_str("note")?,
            },
            "generated" => EventKind::Generated {
                packet: get_u64("packet")?,
                source: get_u32("source")?,
                dest: get_u32("dest")?,
            },
            "injected" => EventKind::Injected {
                packet: get_u64("packet")?,
                source: get_u32("source")?,
            },
            "entry_discarded" => EventKind::EntryDiscarded {
                packet: get_u64("packet")?,
                source: get_u32("source")?,
            },
            "forwarded" => EventKind::Forwarded {
                packet: get_u64("packet")?,
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                output: get_u32("output")?,
            },
            "network_discarded" => EventKind::NetworkDiscarded {
                packet: get_u64("packet")?,
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
            },
            "delivered" => EventKind::Delivered {
                packet: get_u64("packet")?,
                sink: get_u32("sink")?,
            },
            "hol_blocked" => EventKind::HolBlocked {
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                blocked: get_u32("blocked")?,
            },
            "slot_killed" => EventKind::SlotKilled {
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                input: get_u32("input")?,
            },
            "link_down" => EventKind::LinkDown {
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                input: get_u32("input")?,
                until: get_u64("until")?,
            },
            "corrupt_dropped" => EventKind::CorruptDropped {
                packet: get_u64("packet")?,
                sink: get_u32("sink")?,
            },
            "misrouted" => EventKind::Misrouted {
                packet: get_u64("packet")?,
                sink: get_u32("sink")?,
            },
            "retransmit" => EventKind::Retransmit {
                packet: get_u64("packet")?,
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                attempt: get_u32("attempt")?,
                seq: get_u64("seq")?,
            },
            "gave_up" => EventKind::GaveUp {
                packet: get_u64("packet")?,
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                attempts: get_u32("attempts")?,
            },
            "rerouted" => EventKind::Rerouted {
                packet: get_u64("packet")?,
                stage: get_u32("stage")?,
                switch: get_u32("switch")?,
                output: get_u32("output")?,
            },
            "recirculated" => EventKind::Recirculated {
                packet: get_u64("packet")?,
                sink: get_u32("sink")?,
            },
            "cycle_sample" => EventKind::CycleSample {
                occupied: get_arr("occupied")?,
                forwarded: get_arr("forwarded")?,
                buffer_occupancy: get_arr("buffer_occupancy")?,
                backlog: get_u32("backlog")?,
                hol_blocked: get_u32("hol_blocked")?,
            },
            other => return Err(ParseError::new(format!("unknown event type '{other}'"))),
        };
        Ok(Event { cycle, kind })
    }

    /// Parses a whole JSONL document (one event per non-empty line).
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`], annotated with its line number.
    pub fn parse_trace(text: &str) -> Result<Vec<Event>, ParseError> {
        text.lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(i, line)| {
                Event::parse_jsonl(line)
                    .map_err(|e| ParseError::new(format!("line {}: {}", i + 1, e.message)))
            })
            .collect()
    }

    /// Like [`parse_trace`](Event::parse_trace), but tolerates a **torn
    /// tail**: a malformed *final* non-empty line — the signature of a
    /// writer killed mid-append — is dropped, and its [`ParseError`] is
    /// returned alongside the well-formed prefix so callers can report
    /// the truncation. Empty input parses as an empty trace.
    ///
    /// # Errors
    ///
    /// A malformed line anywhere *before* the final one is still a hard
    /// error: that is corruption, not truncation.
    pub fn parse_trace_tolerant(
        text: &str,
    ) -> Result<(Vec<Event>, Option<ParseError>), ParseError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let mut events = Vec::with_capacity(lines.len());
        for (at, &(i, line)) in lines.iter().enumerate() {
            match Event::parse_jsonl(line) {
                Ok(event) => events.push(event),
                Err(e) => {
                    let err = ParseError::new(format!("line {}: {}", i + 1, e.message));
                    if at + 1 == lines.len() {
                        return Ok((events, Some(err)));
                    }
                    return Err(err);
                }
            }
        }
        Ok((events, None))
    }
}

/// Error from [`Event::parse_jsonl`] / [`Event::parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed flat-JSON value (the subset the writer emits).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Int(u64),
    Str(String),
    Arr(Vec<u64>),
}

/// Parses a one-level JSON object of string / unsigned-integer /
/// integer-array values into key order-preserving pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, ParseError> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err(ParseError::new("expected '{'"));
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some('"') => {}
            Some(c) => return Err(ParseError::new(format!("unexpected character '{c}'"))),
            None => return Err(ParseError::new("unterminated object")),
        }
        if chars.peek() != Some(&'"') {
            continue;
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(ParseError::new(format!("missing ':' after key '{key}'")));
        }
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some('[') => {
                chars.next();
                let mut items = Vec::new();
                loop {
                    match chars.peek() {
                        Some(']') => {
                            chars.next();
                            break;
                        }
                        Some(',') => {
                            chars.next();
                        }
                        Some(c) if c.is_ascii_digit() => items.push(parse_int(&mut chars)?),
                        _ => return Err(ParseError::new("malformed array")),
                    }
                }
                Value::Arr(items)
            }
            Some(c) if c.is_ascii_digit() => Value::Int(parse_int(&mut chars)?),
            _ => return Err(ParseError::new(format!("malformed value for key '{key}'"))),
        };
        fields.push((key, value));
    }
    Ok(fields)
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError::new("expected '\"'"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| ParseError::new("bad \\u escape"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err(ParseError::new("bad escape sequence")),
            },
            Some(c) => out.push(c),
            None => return Err(ParseError::new("unterminated string")),
        }
    }
}

fn parse_int(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u64, ParseError> {
    let mut value: u64 = 0;
    let mut any = false;
    while let Some(c) = chars.peek() {
        let Some(digit) = c.to_digit(10) else { break };
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(digit)))
            .ok_or_else(|| ParseError::new("integer overflow"))?;
        any = true;
        chars.next();
    }
    if any {
        Ok(value)
    } else {
        Err(ParseError::new("expected digits"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: Event) {
        let line = event.to_jsonl();
        let parsed = Event::parse_jsonl(&line).expect("round trip");
        assert_eq!(parsed, event, "line was: {line}");
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(Event::new(
            0,
            EventKind::RunMeta {
                design: "DAMQ".into(),
                terminals: 64,
                radix: 4,
                stages: 3,
                slots: 4,
                note: "hot-spot 10% \"quoted\"\nline".into(),
            },
        ));
        round_trip(Event::new(
            7,
            EventKind::Generated {
                packet: 42,
                source: 3,
                dest: 61,
            },
        ));
        round_trip(Event::new(
            7,
            EventKind::Injected {
                packet: 42,
                source: 3,
            },
        ));
        round_trip(Event::new(
            8,
            EventKind::EntryDiscarded {
                packet: 43,
                source: 9,
            },
        ));
        round_trip(Event::new(
            9,
            EventKind::Forwarded {
                packet: 42,
                stage: 1,
                switch: 15,
                output: 2,
            },
        ));
        round_trip(Event::new(
            9,
            EventKind::NetworkDiscarded {
                packet: 44,
                stage: 2,
                switch: 0,
            },
        ));
        round_trip(Event::new(
            11,
            EventKind::Delivered {
                packet: 42,
                sink: 61,
            },
        ));
        round_trip(Event::new(
            12,
            EventKind::HolBlocked {
                stage: 0,
                switch: 3,
                blocked: 2,
            },
        ));
        round_trip(Event::new(
            13,
            EventKind::SlotKilled {
                stage: 1,
                switch: 2,
                input: 3,
            },
        ));
        round_trip(Event::new(
            14,
            EventKind::LinkDown {
                stage: 0,
                switch: 1,
                input: 2,
                until: 40,
            },
        ));
        round_trip(Event::new(
            15,
            EventKind::CorruptDropped {
                packet: 45,
                sink: 12,
            },
        ));
        round_trip(Event::new(
            16,
            EventKind::Misrouted {
                packet: 46,
                sink: 13,
            },
        ));
        round_trip(Event::new(
            17,
            EventKind::Retransmit {
                packet: 47,
                stage: 1,
                switch: 2,
                attempt: 1,
                seq: 9,
            },
        ));
        round_trip(Event::new(
            18,
            EventKind::GaveUp {
                packet: 47,
                stage: 1,
                switch: 2,
                attempts: 3,
            },
        ));
        round_trip(Event::new(
            19,
            EventKind::Rerouted {
                packet: 48,
                stage: 0,
                switch: 3,
                output: 2,
            },
        ));
        round_trip(Event::new(
            20,
            EventKind::Recirculated {
                packet: 48,
                sink: 14,
            },
        ));
        round_trip(Event::new(
            12,
            EventKind::CycleSample {
                occupied: vec![10, 4, 0],
                forwarded: vec![3, 2, 1],
                buffer_occupancy: vec![40, 6, 2, 0, 0],
                backlog: 5,
                hol_blocked: 2,
            },
        ));
    }

    #[test]
    fn encoding_is_stable() {
        let e = Event::new(
            3,
            EventKind::Forwarded {
                packet: 5,
                stage: 0,
                switch: 1,
                output: 2,
            },
        );
        assert_eq!(
            e.to_jsonl(),
            r#"{"type":"forwarded","cycle":3,"packet":5,"stage":0,"switch":1,"output":2}"#
        );
    }

    #[test]
    fn parse_trace_skips_blank_lines_and_reports_line_numbers() {
        let text = "\n{\"type\":\"injected\",\"cycle\":1,\"packet\":0,\"source\":0}\n\n";
        let events = Event::parse_trace(text).unwrap();
        assert_eq!(events.len(), 1);
        let err = Event::parse_trace("{\"type\":\"nope\",\"cycle\":1}").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn tolerant_parse_drops_a_truncated_final_line() {
        // A writer killed mid-append leaves a torn tail: a valid prefix
        // followed by one malformed final line.
        let torn =
            "{\"type\":\"injected\",\"cycle\":1,\"packet\":0,\"source\":0}\n{\"type\":\"inje";
        let (events, tail) = Event::parse_trace_tolerant(torn).unwrap();
        assert_eq!(events.len(), 1);
        let tail = tail.expect("torn tail reported");
        assert!(tail.to_string().contains("line 2"));
    }

    #[test]
    fn tolerant_parse_still_rejects_mid_trace_corruption() {
        let corrupt = "garbage\n{\"type\":\"injected\",\"cycle\":1,\"packet\":0,\"source\":0}";
        let err = Event::parse_trace_tolerant(corrupt).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn tolerant_parse_accepts_empty_and_clean_traces() {
        let (events, tail) = Event::parse_trace_tolerant("").unwrap();
        assert!(events.is_empty());
        assert!(tail.is_none());
        let clean = "{\"type\":\"injected\",\"cycle\":1,\"packet\":0,\"source\":0}\n";
        let (events, tail) = Event::parse_trace_tolerant(clean).unwrap();
        assert_eq!(events.len(), 1);
        assert!(tail.is_none());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::parse_jsonl("not json").is_err());
        assert!(Event::parse_jsonl("{\"type\":\"injected\",\"cycle\":1}").is_err()); // missing fields
        assert!(Event::parse_jsonl("{\"type\":\"injected\",\"cycle\":-1}").is_err());
        // negative
    }

    #[test]
    fn packet_accessor_covers_lifecycle_kinds() {
        assert_eq!(
            EventKind::Delivered { packet: 9, sink: 0 }.packet(),
            Some(9)
        );
        assert_eq!(
            EventKind::HolBlocked {
                stage: 0,
                switch: 0,
                blocked: 1
            }
            .packet(),
            None
        );
    }
}
