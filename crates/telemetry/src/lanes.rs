//! Per-island event lanes with a deterministic merge.
//!
//! The sharded network simulator (`damq-net`'s parallel module) steps
//! each pipeline stage as phase-A islands feeding a serial phase-B
//! merge. Today every telemetry event is emitted *in* phase B, so trace
//! order is already serial and byte-stable. [`EventLanes`] is the
//! primitive for the other collection shape: islands record into
//! private lanes — no sharing, no locks — and the lanes merge into one
//! stream in an order that depends only on lane index and per-lane
//! arrival order, never on thread timing. The trace tools use it to
//! recombine per-island captures, and it is the documented path should
//! event emission ever move into phase A.
//!
//! Two merge orders are provided:
//!
//! * [`EventLanes::merge_into`] — **lane-major**: lane 0's events in
//!   arrival order, then lane 1's, and so on. Deterministic and cheap;
//!   right when lanes partition disjoint key ranges (e.g. one lane per
//!   island of switches) and downstream analysis sorts anyway.
//! * [`EventLanes::merge_by_key`] — **key-ordered**: a stable k-way
//!   merge by a caller-supplied key (typically the cycle stamp). Among
//!   equal keys, the lower lane wins, and within a lane arrival order
//!   is kept — the exact interleave a serial simulator visiting islands
//!   in ascending order would have produced.

use crate::TelemetrySink;

/// Per-lane event buffers that merge deterministically.
///
/// # Determinism
///
/// Merge order is a pure function of `(lane index, arrival order within
/// the lane, merge key)`. Threads may fill distinct lanes concurrently
/// and in any real-time order; the merged stream is identical to a
/// serial fill.
///
/// # Examples
///
/// ```
/// use damq_telemetry::EventLanes;
///
/// let mut lanes: EventLanes<(u64, &str)> = EventLanes::new(2);
/// lanes.record(1, (1, "b"));
/// lanes.record(0, (1, "a"));
/// lanes.record(0, (2, "c"));
/// // Key-ordered: ties resolve to the lower lane.
/// let merged = lanes.merge_by_key(|e| e.0);
/// assert_eq!(merged, vec![(1, "a"), (1, "b"), (2, "c")]);
/// ```
#[derive(Debug, Clone)]
pub struct EventLanes<E> {
    lanes: Vec<Vec<E>>,
}

impl<E> EventLanes<E> {
    /// Creates `lanes` empty lanes (at least one).
    pub fn new(lanes: usize) -> Self {
        EventLanes {
            lanes: (0..lanes.max(1)).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records `event` into `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn record(&mut self, lane: usize, event: E) {
        self.lanes[lane].push(event);
    }

    /// The events lane `lane` holds, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane(&self, lane: usize) -> &[E] {
        &self.lanes[lane]
    }

    /// Total events buffered across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }

    /// Empties every lane, keeping their capacity for the next phase.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Drains every lane into `sink`, lane-major: all of lane 0 in
    /// arrival order, then lane 1, and so on. Lanes keep their capacity.
    pub fn merge_into<S: TelemetrySink<E>>(&mut self, sink: &mut S) {
        for lane in &mut self.lanes {
            for event in lane.drain(..) {
                sink.record(event);
            }
        }
    }

    /// Drains every lane into one stream ordered by `key` — a stable
    /// k-way merge. Among events with equal keys, the lower lane comes
    /// first; within a lane, arrival order is kept. With per-lane keys
    /// already non-decreasing (cycle stamps are), the result is the
    /// serial ascending-island visit order.
    pub fn merge_by_key<K: Ord, F: Fn(&E) -> K>(&mut self, key: F) -> Vec<E> {
        let total = self.len();
        let mut out = Vec::with_capacity(total);
        let mut iters: Vec<_> = self
            .lanes
            .iter_mut()
            .map(|l| l.drain(..).peekable())
            .collect();
        for _ in 0..total {
            let mut best: Option<(usize, K)> = None;
            for (lane, iter) in iters.iter_mut().enumerate() {
                if let Some(event) = iter.peek() {
                    let k = key(event);
                    // Strict `<` keeps ties on the earliest (lowest) lane.
                    if best.as_ref().is_none_or(|(_, bk)| k < *bk) {
                        best = Some((lane, k));
                    }
                }
            }
            let (lane, _) = best.expect("`total` events remain across lanes");
            out.push(iters[lane].next().expect("peek saw an event"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn lane_major_merge_preserves_lane_then_arrival_order() {
        let mut lanes: EventLanes<u32> = EventLanes::new(3);
        lanes.record(1, 10);
        lanes.record(0, 1);
        lanes.record(2, 20);
        lanes.record(0, 2);
        assert_eq!(lanes.len(), 4);
        let mut sink = MemorySink::new();
        lanes.merge_into(&mut sink);
        assert_eq!(sink.events(), &[1, 2, 10, 20]);
        assert!(lanes.is_empty());
        assert_eq!(lanes.lanes(), 3);
    }

    #[test]
    fn key_merge_is_stable_across_lanes_and_within_a_lane() {
        let mut lanes: EventLanes<(u64, char)> = EventLanes::new(3);
        // Same cycle from every lane: lower lane must win the tie.
        lanes.record(2, (5, 'z'));
        lanes.record(0, (5, 'a'));
        lanes.record(1, (5, 'm'));
        // Within lane 0, arrival order must hold for equal keys.
        lanes.record(0, (5, 'b'));
        lanes.record(1, (7, 'n'));
        lanes.record(0, (6, 'c'));
        let merged = lanes.merge_by_key(|e| e.0);
        assert_eq!(
            merged,
            vec![(5, 'a'), (5, 'b'), (5, 'm'), (5, 'z'), (6, 'c'), (7, 'n')]
        );
        assert!(lanes.is_empty());
    }

    #[test]
    fn key_merge_matches_a_serial_ascending_island_sweep() {
        // Simulate three islands recording cycle-stamped events over a
        // few phases, then check the merge equals the serial visit order:
        // for each cycle, island 0's events, then island 1's, island 2's.
        let mut lanes: EventLanes<(u64, usize, u32)> = EventLanes::new(3);
        let mut serial = Vec::new();
        for cycle in 0..4u64 {
            for island in 0..3usize {
                for ev in 0..(island as u32 + 1) {
                    serial.push((cycle, island, ev));
                }
            }
        }
        // Fill lanes in a scrambled island order — real threads race.
        for &(cycle, island, ev) in serial.iter().rev() {
            let _ = (cycle, island, ev);
        }
        for island in [2usize, 0, 1] {
            for &(cycle, isl, ev) in serial.iter().filter(|e| e.1 == island) {
                lanes.record(isl, (cycle, isl, ev));
            }
        }
        let merged = lanes.merge_by_key(|e| e.0);
        assert_eq!(merged, serial);
    }

    #[test]
    fn lanes_are_reusable_after_clear_and_merge() {
        let mut lanes: EventLanes<u32> = EventLanes::new(2);
        lanes.record(0, 1);
        lanes.clear();
        assert!(lanes.is_empty());
        lanes.record(1, 2);
        let merged = lanes.merge_by_key(|&e| e);
        assert_eq!(merged, vec![2]);
        // And again after a draining merge.
        lanes.record(0, 3);
        let mut sink = MemorySink::new();
        lanes.merge_into(&mut sink);
        assert_eq!(sink.events(), &[3]);
    }

    #[test]
    fn zero_lane_request_still_yields_one_lane() {
        let lanes: EventLanes<u32> = EventLanes::new(0);
        assert_eq!(lanes.lanes(), 1);
        assert!(lanes.lane(0).is_empty());
    }
}
