//! Unified telemetry layer for the DAMQ reproduction.
//!
//! The simulators in this workspace historically reported *end-of-run
//! scalars* — counters in [`BufferStats`](../damq_core/struct.BufferStats.html),
//! one latency accumulator per run. The paper's central claims, however,
//! are **dynamic**: DAMQ beats the statically-partitioned designs because
//! queue occupancy shifts across outputs *over time*, and hot-spot traffic
//! saturates trees of switches stage by stage. This crate provides the
//! instrumentation to observe those dynamics:
//!
//! * [`TelemetrySink`] — a generic, zero-overhead-when-disabled event sink.
//!   Simulators are generic over the sink type; with the default
//!   [`NullSink`] every `record` call is a no-op the optimiser removes, so
//!   uninstrumented runs pay nothing.
//! * [`Event`] — a cycle-stamped packet-lifecycle event model
//!   (generate → inject → forward-per-stage → deliver, plus discards and
//!   head-of-line blocking) with a deterministic JSONL encoding and a
//!   matching parser, so one trace file yields per-hop latency breakdowns.
//! * [`Downsampler`] / [`OccupancyHistogram`] — bounded-memory per-cycle
//!   time-series collectors. A million-cycle run folds into a fixed number
//!   of bins by repeatedly halving resolution.
//! * [`TraceSummary`] — replays a trace into lifecycles, occupancy series,
//!   HOL-blocking and discard timelines; the `trace_report` harness renders
//!   these as a text dashboard.
//! * [`Profiler`] — named-phase wall-clock accumulation for the sweep
//!   engine's JSON `telemetry` section.
//! * [`EventLanes`] — per-island event buffers for the sharded simulator,
//!   merging into one stream in a thread-timing-independent order.
//! * [`MetricsRegistry`] / [`LogHistogram`] — named cycle-domain counters
//!   and bounded log-scale histograms with p50/p99/p999 readout and a
//!   byte-deterministic JSON snapshot; free when disabled.
//! * [`FlightRecorder`] / [`SharedRecorder`] — a bounded ring of recent
//!   events that survives a cell's panic, dumped as a crash sidecar by
//!   the sweep harness.
//!
//! See `docs/OBSERVABILITY.md` for the event model, the JSONL schema and
//! worked examples.
//!
//! # Examples
//!
//! Record a tiny lifecycle into a memory sink and summarise it:
//!
//! ```
//! use damq_telemetry::{Event, EventKind, MemorySink, TelemetrySink, TraceSummary};
//!
//! let mut sink = MemorySink::new();
//! sink.record(Event::new(1, EventKind::Generated { packet: 0, source: 2, dest: 1 }));
//! sink.record(Event::new(1, EventKind::Injected { packet: 0, source: 2 }));
//! sink.record(Event::new(2, EventKind::Forwarded { packet: 0, stage: 0, switch: 1, output: 0 }));
//! sink.record(Event::new(2, EventKind::Delivered { packet: 0, sink: 1 }));
//!
//! let summary = TraceSummary::from_events(sink.events());
//! let life = &summary.lifecycles[&0];
//! assert_eq!(life.network_latency(), Some(1));
//! assert_eq!(life.hop_waits(), Some(vec![1]));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod collect;
mod event;
mod lanes;
mod profile;
mod recorder;
mod registry;
mod series;
mod sink;

pub use collect::{Hop, Lifecycle, TraceSummary};
pub use event::{Event, EventKind, ParseError};
pub use lanes::EventLanes;
pub use profile::Profiler;
pub use recorder::{FlightRecorder, SharedRecorder};
pub use registry::{CounterId, HistogramId, LogHistogram, MetricsRegistry};
pub use series::{sparkline, Bin, Downsampler, OccupancyHistogram};
pub use sink::{CountingSink, JsonlRecord, JsonlSink, MemorySink, NullSink, TelemetrySink};
