//! Wall-clock profiling for the sweep engine.
//!
//! [`Profiler`] accumulates elapsed time under named phases so a sweep
//! can report where its wall-clock went (simulation vs aggregation vs
//! report writing) in the JSON `telemetry` section.

// lint: allow — the profiler measures the *harness's* wall-clock (sweep
// phases), never simulation state; cycle time in the simulators is the
// logical `cycle` counter, not `Instant`.
use std::time::{Duration, Instant};

/// Accumulates wall-clock time under named phases.
///
/// Phases are identified by `&'static str` and accumulate across
/// repeated visits; insertion order is preserved for reporting.
///
/// ```
/// use damq_telemetry::Profiler;
///
/// let mut prof = Profiler::new();
/// {
///     let _guard = prof.phase("simulate");
///     // ... work ...
/// }
/// prof.add("aggregate", std::time::Duration::from_millis(2));
/// assert_eq!(prof.phases().len(), 2);
/// assert!(prof.total().as_nanos() > 0);
/// ```
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Vec<(&'static str, Duration)>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Starts timing `name`; the elapsed time is added when the returned
    /// guard drops.
    pub fn phase(&mut self, name: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            profiler: self,
            name,
            // lint: allow — harness wall-clock, never simulation state.
            start: Instant::now(),
        }
    }

    /// Adds `elapsed` to phase `name` directly (for durations measured
    /// elsewhere, e.g. per-worker timings).
    pub fn add(&mut self, name: &'static str, elapsed: Duration) {
        if let Some((_, total)) = self.phases.iter_mut().find(|(n, _)| *n == name) {
            *total += elapsed;
        } else {
            self.phases.push((name, elapsed));
        }
    }

    /// Accumulated `(phase, duration)` pairs in first-seen order.
    pub fn phases(&self) -> &[(&'static str, Duration)] {
        &self.phases
    }

    /// Accumulated time for `name`, if the phase was ever recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

/// Drop guard returned by [`Profiler::phase`].
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    profiler: &'a mut Profiler,
    name: &'static str,
    // lint: allow — harness wall-clock, never simulation state.
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.profiler.add(self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut prof = Profiler::new();
        prof.add("b", Duration::from_millis(1));
        prof.add("a", Duration::from_millis(2));
        prof.add("b", Duration::from_millis(3));
        let names: Vec<&str> = prof.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(prof.get("b"), Some(Duration::from_millis(4)));
        assert_eq!(prof.get("missing"), None);
        assert_eq!(prof.total(), Duration::from_millis(6));
    }

    #[test]
    fn guard_records_on_drop() {
        let mut prof = Profiler::new();
        {
            let _guard = prof.phase("work");
            std::hint::black_box(0_u64);
        }
        assert!(prof.get("work").is_some());
    }
}
