//! Crash flight recorder: a bounded ring of the most recent telemetry
//! events, shareable across a panic boundary.
//!
//! Long sweeps isolate failing cells (`sweep::run_isolated`), but a
//! "panicked" verdict alone is a poor post-mortem: the trace that led up
//! to the crash is gone with the unwound stack. [`FlightRecorder`] keeps
//! the last `capacity` events of a run in O(capacity) memory, and
//! [`SharedRecorder`] wraps it in an `Arc<Mutex<…>>` so the sweep
//! harness can hold a handle *outside* the `catch_unwind` boundary while
//! the simulation records through its own clone inside. When a cell
//! panics, trips its watchdog, or exhausts its retries, the harness
//! drains the surviving ring into a JSONL sidecar — the crash dump.
//!
//! Recording is ordinary sink traffic (the recorder implements
//! [`TelemetrySink`]), so the ring's contents are exactly the tail of
//! the deterministic event stream: same bytes a full trace would have
//! ended with.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::sink::{JsonlRecord, TelemetrySink};

/// A fixed-capacity ring of the most recent events.
///
/// ```
/// use damq_telemetry::{Event, EventKind, FlightRecorder, TelemetrySink};
///
/// let mut rec = FlightRecorder::new(2);
/// for cycle in 1..=5 {
///     rec.record(Event::new(cycle, EventKind::Injected { packet: cycle, source: 0 }));
/// }
/// assert_eq!(rec.len(), 2);
/// assert_eq!(rec.seen(), 5);
/// let cycles: Vec<u64> = rec.events().map(|e| e.cycle).collect();
/// assert_eq!(cycles, vec![4, 5]); // oldest evicted first
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder<E> {
    capacity: usize,
    events: VecDeque<E>,
    seen: u64,
}

impl<E> FlightRecorder<E> {
    /// Creates a recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, evicted ones included.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &E> {
        self.events.iter()
    }

    /// Pushes one event, evicting the oldest when full.
    fn push(&mut self, event: E) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.seen += 1;
    }

    /// Discards all retained events (the `seen` total is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<E: JsonlRecord> FlightRecorder<E> {
    /// Renders the retained events as JSONL, oldest first, one line per
    /// event with trailing newlines — the crash-dump payload.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

impl<E> TelemetrySink<E> for FlightRecorder<E> {
    fn record(&mut self, event: E) {
        self.push(event);
    }
}

/// A clonable, panic-safe handle to a [`FlightRecorder`].
///
/// One clone is attached to the simulation as its sink; the sweep
/// harness keeps another outside the `catch_unwind` boundary. If the
/// cell panics, the harness's handle still reads the ring — a panic
/// while the interior mutex was held cannot occur mid-`record` in a
/// way that loses the ring (lock poisoning is ignored by design: a
/// poisoned ring still holds every completed `push`).
#[derive(Debug)]
pub struct SharedRecorder<E> {
    inner: Arc<Mutex<FlightRecorder<E>>>,
}

impl<E> Clone for SharedRecorder<E> {
    fn clone(&self) -> Self {
        SharedRecorder {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E> SharedRecorder<E> {
    /// Creates a shared recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        SharedRecorder {
            inner: Arc::new(Mutex::new(FlightRecorder::new(capacity))),
        }
    }

    /// Runs `f` over the locked recorder, poisoned or not.
    fn with<R>(&self, f: impl FnOnce(&mut FlightRecorder<E>) -> R) -> R {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.with(|r| r.len())
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.with(|r| r.is_empty())
    }

    /// Total events ever recorded.
    pub fn seen(&self) -> u64 {
        self.with(|r| r.seen())
    }

    /// Discards all retained events.
    pub fn clear(&self) {
        self.with(FlightRecorder::clear);
    }
}

impl<E: JsonlRecord> SharedRecorder<E> {
    /// Renders the retained events as JSONL, oldest first.
    pub fn dump_jsonl(&self) -> String {
        self.with(|r| r.dump_jsonl())
    }
}

impl<E> TelemetrySink<E> for SharedRecorder<E> {
    fn record(&mut self, event: E) {
        self.with(|r| r.push(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    fn sample(cycle: u64) -> Event {
        Event::new(
            cycle,
            EventKind::Injected {
                packet: cycle,
                source: 0,
            },
        )
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut rec = FlightRecorder::new(3);
        for c in 1..=7 {
            rec.record(sample(c));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.seen(), 7);
        let cycles: Vec<u64> = rec.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 6, 7]);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.seen(), 7, "seen survives clear");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rec = FlightRecorder::new(0);
        rec.record(sample(1));
        rec.record(sample(2));
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events().next().unwrap().cycle, 2);
    }

    #[test]
    fn dump_is_parseable_jsonl_tail() {
        let mut rec = FlightRecorder::new(2);
        for c in 1..=4 {
            rec.record(sample(c));
        }
        let dump = rec.dump_jsonl();
        let parsed = Event::parse_trace(&dump).expect("dump parses");
        assert_eq!(parsed, vec![sample(3), sample(4)]);
    }

    #[test]
    fn shared_clone_survives_a_panicking_holder() {
        let outside: SharedRecorder<Event> = SharedRecorder::new(8);
        let inside = outside.clone();
        let result = std::panic::catch_unwind(move || {
            let mut sink = inside;
            sink.record(sample(1));
            sink.record(sample(2));
            panic!("cell crashed");
        });
        assert!(result.is_err());
        assert_eq!(outside.len(), 2);
        assert_eq!(outside.seen(), 2);
        let parsed = Event::parse_trace(&outside.dump_jsonl()).expect("dump parses");
        assert_eq!(parsed.len(), 2);
        outside.clear();
        assert!(outside.is_empty());
    }
}
