//! Always-on metrics registry: named cycle-domain counters and bounded
//! log-scale histograms with a deterministic JSON snapshot.
//!
//! The paper's evaluation is aggregate (saturation throughput, mean
//! latency), but the ROADMAP's capacity-tool north star needs what a
//! datacenter operator watches: latency *percentiles* and occupancy
//! *distributions*, continuously, with near-zero cost when nobody is
//! looking. [`MetricsRegistry`] provides that layer:
//!
//! * metrics are registered once by `&'static str` name and updated
//!   through copy-size integer handles ([`CounterId`], [`HistogramId`]),
//!   so the per-event cost is one branch and one array index;
//! * a **disabled** registry (the default for `NetworkSim`) turns every
//!   update into a single predictable branch — the
//!   `no_op_registry_overhead` bench asserts the disabled path is
//!   indistinguishable from the uninstrumented simulator;
//! * [`LogHistogram`] buckets values on a bounded log scale (exact below
//!   8, then 8 sub-buckets per octave, ≤ 12.5% relative error, 496
//!   buckets total regardless of range), so p50/p99/p999 readout is O(1)
//!   memory over million-cycle runs;
//! * [`MetricsRegistry::snapshot_json`] serialises everything — counter
//!   values, histogram counts and percentiles — as integers in
//!   registration order, so a snapshot is byte-deterministic and the
//!   serial-vs-N-thread equivalence suite can compare snapshots
//!   literally.
//!
//! All values live in the simulation domain (cycles, packets, slots);
//! wall-clock never enters this module. Every registered name must
//! appear in the metrics reference table of `docs/OBSERVABILITY.md` —
//! `cargo xtask lint` (lint 10) enforces that.

/// Handle to a registered counter; cheap to copy, valid only for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram; cheap to copy, valid only for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Sub-bucket resolution: 2³ = 8 sub-buckets per octave, bounding the
/// relative quantisation error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count: values 0..8 exact, then 8 sub-buckets for each
/// of the 61 remaining octaves of a `u64`.
const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// A bounded log-scale histogram over `u64` samples (latencies in
/// cycles, occupancies in slots).
///
/// Values below 8 get exact buckets; larger values share 8 sub-buckets
/// per power of two, so any `u64` lands in one of 496 buckets and a
/// percentile query walks at most that many. Percentiles report the
/// *upper bound* of the holding bucket — a deterministic, integral
/// over-estimate within 12.5% of the true value.
///
/// ```
/// use damq_telemetry::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=100u64 {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.max(), 100);
/// assert_eq!(h.percentile(0.5), 51);   // true p50 = 50, bucket bound 51
/// assert!(h.p99() >= 99 && h.p99() <= 103);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index holding `value`.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_COUNT as u64 {
            value as usize
        } else {
            let octave = 63 - value.leading_zeros();
            let sub = ((value >> (octave - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
            SUB_COUNT + ((octave - SUB_BITS) as usize) * SUB_COUNT + sub
        }
    }

    /// The largest value that maps to bucket `index` — what percentile
    /// queries report.
    fn bucket_high(index: usize) -> u64 {
        if index < SUB_COUNT {
            index as u64
        } else {
            let group = ((index - SUB_COUNT) / SUB_COUNT) as u32;
            let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
            ((SUB_COUNT as u64 + sub) << group) + ((1u64 << group) - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the smallest
    /// bucket whose cumulative count reaches `ceil(q · count)`.
    /// Returns 0 for an empty histogram; `q` outside `[0, 1]` clamps.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                // Never report beyond the observed maximum.
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`percentile`](LogHistogram::percentile)).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

/// A set of named counters and log-scale histograms with a
/// byte-deterministic JSON snapshot.
///
/// Register every metric up front (typically in a constructor), keep
/// the returned handles, and update through them on the hot path. When
/// the registry is disabled — the default for `NetworkSim` — updates
/// cost one branch.
///
/// ```
/// use damq_telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let delivered = reg.counter("net.delivered");
/// let latency = reg.histogram("net.latency_cycles");
/// reg.add(delivered, 2);
/// reg.observe(latency, 17);
/// assert_eq!(reg.counter_value("net.delivered"), Some(2));
/// assert!(reg.snapshot_json().contains("\"net.delivered\":2"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, LogHistogram)>,
}

impl MetricsRegistry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Creates a disabled registry: metrics can be registered (handles
    /// stay valid) but updates are no-ops until
    /// [`set_enabled`](MetricsRegistry::set_enabled).
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            ..MetricsRegistry::new()
        }
    }

    /// Whether updates are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off; registered metrics and their values
    /// are retained either way.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers a counter under `name` (a JSON-safe static string;
    /// snapshot order is registration order).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        debug_assert!(
            self.counters.iter().all(|(n, _)| *n != name),
            "duplicate counter {name}"
        );
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a histogram under `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        debug_assert!(
            self.histograms.iter().all(|(n, _)| *n != name),
            "duplicate histogram {name}"
        );
        self.histograms.push((name, LogHistogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a counter (no-op while disabled).
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].1 += n;
        }
    }

    /// Records one histogram sample (no-op while disabled).
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if self.enabled {
            self.histograms[id.0].1.observe(value);
        }
    }

    /// Registered counter names in registration order.
    pub fn counter_names(&self) -> Vec<&'static str> {
        self.counters.iter().map(|(n, _)| *n).collect()
    }

    /// Registered histogram names in registration order.
    pub fn histogram_names(&self) -> Vec<&'static str> {
        self.histograms.iter().map(|(n, _)| *n).collect()
    }

    /// Current value of the counter named `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram_named(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// One deterministic JSON object: counters then histograms, keys in
    /// registration order, every value an integer. Two runs that
    /// recorded the same simulation-domain values produce identical
    /// bytes — the property `parallel_equivalence.rs` pins across
    /// thread counts.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                hist.count(),
                hist.sum(),
                hist.max(),
                hist.p50(),
                hist.p99(),
                hist.p999()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bound_roundtrip() {
        // Every sample value must land in a bucket whose bounds contain
        // it, and bucket upper bounds must be monotone.
        let probes: Vec<u64> = (0..=300)
            .chain([1_000, 4_095, 4_096, 65_535, 1 << 40, u64::MAX / 3, u64::MAX])
            .collect();
        for &v in &probes {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let high = LogHistogram::bucket_high(idx);
            assert!(high >= v, "bucket high {high} below value {v}");
            if idx > 0 {
                assert!(
                    LogHistogram::bucket_high(idx - 1) < v,
                    "value {v} fits the previous bucket too"
                );
            }
        }
        for idx in 1..BUCKETS {
            assert!(LogHistogram::bucket_high(idx) > LogHistogram::bucket_high(idx - 1));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8u64 {
            h.observe(v);
        }
        for q in [0.125, 0.25, 0.5, 0.75, 1.0] {
            let p = h.percentile(q);
            assert_eq!(p, (q * 8.0).ceil() as u64 - 1, "exact below 8 at q={q}");
        }
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 10_000);
        for (q, truth) in [(0.5, 5_000u64), (0.99, 9_900), (0.999, 9_990)] {
            let est = h.percentile(q);
            assert!(est >= truth, "estimate below truth at q={q}");
            assert!(
                est as f64 <= truth as f64 * 1.125 + 1.0,
                "q={q}: {est} exceeds 12.5% above {truth}"
            );
        }
        assert_eq!(h.percentile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_never_exceeds_observed_max() {
        let mut h = LogHistogram::new();
        h.observe(1_000); // bucket high is above 1_000
        assert_eq!(h.percentile(1.0), 1_000);
        assert_eq!(h.p50(), 1_000);
    }

    #[test]
    fn disabled_registry_drops_updates_enabled_records() {
        let mut reg = MetricsRegistry::disabled();
        let c = reg.counter("test.counter");
        let h = reg.histogram("test.histogram");
        reg.add(c, 5);
        reg.observe(h, 9);
        assert!(!reg.enabled());
        assert_eq!(reg.counter_value("test.counter"), Some(0));
        assert_eq!(reg.histogram_named("test.histogram").unwrap().count(), 0);

        reg.set_enabled(true);
        reg.add(c, 5);
        reg.observe(h, 9);
        assert_eq!(reg.counter_value("test.counter"), Some(5));
        assert_eq!(reg.histogram_named("test.histogram").unwrap().count(), 1);
        assert_eq!(reg.histogram_named("test.histogram").unwrap().p50(), 9);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let b = reg.counter("test.b");
            let a = reg.counter("test.a");
            let h = reg.histogram("test.h");
            reg.add(b, 2);
            reg.add(a, 1);
            for v in [3u64, 1, 4, 1, 5] {
                reg.observe(h, v);
            }
            reg
        };
        let snap = build().snapshot_json();
        assert_eq!(snap, build().snapshot_json(), "same inputs, same bytes");
        // Registration order, not alphabetical.
        let b_at = snap.find("test.b").unwrap();
        let a_at = snap.find("test.a").unwrap();
        assert!(b_at < a_at);
        assert!(snap.contains("\"test.h\":{\"count\":5,\"sum\":14,\"max\":5"));
    }

    #[test]
    fn unknown_names_are_none() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter_value("nope"), None);
        assert!(reg.histogram_named("nope").is_none());
    }
}
