//! Bounded-memory per-cycle time-series collectors.
//!
//! A simulation may run for millions of cycles; storing one sample per
//! cycle is out of the question for routine sweeps. [`Downsampler`]
//! keeps a fixed number of bins: when the bin budget is exhausted it
//! merges adjacent bin pairs and doubles its stride, halving time
//! resolution while preserving per-bin sum/min/max/count exactly. Memory
//! is O(`max_bins`) regardless of run length.

/// Aggregate of the samples that fell into one time bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Sum of samples in the bin.
    pub sum: f64,
    /// Smallest sample in the bin.
    pub min: f64,
    /// Largest sample in the bin.
    pub max: f64,
    /// Number of samples in the bin.
    pub count: u64,
}

impl Bin {
    fn single(value: f64) -> Self {
        Bin {
            sum: value,
            min: value,
            max: value,
            count: 1,
        }
    }

    fn absorb(&mut self, other: &Bin) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Mean of the samples in the bin.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A fixed-memory time series: one sample in, at most `max_bins` bins out.
///
/// Feed it one value per cycle with [`record`](Downsampler::record).
/// Resolution starts at one cycle per bin and halves (stride doubles)
/// each time the series fills up.
///
/// ```
/// use damq_telemetry::Downsampler;
///
/// let mut d = Downsampler::new(4);
/// for cycle in 0..16 {
///     d.record(cycle as f64);
/// }
/// assert_eq!(d.stride(), 4);            // 16 samples / 4 bins
/// assert_eq!(d.bins().len(), 4);
/// assert_eq!(d.bins()[0].min, 0.0);
/// assert_eq!(d.bins()[0].max, 3.0);
/// assert_eq!(d.samples(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Downsampler {
    max_bins: usize,
    stride: u64,
    bins: Vec<Bin>,
    /// Partially-filled trailing bin, completed after `stride` samples.
    pending: Option<Bin>,
    pending_count: u64,
    samples: u64,
}

impl Downsampler {
    /// Creates a series holding at most `max_bins` bins (minimum 2,
    /// rounded down to an even number so pair-merging is exact).
    pub fn new(max_bins: usize) -> Self {
        let max_bins = (max_bins.max(2)) & !1;
        Downsampler {
            max_bins,
            stride: 1,
            bins: Vec::new(),
            pending: None,
            pending_count: 0,
            samples: 0,
        }
    }

    /// Appends the next cycle's sample.
    pub fn record(&mut self, value: f64) {
        self.samples += 1;
        match &mut self.pending {
            Some(bin) => bin.absorb(&Bin::single(value)),
            None => self.pending = Some(Bin::single(value)),
        }
        self.pending_count += 1;
        if self.pending_count < self.stride {
            return;
        }
        if self.bins.len() == self.max_bins {
            // No room for the completed bin: halve resolution instead and
            // let the pending bin keep filling to the doubled stride.
            self.halve_resolution();
            return;
        }
        let bin = self.pending.take().expect("pending bin exists");
        self.pending_count = 0;
        self.bins.push(bin);
    }

    /// Merges adjacent bin pairs and doubles the stride.
    fn halve_resolution(&mut self) {
        let mut merged = Vec::with_capacity(self.bins.len() / 2 + 1);
        for pair in self.bins.chunks(2) {
            let mut bin = pair[0];
            if let Some(second) = pair.get(1) {
                bin.absorb(second);
            }
            merged.push(bin);
        }
        self.bins = merged;
        self.stride *= 2;
    }

    /// Completed bins, oldest first. The in-progress trailing bin is not
    /// included; see [`bins_with_pending`](Downsampler::bins_with_pending).
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Completed bins plus the partial trailing bin, if any.
    pub fn bins_with_pending(&self) -> Vec<Bin> {
        let mut out = self.bins.clone();
        if let Some(bin) = self.pending {
            out.push(bin);
        }
        out
    }

    /// Cycles per completed bin.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Per-bin means (including the partial trailing bin), for plotting.
    pub fn means(&self) -> Vec<f64> {
        self.bins_with_pending().iter().map(Bin::mean).collect()
    }

    /// Per-bin maxima (including the partial trailing bin).
    pub fn maxes(&self) -> Vec<f64> {
        self.bins_with_pending().iter().map(|b| b.max).collect()
    }

    /// Largest sample ever recorded, or 0.0 when empty.
    pub fn peak(&self) -> f64 {
        self.bins_with_pending()
            .iter()
            .map(|b| b.max)
            .fold(0.0, f64::max)
    }
}

/// Histogram of an occupancy-like quantity observed once per cycle.
///
/// Level `k` counts the cycles (or buffer-cycles) during which the
/// observed value was exactly `k` — e.g. how often a buffer held 0, 1,
/// … `capacity` slots. Levels grow on demand.
#[derive(Debug, Clone, Default)]
pub struct OccupancyHistogram {
    counts: Vec<u64>,
    observations: u64,
}

impl OccupancyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        OccupancyHistogram::default()
    }

    /// Records one observation of occupancy `level`.
    pub fn observe(&mut self, level: usize) {
        if level >= self.counts.len() {
            self.counts.resize(level + 1, 0);
        }
        self.counts[level] += 1;
        self.observations += 1;
    }

    /// Records `n` simultaneous observations of occupancy `level`
    /// (e.g. "40 buffers currently hold 0 slots").
    pub fn observe_many(&mut self, level: usize, n: u64) {
        if n == 0 {
            return;
        }
        if level >= self.counts.len() {
            self.counts.resize(level + 1, 0);
        }
        self.counts[level] += n;
        self.observations += n;
    }

    /// Observation counts indexed by level.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Fraction of observations at or above `level` (0.0 when empty).
    pub fn fraction_at_or_above(&self, level: usize) -> f64 {
        if self.observations == 0 {
            return 0.0;
        }
        let above: u64 = self.counts.iter().skip(level).sum();
        above as f64 / self.observations as f64
    }

    /// Mean observed level (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.observations == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(level, &n)| level as f64 * n as f64)
            .sum();
        weighted / self.observations as f64
    }
}

/// Block characters from one-eighth to full, for terminal sparklines.
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline, scaled to the series' own
/// maximum. Zero and empty series render as flat baselines.
///
/// ```
/// use damq_telemetry::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0, 2.0, 4.0]), "▁▂▄█");
/// assert_eq!(sparkline(&[]), "");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((v / max) * 8.0).ceil() as usize;
                SPARK_LEVELS[idx.clamp(1, 8) - 1]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsampler_preserves_sum_and_extremes() {
        let mut d = Downsampler::new(8);
        let n = 10_000_u64;
        for i in 0..n {
            d.record(i as f64);
        }
        assert!(d.bins_with_pending().len() <= 9);
        assert_eq!(d.samples(), n);
        let total: f64 = d.bins_with_pending().iter().map(|b| b.sum).sum();
        assert_eq!(total, (n * (n - 1) / 2) as f64);
        let count: u64 = d.bins_with_pending().iter().map(|b| b.count).sum();
        assert_eq!(count, n);
        assert_eq!(d.peak(), (n - 1) as f64);
        assert_eq!(d.bins()[0].min, 0.0);
    }

    #[test]
    fn downsampler_stride_doubles() {
        let mut d = Downsampler::new(4);
        for _ in 0..4 {
            d.record(1.0);
        }
        assert_eq!(d.stride(), 1);
        assert_eq!(d.bins().len(), 4);
        for _ in 0..12 {
            d.record(1.0);
        }
        assert_eq!(d.stride(), 4);
        assert_eq!(d.bins().len(), 4);
    }

    #[test]
    fn downsampler_series_shorter_than_bucket_width() {
        // No samples at all: every readout is a well-defined empty.
        let empty = Downsampler::new(8);
        assert_eq!(empty.samples(), 0);
        assert!(empty.bins().is_empty());
        assert!(empty.bins_with_pending().is_empty());
        assert!(empty.means().is_empty());
        assert_eq!(empty.peak(), 0.0);

        // Force the stride to 2, then stop with one trailing sample —
        // a tail shorter than the bucket width. It must survive in the
        // pending bin, not vanish and not complete a bin early.
        let mut d = Downsampler::new(2);
        d.record(1.0);
        d.record(2.0);
        d.record(5.0); // triggers halve_resolution: stride 1 → 2
        assert_eq!(d.stride(), 2);
        assert_eq!(d.bins().len(), 1, "the tail bin is incomplete");
        let with_pending = d.bins_with_pending();
        assert_eq!(with_pending.len(), 2);
        assert_eq!(with_pending[1].count, 1);
        assert_eq!(with_pending[1].sum, 5.0);
        let total: f64 = with_pending.iter().map(|b| b.sum).sum();
        assert_eq!(total, 8.0, "no sample lost to the short tail");
        assert_eq!(d.samples(), 3);
        assert_eq!(d.peak(), 5.0);
    }

    #[test]
    fn downsampler_minimum_bins_is_even() {
        let d = Downsampler::new(0);
        assert_eq!(d.max_bins, 2);
        let d = Downsampler::new(7);
        assert_eq!(d.max_bins, 6);
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = OccupancyHistogram::new();
        h.observe_many(0, 3);
        h.observe(2);
        h.observe(2);
        h.observe_many(4, 0);
        assert_eq!(h.counts(), &[3, 0, 2]);
        assert_eq!(h.observations(), 5);
        assert!((h.fraction_at_or_above(1) - 0.4).abs() < 1e-12);
        assert!((h.mean() - 0.8).abs() < 1e-12);
        assert_eq!(OccupancyHistogram::new().fraction_at_or_above(0), 0.0);
        assert_eq!(OccupancyHistogram::new().mean(), 0.0);
    }

    #[test]
    fn sparkline_scales_to_own_max() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[8.0]), "█");
        assert_eq!(sparkline(&[1.0, 8.0]), "▁█");
    }
}
