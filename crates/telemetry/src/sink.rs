//! Event sinks: where simulators send telemetry.
//!
//! Simulators are generic over a [`TelemetrySink`], defaulting to
//! [`NullSink`]. Because the sink type is a monomorphized generic (not a
//! trait object), the `NullSink` implementation — `enabled()` returning
//! `false` and an empty `record` — is inlined and removed by the
//! optimiser, so uninstrumented runs pay nothing for the instrumentation
//! points. The `no_op_sink_overhead` bench asserts this stays true.

use std::io::{self, Write};

/// A destination for cycle-stamped telemetry events.
///
/// The trait is generic over the event type `E`, so the same machinery
/// serves both the network layer (`damq_telemetry::Event`) and the
/// chip microarchitecture model (`damq_microarch::TraceEvent`).
///
/// Instrumentation sites with non-trivial event-construction cost should
/// guard on [`enabled`](TelemetrySink::enabled):
///
/// ```
/// # use damq_telemetry::{Event, EventKind, TelemetrySink, MemorySink};
/// # fn expensive_scan() -> Vec<u32> { vec![] }
/// # let mut sink: MemorySink<Event> = MemorySink::new();
/// # let cycle = 0;
/// if sink.enabled() {
///     let occupied = expensive_scan();
///     sink.record(Event::new(cycle, EventKind::CycleSample {
///         occupied,
///         forwarded: vec![],
///         buffer_occupancy: vec![],
///         backlog: 0,
///         hol_blocked: 0,
///     }));
/// }
/// ```
pub trait TelemetrySink<E> {
    /// Whether this sink currently wants events. Sites may skip building
    /// events entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one event.
    fn record(&mut self, event: E);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The default sink: discards everything, reports itself disabled.
///
/// With this sink every instrumentation site compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl<E> TelemetrySink<E> for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: E) {}
}

/// Collects events into a `Vec`, for tests and in-process analysis.
#[derive(Debug, Clone, Default)]
pub struct MemorySink<E> {
    events: Vec<E>,
    enabled: bool,
}

impl<E> MemorySink<E> {
    /// Creates an enabled, empty sink.
    pub fn new() -> Self {
        MemorySink {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// The events recorded so far, in arrival order.
    pub fn events(&self) -> &[E] {
        &self.events
    }

    /// Consumes the sink, yielding its events.
    pub fn into_events(self) -> Vec<E> {
        self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pauses (`false`) or resumes (`true`) recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<E> TelemetrySink<E> for MemorySink<E> {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, event: E) {
        if self.enabled {
            self.events.push(event);
        }
    }
}

/// An event that knows how to serialise itself as one JSONL line.
///
/// Implemented by [`Event`](crate::Event); implement it for other event
/// types to stream them through a [`JsonlSink`].
pub trait JsonlRecord {
    /// One line of JSON, without the trailing newline.
    fn to_jsonl(&self) -> String;
}

impl JsonlRecord for crate::Event {
    fn to_jsonl(&self) -> String {
        crate::Event::to_jsonl(self)
    }
}

/// Streams events to a writer as JSON-lines, one event per line.
///
/// Writes are buffered by whatever `W` does; call
/// [`flush`](TelemetrySink::flush) (or drop the sink) before reading the
/// output. I/O errors are sticky: the first error disables the sink and
/// is surfaced by [`JsonlSink::take_error`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer` in a JSONL sink.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Number of events successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Takes the first I/O error, if any occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Returns the sticky write error or the flush error, if any.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<E: JsonlRecord, W: Write> TelemetrySink<E> for JsonlSink<W> {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn record(&mut self, event: E) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_jsonl();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Counts events without storing them.
///
/// Reports itself enabled, so instrumentation sites take the same code
/// path as a real sink — used by the overhead benchmark to measure the
/// enabled-path cost, and handy as a cheap smoke check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// Creates a sink with a zero count.
    pub fn new() -> Self {
        CountingSink { count: 0 }
    }

    /// Number of events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<E> TelemetrySink<E> for CountingSink {
    fn record(&mut self, _event: E) {
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    fn sample(cycle: u64) -> Event {
        Event::new(
            cycle,
            EventKind::Injected {
                packet: cycle,
                source: 0,
            },
        )
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut sink = NullSink;
        assert!(!TelemetrySink::<Event>::enabled(&sink));
        sink.record(sample(1));
        TelemetrySink::<Event>::flush(&mut sink);
    }

    #[test]
    fn memory_sink_respects_enabled_flag() {
        let mut sink = MemorySink::new();
        sink.record(sample(1));
        sink.set_enabled(false);
        assert!(!TelemetrySink::<Event>::enabled(&sink));
        sink.record(sample(2));
        sink.set_enabled(true);
        sink.record(sample(3));
        let cycles: Vec<u64> = sink.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 3]);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(sample(1));
        sink.record(sample(2));
        assert_eq!(sink.written(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        let events = Event::parse_trace(&text).unwrap();
        assert_eq!(events, vec![sample(1), sample(2)]);
    }

    #[test]
    fn jsonl_sink_errors_are_sticky() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(sample(1));
        assert!(!TelemetrySink::<Event>::enabled(&sink));
        sink.record(sample(2));
        assert_eq!(sink.written(), 0);
        assert!(sink.take_error().is_some());
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        assert!(TelemetrySink::<Event>::enabled(&sink));
        sink.record(sample(1));
        sink.record(sample(2));
        assert_eq!(sink.count(), 2);
    }
}
