//! Exhaustive model check of every buffer design in a 2×2 discarding
//! switch.
//!
//! Runs the full matrix — FIFO/DAMQ/DAFC at 2 and 3 slots, SAMQ/SAFC at 2
//! and 4 (static splitting needs even sizes) — and exits nonzero if any
//! configuration diverges from the reference spec or trips a structural
//! invariant. Pass `--quick` to check only the smallest size per kind
//! (used by `scripts/check.sh`).

use damq_core::BufferKind;

fn capacities(kind: BufferKind, quick: bool) -> &'static [usize] {
    match (kind.is_statically_allocated(), quick) {
        (_, true) => &[2],
        (false, false) => &[2, 3],
        (true, false) => &[2, 4],
    }
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("usage: model_check [--quick]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    for kind in BufferKind::EXTENDED {
        for &capacity in capacities(kind, quick) {
            match damq_verify::check(kind, capacity) {
                Ok(report) => println!("ok   {report}"),
                Err(violation) => {
                    eprintln!("FAIL {violation}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("model check FAILED: at least one implementation diverges from the spec");
        std::process::exit(1);
    }
    println!("model check passed: every reachable state of every design matches the spec");
}
