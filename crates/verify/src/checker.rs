//! Exhaustive BFS model checker for the 2×2 switch buffers.
//!
//! [`check`] enumerates *every* state a buffer design can reach in a 2×2
//! discarding switch with a small buffer, and in every state cross-checks
//! the concrete [`SwitchBuffer`] implementation against the reference
//! [`Spec`]:
//!
//! * **Materialisation** — the abstract state is replayed into a fresh
//!   concrete buffer; every replay enqueue must be accepted.
//! * **Structural audit** — [`SwitchBuffer::audit`] must pass after every
//!   single operation (the §3.1 register/linked-list invariants).
//! * **Observable agreement** — `packet_count`, `used_slots`, per-output
//!   `queue_len`, `front` destinations, and `can_accept` must match the
//!   spec in every state, and `try_enqueue` must accept/reject exactly
//!   when the spec does.
//! * **Packet conservation** — across each cycle (arrivals then crossbar
//!   moves), resident packets change by exactly `accepted − sent`.
//! * **Deadlock freedom** — whenever packets are resident, every
//!   arbitration branch transmits at least one of them.
//!
//! The cycle structure (arrivals applied before departures, 3 arrival
//! options per input, longest-queue arbitration) mirrors `damq-markov`'s
//! `Switch2x2` with `CycleOrder::ArrivalsFirst`, so the visited state
//! count can be cross-validated against `Chain::explore`.

use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use damq_core::{BufferConfig, BufferKind, ConfigError, NodeId, OutputPort, Packet, SwitchBuffer};

use crate::spec::{MoveSet, RefInput, Spec, SpecState};

/// Summary of one exhaustive run: the explored space and work done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// The design that was checked.
    pub kind: BufferKind,
    /// Packet slots per input buffer.
    pub capacity: usize,
    /// Distinct reachable joint states visited.
    pub states: usize,
    /// State transitions examined (arrival combo × arbitration branch).
    pub transitions: u64,
    /// Concrete buffer operations performed (enqueues + dequeues), each
    /// followed by a full structural audit.
    pub ops: u64,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} capacity {}: {} states, {} transitions, {} audited ops",
            self.kind, self.capacity, self.states, self.transitions, self.ops
        )
    }
}

/// A divergence between a concrete buffer and the reference spec (or a
/// structural invariant it tripped on the way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The design under check.
    pub kind: BufferKind,
    /// Packet slots per input buffer.
    pub capacity: usize,
    /// Which invariant class failed (audit invariant name, or one of
    /// `"spec-agreement"`, `"packet-conservation"`, `"deadlock-freedom"`,
    /// `"materialise"`).
    pub invariant: String,
    /// The abstract state in which the violation was observed.
    pub state: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} capacity {}: invariant '{}' violated in state {}: {}",
            self.kind, self.capacity, self.invariant, self.state, self.detail
        )
    }
}

impl Error for Violation {}

/// Outcome of a model-checking run.
pub type CheckResult = Result<CheckReport, Box<Violation>>;

/// Exhaustively checks the stock implementation of `kind` at `capacity`
/// slots per input buffer.
///
/// # Errors
///
/// Returns the first [`Violation`] found, or a `"materialise"` violation if
/// the configuration itself is invalid (e.g. odd capacity for SAMQ/SAFC).
pub fn check(kind: BufferKind, capacity: usize) -> CheckResult {
    check_with_factory(kind, capacity, &|| {
        BufferConfig::new(2, capacity).build(kind)
    })
}

/// Exhaustively checks buffers produced by `factory` against the reference
/// spec for `kind` at `capacity`.
///
/// The factory indirection exists so tests can feed deliberately broken
/// implementations to the checker and assert they are caught (mutation
/// testing the checker itself).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_with_factory(
    kind: BufferKind,
    capacity: usize,
    factory: &dyn Fn() -> Result<Box<dyn SwitchBuffer>, ConfigError>,
) -> CheckResult {
    let spec = Spec::new(kind, capacity).map_err(|e| {
        Box::new(Violation {
            kind,
            capacity,
            invariant: "materialise".into(),
            state: "<none>".into(),
            detail: format!("invalid configuration: {e}"),
        })
    })?;
    let mut checker = Checker {
        spec,
        factory,
        transitions: 0,
        ops: 0,
    };

    let start = spec.empty();
    let mut visited: HashSet<SpecState> = HashSet::new();
    let mut frontier: VecDeque<SpecState> = VecDeque::new();
    visited.insert(start.clone());
    frontier.push_back(start);

    while let Some(state) = frontier.pop_front() {
        for next in checker.check_state(&state)? {
            if visited.insert(next.clone()) {
                frontier.push_back(next);
            }
        }
    }

    Ok(CheckReport {
        kind,
        capacity,
        states: visited.len(),
        transitions: checker.transitions,
        ops: checker.ops,
    })
}

/// The three arrival options per input, as in the Markov model: no packet,
/// or one packet routed to either output.
const ARRIVALS: [Option<usize>; 3] = [None, Some(0), Some(1)];

struct Checker<'a> {
    spec: Spec,
    factory: &'a dyn Fn() -> Result<Box<dyn SwitchBuffer>, ConfigError>,
    transitions: u64,
    ops: u64,
}

impl Checker<'_> {
    fn violation(
        &self,
        invariant: impl Into<String>,
        state: &SpecState,
        detail: impl Into<String>,
    ) -> Box<Violation> {
        Box::new(Violation {
            kind: self.spec.kind(),
            capacity: self.spec.capacity(),
            invariant: invariant.into(),
            state: format!("{state:?}"),
            detail: detail.into(),
        })
    }

    /// Audits one concrete buffer and reports the failure as a violation.
    fn audit(
        &self,
        buf: &dyn SwitchBuffer,
        state: &SpecState,
        context: &str,
    ) -> Result<(), Box<Violation>> {
        buf.audit()
            .map_err(|e| self.violation(e.invariant(), state, format!("{context}: {}", e.detail())))
    }

    /// Builds a concrete buffer holding exactly `abstract_input`'s packets.
    fn materialise(
        &mut self,
        abstract_input: &RefInput,
        state: &SpecState,
    ) -> Result<Box<dyn SwitchBuffer>, Box<Violation>> {
        let mut buf = (self.factory)()
            .map_err(|e| self.violation("materialise", state, format!("factory failed: {e}")))?;
        for dest in abstract_input.dests() {
            let output = OutputPort::new(usize::from(dest));
            let packet = mk_packet(usize::from(dest));
            self.ops += 1;
            if let Err(rejected) = buf.try_enqueue(output, packet) {
                return Err(self.violation(
                    "materialise",
                    state,
                    format!(
                        "replaying a reachable state, {} rejected a packet for {output}: {}",
                        self.spec.kind(),
                        rejected.reason
                    ),
                ));
            }
            self.audit(buf.as_ref(), state, "after materialise enqueue")?;
        }
        Ok(buf)
    }

    /// Concrete queue length the spec predicts for `(input, output)`.
    ///
    /// For multi-queue designs this is the per-output count. For the FIFO
    /// it is the *whole* queue length when the head is routed to `output`
    /// (everything behind the head is counted but blocked) and 0 otherwise,
    /// matching `FifoBuffer`'s documented semantics.
    fn expected_queue_len(&self, state: &SpecState, input: usize, output: usize) -> usize {
        match &state[input] {
            RefInput::Fifo(seq) => match seq.first() {
                Some(&h) if usize::from(h) == output => seq.len(),
                _ => 0,
            },
            RefInput::Counts(c) => usize::from(c[output]),
        }
    }

    /// Checks the static observables of both concrete buffers against the
    /// abstract state they were materialised from.
    fn check_observables(
        &self,
        bufs: &[Box<dyn SwitchBuffer>; 2],
        state: &SpecState,
    ) -> Result<(), Box<Violation>> {
        for (input, buf) in bufs.iter().enumerate() {
            let expected_packets = state[input].packets();
            if buf.packet_count() != expected_packets {
                return Err(self.violation(
                    "spec-agreement",
                    state,
                    format!(
                        "input {input}: packet_count {} but spec holds {expected_packets}",
                        buf.packet_count()
                    ),
                ));
            }
            if buf.used_slots() != expected_packets {
                return Err(self.violation(
                    "spec-agreement",
                    state,
                    format!(
                        "input {input}: used_slots {} but {expected_packets} single-slot \
                         packets are resident",
                        buf.used_slots()
                    ),
                ));
            }
            for output in 0..2 {
                let expected = self.expected_queue_len(state, input, output);
                let got = buf.queue_len(OutputPort::new(output));
                if got != expected {
                    return Err(self.violation(
                        "spec-agreement",
                        state,
                        format!(
                            "input {input}: queue_len(out{output}) = {got}, spec says {expected}"
                        ),
                    ));
                }
                let transmittable = self.spec.queue_len(state, input, output) > 0;
                let front = buf.front(OutputPort::new(output));
                if front.is_some() != transmittable {
                    return Err(self.violation(
                        "spec-agreement",
                        state,
                        format!(
                            "input {input}: front(out{output}).is_some() = {} but spec \
                             transmittability is {transmittable}",
                            front.is_some()
                        ),
                    ));
                }
                if let Some(packet) = front {
                    if packet.dest() != NodeId::new(output) {
                        return Err(self.violation(
                            "spec-agreement",
                            state,
                            format!(
                                "input {input}: front(out{output}) is routed to {}",
                                packet.dest()
                            ),
                        ));
                    }
                }
                let spec_accepts = self.spec.would_accept(state, input, output);
                if buf.can_accept(OutputPort::new(output), 1) != spec_accepts {
                    return Err(self.violation(
                        "spec-agreement",
                        state,
                        format!(
                            "input {input}: can_accept(out{output}) = {}, spec says \
                             {spec_accepts}",
                            !spec_accepts
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Fully checks one reachable state and returns its successor states.
    fn check_state(&mut self, state: &SpecState) -> Result<Vec<SpecState>, Box<Violation>> {
        // Materialise and compare every observable in the pre-cycle state.
        let bufs = [
            self.materialise(&state[0], state)?,
            self.materialise(&state[1], state)?,
        ];
        self.check_observables(&bufs, state)?;
        drop(bufs);

        let mut successors = Vec::new();
        for a0 in ARRIVALS {
            for a1 in ARRIVALS {
                let arrivals: Vec<(usize, usize)> = [(0, a0), (1, a1)]
                    .into_iter()
                    .filter_map(|(input, arrival)| arrival.map(|output| (input, output)))
                    .collect();

                // Spec side of the arrivals phase.
                let mut post = state.clone();
                let decisions: Vec<bool> = arrivals
                    .iter()
                    .map(|&(input, output)| self.spec.accept(&mut post, input, output))
                    .collect();
                let accepted = decisions.iter().filter(|&&d| d).count();

                // Concrete side: replay the same offers once and compare
                // accept/reject decisions (audited after every operation).
                let mut concrete = [
                    self.materialise(&state[0], state)?,
                    self.materialise(&state[1], state)?,
                ];
                self.apply_arrivals(&mut concrete, &arrivals, &decisions, state)?;
                self.check_observables(&concrete, &post)?;
                drop(concrete);

                // Deadlock freedom: with packets resident, every
                // arbitration branch must transmit at least one.
                let branches = self.spec.moves(&post);
                let total_p: f64 = branches.iter().map(|(_, p)| p).sum();
                if (total_p - 1.0).abs() > 1e-9 {
                    return Err(self.violation(
                        "deadlock-freedom",
                        &post,
                        format!("arbitration branch probabilities sum to {total_p}"),
                    ));
                }
                if self.spec.occupancy(&post) > 0 {
                    if let Some((idle, _)) = branches.iter().find(|(m, _)| m.is_empty()) {
                        return Err(self.violation(
                            "deadlock-freedom",
                            &post,
                            format!(
                                "{} packets resident but branch {idle:?} transmits none",
                                self.spec.occupancy(&post)
                            ),
                        ));
                    }
                }

                // Crossbar phase: check each arbitration branch on its own
                // concrete replica, then record the successor state.
                for (moves, _probability) in &branches {
                    self.transitions += 1;
                    let mut replica = [
                        self.materialise(&state[0], state)?,
                        self.materialise(&state[1], state)?,
                    ];
                    self.apply_arrivals(&mut replica, &arrivals, &decisions, state)?;
                    let next = self.apply_moves_checked(&mut replica, &post, moves)?;
                    self.check_observables(&replica, &next)?;

                    // Packet conservation across the whole cycle.
                    let resident: usize = replica.iter().map(|b| b.packet_count()).sum();
                    let before = self.spec.occupancy(state);
                    if resident != before + accepted - moves.len() {
                        return Err(self.violation(
                            "packet-conservation",
                            state,
                            format!(
                                "cycle started with {before} packets, accepted {accepted}, \
                                 sent {}, but {resident} are resident",
                                moves.len()
                            ),
                        ));
                    }
                    successors.push(next);
                }
            }
        }
        Ok(successors)
    }

    /// Offers the arrival packets to the concrete buffers and checks each
    /// accept/reject decision against the spec's.
    fn apply_arrivals(
        &mut self,
        bufs: &mut [Box<dyn SwitchBuffer>; 2],
        arrivals: &[(usize, usize)],
        decisions: &[bool],
        state: &SpecState,
    ) -> Result<(), Box<Violation>> {
        for (&(input, output), &spec_accepted) in arrivals.iter().zip(decisions) {
            let port = OutputPort::new(output);
            self.ops += 1;
            let result = bufs[input].try_enqueue(port, mk_packet(output));
            if result.is_ok() != spec_accepted {
                return Err(self.violation(
                    "spec-agreement",
                    state,
                    format!(
                        "input {input}: arrival for {port} was {} but spec says {}",
                        if result.is_ok() {
                            "accepted"
                        } else {
                            "rejected"
                        },
                        if spec_accepted { "accept" } else { "reject" },
                    ),
                ));
            }
            self.audit(bufs[input].as_ref(), state, "after arrival enqueue")?;
        }
        Ok(())
    }

    /// Dequeues one arbitration branch's moves from the concrete buffers,
    /// checking each returned packet, and returns the spec's next state.
    fn apply_moves_checked(
        &mut self,
        bufs: &mut [Box<dyn SwitchBuffer>; 2],
        post: &SpecState,
        moves: &MoveSet,
    ) -> Result<SpecState, Box<Violation>> {
        for &(input, output) in moves {
            let port = OutputPort::new(output);
            self.ops += 1;
            match bufs[input].dequeue(port) {
                Some(packet) if packet.dest() == NodeId::new(output) => {}
                Some(packet) => {
                    return Err(self.violation(
                        "spec-agreement",
                        post,
                        format!(
                            "input {input}: dequeue({port}) returned a packet routed to {}",
                            packet.dest()
                        ),
                    ));
                }
                None => {
                    return Err(self.violation(
                        "spec-agreement",
                        post,
                        format!(
                            "input {input}: dequeue({port}) returned nothing though the \
                             arbiter granted the move"
                        ),
                    ));
                }
            }
            self.audit(bufs[input].as_ref(), post, "after crossbar dequeue")?;
        }
        Ok(self.spec.apply_moves(post, moves))
    }
}

/// A single-slot packet routed to `output` (destination encodes the route).
fn mk_packet(output: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(output)).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damq_capacity_two_is_clean_and_bounded() {
        let report = check(BufferKind::Damq, 2).expect("no violations");
        // Per input: counts with sum <= 2 -> 6 states, so at most 36 joint.
        // (The exact reachable count is pinned by the markov cross-test.)
        assert!(
            report.states > 1 && report.states <= 36,
            "{}",
            report.states
        );
        assert!(report.transitions > 0);
        assert!(report.ops > 0);
    }

    #[test]
    fn fifo_capacity_two_stays_within_sequence_bound() {
        let report = check(BufferKind::Fifo, 2).expect("no violations");
        // Per input: sequences of length <= 2 over {0,1} -> 7; at most 49.
        assert!(
            report.states > 1 && report.states <= 49,
            "{}",
            report.states
        );
    }

    #[test]
    fn all_kinds_pass_at_smallest_capacity() {
        for kind in BufferKind::EXTENDED {
            let report = check(kind, 2).unwrap_or_else(|v| panic!("{v}"));
            assert!(report.states > 1, "{kind} explored nothing");
        }
    }

    #[test]
    fn odd_capacity_static_kind_is_a_config_violation() {
        let err = check(BufferKind::Samq, 3).expect_err("odd static capacity");
        assert_eq!(err.invariant, "materialise");
    }

    #[test]
    fn report_displays_key_numbers() {
        let report = check(BufferKind::Dafc, 2).expect("no violations");
        let text = report.to_string();
        assert!(text.contains("DAFC"), "{text}");
        assert!(text.contains("states"), "{text}");
    }
}
