//! Exhaustive verification of the buffer implementations (`damq-verify`).
//!
//! The simulators in this workspace exercise the buffer designs
//! statistically; this crate verifies them *exhaustively* on the smallest
//! interesting configuration — a 2×2 discarding switch with a tiny buffer,
//! the same setting as the paper's §4.1 Markov analysis:
//!
//! * [`Spec`] is a trivially-correct reference model of each design
//!   (a FIFO is a literal destination sequence, a multi-queue is a pair of
//!   counts), with crossbar arbitration mirroring `damq-markov`.
//! * [`check`] runs a breadth-first search over every reachable joint
//!   buffer state, cross-checking the real `damq-core` implementation
//!   against the spec at every operation: accept/reject agreement,
//!   observable state agreement, structural audits
//!   ([`SwitchBuffer::audit`](damq_core::SwitchBuffer::audit)) after every
//!   enqueue/dequeue, per-cycle packet conservation and deadlock freedom.
//!
//! The `model_check` binary runs the whole matrix (five kinds × two buffer
//! sizes) and exits nonzero on any violation; `scripts/check.sh` wires it
//! into CI. See `docs/VERIFICATION.md` for the invariant catalogue.
//!
//! # Examples
//!
//! ```
//! use damq_core::BufferKind;
//!
//! let report = damq_verify::check(BufferKind::Damq, 2)?;
//! assert!(report.states > 1);
//! # Ok::<(), Box<damq_verify::Violation>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checker;
mod spec;

pub use checker::{check, check_with_factory, CheckReport, CheckResult, Violation};
pub use spec::{MoveSet, RefInput, Spec, SpecState};
