//! Trivially-correct reference specification of a 2×2 input buffer.
//!
//! The model checker ([`crate::check`]) compares every concrete
//! [`SwitchBuffer`](damq_core::SwitchBuffer) implementation against this
//! spec, so the spec must be simple enough to be obviously right:
//!
//! * A FIFO is literally the sequence of destination outputs, head first.
//!   Only the head is transmittable (head-of-line blocking by definition).
//! * Every multi-queue design is a pair of per-output packet counts, because
//!   with fixed-length single-destination packets any two packets queued for
//!   the same output are interchangeable.
//!
//! Acceptance rules follow the paper directly: dynamic designs (DAMQ/DAFC)
//! accept while the *shared pool* has a free slot, static designs
//! (SAMQ/SAFC) accept while the *target output's partition* has one, and a
//! FIFO accepts while the single queue is short of capacity.
//!
//! Crossbar arbitration mirrors `damq-markov`'s 2×2 models move for move
//! (single read port vs. fully connected, longest-queue tie-breaks), which
//! is what lets the checker's reachable state space be cross-validated
//! against the Markov chain's.

use std::cmp::Ordering;

use damq_core::{BufferKind, ConfigError};

/// Abstract state of one input buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RefInput {
    /// FIFO contents: destination output of each packet, head first.
    Fifo(Vec<u8>),
    /// Multi-queue contents: number of packets held for each output.
    Counts([u8; 2]),
}

impl RefInput {
    /// Packets resident in this input buffer.
    pub fn packets(&self) -> usize {
        match self {
            RefInput::Fifo(seq) => seq.len(),
            RefInput::Counts(c) => usize::from(c[0]) + usize::from(c[1]),
        }
    }

    /// Destinations of the resident packets in canonical enqueue order.
    ///
    /// Replaying these through an empty concrete buffer reproduces the
    /// abstract state (order within a multi-queue is immaterial, so counts
    /// are emitted output 0 first).
    pub fn dests(&self) -> Vec<u8> {
        match self {
            RefInput::Fifo(seq) => seq.clone(),
            RefInput::Counts(c) => {
                let mut dests = vec![0u8; usize::from(c[0])];
                dests.extend(std::iter::repeat_n(1u8, usize::from(c[1])));
                dests
            }
        }
    }
}

/// Joint abstract state of the two input buffers of a 2×2 switch.
pub type SpecState = [RefInput; 2];

/// One crossbar assignment: the `(input, output)` pairs that transmit a
/// packet this cycle. Outputs within a move set are always distinct.
pub type MoveSet = Vec<(usize, usize)>;

/// Reference model of a 2×2 switch input buffer of a given kind and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spec {
    kind: BufferKind,
    capacity: u8,
}

impl Spec {
    /// Creates the reference model.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a zero capacity, a capacity above 255
    /// (the count representation's limit), or an odd capacity with a
    /// statically-allocated kind.
    pub fn new(kind: BufferKind, capacity: usize) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        if kind.is_statically_allocated() && !capacity.is_multiple_of(2) {
            return Err(ConfigError::CapacityNotDivisible {
                capacity,
                fanout: 2,
            });
        }
        let capacity = u8::try_from(capacity).map_err(|_| ConfigError::ZeroCapacity)?;
        Ok(Spec { kind, capacity })
    }

    /// The buffer design being modelled.
    pub fn kind(&self) -> BufferKind {
        self.kind
    }

    /// Packet slots per input buffer.
    pub fn capacity(&self) -> usize {
        usize::from(self.capacity)
    }

    /// The all-empty joint state.
    pub fn empty(&self) -> SpecState {
        match self.kind {
            BufferKind::Fifo => [RefInput::Fifo(Vec::new()), RefInput::Fifo(Vec::new())],
            _ => [RefInput::Counts([0, 0]), RefInput::Counts([0, 0])],
        }
    }

    /// Total packets resident across both input buffers.
    pub fn occupancy(&self, state: &SpecState) -> usize {
        state.iter().map(RefInput::packets).sum()
    }

    /// Whether `input` would accept one more packet routed to `output`,
    /// without mutating the state.
    pub fn would_accept(&self, state: &SpecState, input: usize, output: usize) -> bool {
        match (&state[input], self.kind) {
            (RefInput::Fifo(seq), _) => seq.len() < self.capacity(),
            (RefInput::Counts(c), BufferKind::Damq | BufferKind::Dafc) => {
                usize::from(c[0]) + usize::from(c[1]) < self.capacity()
            }
            (RefInput::Counts(c), BufferKind::Samq | BufferKind::Safc) => {
                usize::from(c[output]) < self.capacity() / 2
            }
            (RefInput::Counts(_), BufferKind::Fifo) => unreachable!("FIFO uses Fifo state"),
        }
    }

    /// Offers one packet routed to `output` to `input`; returns whether it
    /// was accepted (and stored) or discarded.
    pub fn accept(&self, state: &mut SpecState, input: usize, output: usize) -> bool {
        if !self.would_accept(state, input, output) {
            return false;
        }
        match &mut state[input] {
            RefInput::Fifo(seq) => seq.push(output as u8),
            RefInput::Counts(c) => c[output] += 1,
        }
        true
    }

    /// Packets transmittable from `input` to `output` *right now*.
    ///
    /// For a FIFO only the head packet is transmittable — the count is 1
    /// for the head's output and 0 elsewhere, however long the queue is.
    pub fn queue_len(&self, state: &SpecState, input: usize, output: usize) -> usize {
        match &state[input] {
            RefInput::Fifo(seq) => match seq.first() {
                Some(&h) if usize::from(h) == output => 1,
                _ => 0,
            },
            RefInput::Counts(c) => usize::from(c[output]),
        }
    }

    /// Enumerates the crossbar arbitration branches for one cycle.
    ///
    /// Each branch is a move set plus its probability; probabilities sum
    /// to 1. The branch structure mirrors `damq-markov` exactly:
    /// single-read-port designs (FIFO/SAMQ/DAMQ) send two packets only when
    /// the inputs cover distinct outputs, fully-connected designs
    /// (SAFC/DAFC) let each output independently serve the input with the
    /// longer queue for it.
    pub fn moves(&self, state: &SpecState) -> Vec<(MoveSet, f64)> {
        match self.kind {
            BufferKind::Fifo => fifo_moves(state),
            BufferKind::Samq | BufferKind::Damq => {
                single_read_port_moves(&self.transmit_counts(state))
            }
            BufferKind::Safc | BufferKind::Dafc => {
                fully_connected_moves(&self.transmit_counts(state))
            }
        }
    }

    /// Removes the moved packets from the state, returning the next state.
    ///
    /// # Panics
    ///
    /// Panics if a move names an empty queue or (for FIFO) an output that
    /// does not match the head packet — move sets must come from
    /// [`Spec::moves`] on the same state.
    pub fn apply_moves(&self, state: &SpecState, moves: &MoveSet) -> SpecState {
        let mut next = state.clone();
        for &(input, output) in moves {
            match &mut next[input] {
                RefInput::Fifo(seq) => {
                    let head = seq.first().copied();
                    assert_eq!(
                        head,
                        Some(output as u8),
                        "FIFO move must transmit the head packet"
                    );
                    seq.remove(0);
                }
                RefInput::Counts(c) => {
                    assert!(c[output] > 0, "move from empty queue");
                    c[output] -= 1;
                }
            }
        }
        next
    }

    /// Per-(input, output) transmittable counts, for the count-based
    /// arbiters.
    fn transmit_counts(&self, state: &SpecState) -> [[u8; 2]; 2] {
        let mut counts = [[0u8; 2]; 2];
        for (input, row) in counts.iter_mut().enumerate() {
            for (output, cell) in row.iter_mut().enumerate() {
                *cell = self.queue_len(state, input, output) as u8;
            }
        }
        counts
    }
}

/// FIFO arbitration: each input offers only its head packet; a head-of-line
/// conflict sends one head from the longest queue, ties split evenly.
fn fifo_moves(state: &SpecState) -> Vec<(MoveSet, f64)> {
    let seq = |input: usize| -> &Vec<u8> {
        match &state[input] {
            RefInput::Fifo(seq) => seq,
            RefInput::Counts(_) => unreachable!("FIFO spec uses Fifo state"),
        }
    };
    let (s0, s1) = (seq(0), seq(1));
    let head = |s: &Vec<u8>| s.first().map(|&h| usize::from(h));
    match (head(s0), head(s1)) {
        (None, None) => vec![(Vec::new(), 1.0)],
        (Some(h0), None) => vec![(vec![(0, h0)], 1.0)],
        (None, Some(h1)) => vec![(vec![(1, h1)], 1.0)],
        (Some(h0), Some(h1)) if h0 != h1 => vec![(vec![(0, h0), (1, h1)], 1.0)],
        (Some(h0), Some(h1)) => match s0.len().cmp(&s1.len()) {
            Ordering::Greater => vec![(vec![(0, h0)], 1.0)],
            Ordering::Less => vec![(vec![(1, h1)], 1.0)],
            Ordering::Equal => vec![(vec![(0, h0)], 0.5), (vec![(1, h1)], 0.5)],
        },
    }
}

/// Single-read-port arbitration over transmittable counts (SAMQ/DAMQ).
fn single_read_port_moves(counts: &[[u8; 2]; 2]) -> Vec<(MoveSet, f64)> {
    let straight = counts[0][0] > 0 && counts[1][1] > 0;
    let crossed = counts[0][1] > 0 && counts[1][0] > 0;
    match (straight, crossed) {
        (true, true) => vec![(vec![(0, 0), (1, 1)], 0.5), (vec![(0, 1), (1, 0)], 0.5)],
        (true, false) => vec![(vec![(0, 0), (1, 1)], 1.0)],
        (false, true) => vec![(vec![(0, 1), (1, 0)], 1.0)],
        (false, false) => {
            // At most one packet can go: longest queue wins, ties uniform.
            let mut best = 0;
            let mut candidates: MoveSet = Vec::new();
            for (input, row) in counts.iter().enumerate() {
                for (output, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    match c.cmp(&best) {
                        Ordering::Greater => {
                            best = c;
                            candidates = vec![(input, output)];
                        }
                        Ordering::Equal => candidates.push((input, output)),
                        Ordering::Less => {}
                    }
                }
            }
            if candidates.is_empty() {
                vec![(Vec::new(), 1.0)]
            } else {
                let p = 1.0 / candidates.len() as f64;
                candidates.into_iter().map(|m| (vec![m], p)).collect()
            }
        }
    }
}

/// Fully-connected arbitration (SAFC/DAFC): outputs choose independently.
fn fully_connected_moves(counts: &[[u8; 2]; 2]) -> Vec<(MoveSet, f64)> {
    let choose = |output: usize| -> Vec<(Option<usize>, f64)> {
        let (c0, c1) = (counts[0][output], counts[1][output]);
        match (c0 > 0, c1 > 0) {
            (false, false) => vec![(None, 1.0)],
            (true, false) => vec![(Some(0), 1.0)],
            (false, true) => vec![(Some(1), 1.0)],
            (true, true) => match c0.cmp(&c1) {
                Ordering::Greater => vec![(Some(0), 1.0)],
                Ordering::Less => vec![(Some(1), 1.0)],
                Ordering::Equal => vec![(Some(0), 0.5), (Some(1), 0.5)],
            },
        }
    };
    let mut out = Vec::new();
    for (i0, p0) in choose(0) {
        for (i1, p1) in choose(1) {
            let mut moves = MoveSet::new();
            if let Some(i) = i0 {
                moves.push((i, 0));
            }
            if let Some(i) = i1 {
                moves.push((i, 1));
            }
            out.push((moves, p0 * p1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(a: [u8; 2], b: [u8; 2]) -> SpecState {
        [RefInput::Counts(a), RefInput::Counts(b)]
    }

    #[test]
    fn damq_accepts_any_mix_up_to_capacity() {
        let spec = Spec::new(BufferKind::Damq, 3).unwrap();
        let mut st = spec.empty();
        assert!(spec.accept(&mut st, 0, 0));
        assert!(spec.accept(&mut st, 0, 0));
        assert!(spec.accept(&mut st, 0, 1));
        assert!(!spec.accept(&mut st, 0, 1), "shared pool exhausted");
        assert!(spec.accept(&mut st, 1, 1), "other input unaffected");
    }

    #[test]
    fn samq_partitions_statically() {
        let spec = Spec::new(BufferKind::Samq, 4).unwrap();
        let mut st = spec.empty();
        assert!(spec.accept(&mut st, 0, 1));
        assert!(spec.accept(&mut st, 0, 1));
        assert!(!spec.accept(&mut st, 0, 1), "out1 partition full");
        assert!(spec.accept(&mut st, 0, 0), "out0 partition still free");
    }

    #[test]
    fn odd_static_capacity_rejected() {
        assert!(Spec::new(BufferKind::Samq, 3).is_err());
        assert!(Spec::new(BufferKind::Safc, 5).is_err());
        assert!(Spec::new(BufferKind::Damq, 3).is_ok());
    }

    #[test]
    fn fifo_head_of_line_blocks() {
        let spec = Spec::new(BufferKind::Fifo, 3).unwrap();
        let st = [RefInput::Fifo(vec![0, 1]), RefInput::Fifo(vec![0])];
        // Input 0's second packet wants idle out1, but only heads compete.
        let branches = spec.moves(&st);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].0.len(), 1, "HOL conflict sends one packet");
    }

    #[test]
    fn damq_has_no_head_of_line_blocking() {
        let spec = Spec::new(BufferKind::Damq, 4).unwrap();
        let st = counts([1, 1], [1, 0]);
        let branches = spec.moves(&st);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].0, vec![(0, 1), (1, 0)], "crossed pair goes");
    }

    #[test]
    fn fully_connected_feeds_both_outputs_from_one_input() {
        for kind in [BufferKind::Safc, BufferKind::Dafc] {
            let spec = Spec::new(kind, 4).unwrap();
            let st = counts([1, 1], [0, 0]);
            let branches = spec.moves(&st);
            assert_eq!(branches.len(), 1);
            assert_eq!(branches[0].0.len(), 2, "{kind} sends both");
        }
    }

    #[test]
    fn move_probabilities_sum_to_one() {
        let spec = Spec::new(BufferKind::Damq, 4).unwrap();
        let st = counts([2, 0], [2, 0]);
        let branches = spec.moves(&st);
        assert_eq!(branches.len(), 2, "tied conflict splits");
        let total: f64 = branches.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_moves_round_trips_occupancy() {
        let spec = Spec::new(BufferKind::Safc, 4).unwrap();
        let st = counts([2, 1], [1, 2]);
        for (moves, _) in spec.moves(&st) {
            let next = spec.apply_moves(&st, &moves);
            assert_eq!(spec.occupancy(&next), spec.occupancy(&st) - moves.len());
        }
    }
}
