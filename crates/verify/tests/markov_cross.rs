//! Cross-validation of the model checker against the Markov chain.
//!
//! The checker's BFS and `damq_markov::Chain::explore` walk the *same*
//! 2×2 cycle structure (arrivals first, identical arbitration) through two
//! independent code bases — the checker drives the concrete `damq-core`
//! buffers, the chain drives the analytical models. With a traffic level
//! strictly between 0 and 1 every arrival combination has positive
//! probability, so the two reachable state spaces must coincide exactly,
//! and the steady-state distribution must put positive mass on every
//! state the checker visited.

use damq_core::BufferKind;
use damq_markov::{
    Chain, CycleOrder, DafcModel, DamqModel, FifoModel, SafcModel, SamqModel, SolveOptions,
    Switch2x2,
};

/// Reachable state count of the analytical chain for `kind`/`capacity`.
fn chain_state_count(kind: BufferKind, capacity: usize, traffic: f64) -> usize {
    let order = CycleOrder::ArrivalsFirst;
    match kind {
        BufferKind::Fifo => {
            Chain::explore(&Switch2x2::new(FifoModel::new(capacity), traffic, order)).state_count()
        }
        BufferKind::Samq => {
            Chain::explore(&Switch2x2::new(SamqModel::new(capacity), traffic, order)).state_count()
        }
        BufferKind::Safc => {
            Chain::explore(&Switch2x2::new(SafcModel::new(capacity), traffic, order)).state_count()
        }
        BufferKind::Damq => {
            Chain::explore(&Switch2x2::new(DamqModel::new(capacity), traffic, order)).state_count()
        }
        BufferKind::Dafc => {
            Chain::explore(&Switch2x2::new(DafcModel::new(capacity), traffic, order)).state_count()
        }
    }
}

fn capacities(kind: BufferKind) -> [usize; 2] {
    if kind.is_statically_allocated() {
        [2, 4]
    } else {
        [2, 3]
    }
}

#[test]
fn checker_state_space_matches_markov_chain_exactly() {
    for kind in BufferKind::EXTENDED {
        for capacity in capacities(kind) {
            let report = damq_verify::check(kind, capacity).unwrap_or_else(|v| panic!("{v}"));
            let chain_states = chain_state_count(kind, capacity, 0.9);
            assert_eq!(
                report.states, chain_states,
                "{kind} capacity {capacity}: checker visited {} states, \
                 Markov chain has {chain_states}",
                report.states
            );
        }
    }
}

#[test]
fn steady_state_supports_every_visited_state() {
    // The chain is irreducible over the reachable set (the empty state is
    // always reachable back via no-arrival cycles), so π must be strictly
    // positive wherever the checker walked.
    let report = damq_verify::check(BufferKind::Damq, 3).expect("checker clean");
    let chain = Chain::explore(&Switch2x2::new(
        DamqModel::new(3),
        0.9,
        CycleOrder::ArrivalsFirst,
    ));
    assert_eq!(chain.state_count(), report.states);
    let ss = chain
        .steady_state(SolveOptions::default())
        .expect("solver converges");
    assert_eq!(ss.pi.len(), report.states);
    for (i, &p) in ss.pi.iter().enumerate() {
        assert!(
            p > 0.0,
            "state {i} ({:?}) visited by the checker has zero steady-state mass",
            chain.state(i)
        );
    }
    let total: f64 = ss.pi.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "π sums to {total}");
}

#[test]
fn reachable_spaces_are_traffic_independent() {
    // Reachability only needs every arrival combo to be possible; the
    // state space must not depend on the traffic level itself.
    for traffic in [0.1, 0.5, 0.95] {
        assert_eq!(
            chain_state_count(BufferKind::Damq, 2, traffic),
            damq_verify::check(BufferKind::Damq, 2)
                .expect("clean")
                .states,
        );
    }
}
