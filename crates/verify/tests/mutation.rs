//! Mutation tests: feed deliberately broken buffers to the model checker
//! and assert each defect is caught.
//!
//! A checker that never fires is worthless; these tests are the checker's
//! own regression suite. Each mutant wraps the real DAMQ implementation
//! and corrupts exactly one behaviour.

use damq_core::{
    AuditError, BufferConfig, BufferKind, BufferStats, ConfigError, OutputPort, Packet, Rejected,
    SwitchBuffer,
};
use damq_verify::check_with_factory;

/// Wraps a real buffer, delegating everything by default.
#[derive(Debug)]
struct Mutant {
    inner: Box<dyn SwitchBuffer>,
    defect: Defect,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    /// Rejects enqueues one slot early (under-accepting).
    RejectsEarly,
    /// Claims one fewer resident packet than reality.
    LiesAboutPacketCount,
    /// Refuses to ever dequeue for output 1 (a stuck read port).
    StuckOutput,
}

fn mutant(defect: Defect) -> Result<Box<dyn SwitchBuffer>, ConfigError> {
    let inner = BufferConfig::new(2, 2).build(BufferKind::Damq)?;
    Ok(Box::new(Mutant { inner, defect }))
}

impl SwitchBuffer for Mutant {
    fn kind(&self) -> BufferKind {
        self.inner.kind()
    }
    fn fanout(&self) -> usize {
        self.inner.fanout()
    }
    fn capacity_slots(&self) -> usize {
        self.inner.capacity_slots()
    }
    fn used_slots(&self) -> usize {
        self.inner.used_slots()
    }
    fn slot_bytes(&self) -> usize {
        self.inner.slot_bytes()
    }
    fn read_ports(&self) -> usize {
        self.inner.read_ports()
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        match self.defect {
            Defect::RejectsEarly => self.inner.used_slots() + 1 < self.capacity_slots(),
            _ => self.inner.can_accept(output, slots),
        }
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        if self.defect == Defect::RejectsEarly && !self.can_accept(output, 1) {
            return Err(Rejected {
                packet,
                output,
                reason: damq_core::RejectReason::BufferFull,
            });
        }
        self.inner.try_enqueue(output, packet)
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        self.inner.queue_len(output)
    }
    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.inner.front(output)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if self.defect == Defect::StuckOutput && output.index() == 1 {
            return None;
        }
        self.inner.dequeue(output)
    }

    fn packet_count(&self) -> usize {
        match self.defect {
            Defect::LiesAboutPacketCount => self.inner.packet_count().saturating_sub(1),
            _ => self.inner.packet_count(),
        }
    }

    fn stats(&self) -> &BufferStats {
        self.inner.stats()
    }
    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
    fn audit(&self) -> Result<(), AuditError> {
        self.inner.audit()
    }
}

#[test]
fn stock_buffer_through_custom_factory_passes() {
    // Sanity: the factory indirection itself must not trip the checker.
    let factory = || BufferConfig::new(2, 2).build(BufferKind::Damq);
    check_with_factory(BufferKind::Damq, 2, &factory).expect("stock DAMQ is clean");
}

#[test]
fn early_rejection_is_caught_as_spec_disagreement() {
    let factory = || mutant(Defect::RejectsEarly);
    let violation =
        check_with_factory(BufferKind::Damq, 2, &factory).expect_err("mutant must be caught");
    assert!(
        violation.invariant == "spec-agreement" || violation.invariant == "materialise",
        "unexpected invariant: {violation}"
    );
}

#[test]
fn packet_count_lie_is_caught() {
    let factory = || mutant(Defect::LiesAboutPacketCount);
    let violation =
        check_with_factory(BufferKind::Damq, 2, &factory).expect_err("mutant must be caught");
    assert_eq!(violation.invariant, "spec-agreement", "{violation}");
}

#[test]
fn stuck_read_port_is_caught() {
    let factory = || mutant(Defect::StuckOutput);
    let violation =
        check_with_factory(BufferKind::Damq, 2, &factory).expect_err("mutant must be caught");
    assert_eq!(violation.invariant, "spec-agreement", "{violation}");
}
