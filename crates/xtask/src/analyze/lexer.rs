//! A small hand-rolled Rust lexer for the structural lints.
//!
//! The lint driver used to scan source *lines* with comments and strings
//! blanked out, which made every lint a substring match and every
//! whitespace variation a loophole (`Box < dyn SwitchBuffer >`). This
//! lexer produces a token stream — identifiers, punctuation, literals,
//! *and comments, retained with their text* — so lints can match real
//! token sequences and read `// SAFETY:` / `// lint: allow` markers from
//! the same stream. It is deliberately not a full Rust lexer: it only
//! distinguishes the shapes the lints care about, mirroring how
//! `damq-rng` replaced the external `rand` with the subset the
//! simulators need.
//!
//! Fidelity notes (all deliberate):
//!
//! * numeric literals are lexed greedily (`1e-9` becomes `1e`, `-`, `9`);
//!   no lint inspects numeric values, only that they are not identifiers;
//! * multi-character operators arrive as single-character punctuation
//!   (`::` is `:`, `:`), so sequence matchers compare adjacent tokens;
//! * raw strings (`r#"…"#`), byte strings and nested block comments are
//!   handled, because real sources in this workspace contain them.

/// What a [`Token`] is. Comments are first-class: the structural lints
/// read safety justifications and waivers out of the token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `fn`, `HashMap`, …).
    Ident,
    /// A lifetime (without the leading tick): `'a` lexes as `a`.
    Lifetime,
    /// One punctuation character (`.`, `!`, `<`, `{`, …).
    Punct,
    /// A string, raw-string, char or byte literal (text dropped).
    Literal,
    /// A numeric literal (text dropped; lexed greedily).
    Number,
    /// A `//` comment, including doc (`///`) and inner-doc (`//!`)
    /// comments; `text` keeps the full comment including the slashes.
    LineComment,
    /// A `/* … */` comment (possibly nested / multi-line); `text` keeps
    /// the full comment body including the delimiters.
    BlockComment,
}

/// One lexed token: kind, source text (for idents, lifetimes, puncts and
/// comments) and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's classification.
    pub kind: TokenKind,
    /// The token's text (empty for string/char/numeric literals, whose
    /// contents no lint inspects).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is this single punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// Whether this token is a comment (line or block, doc or plain).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is an *inner* doc comment (`//!` or `/*!`) —
    /// the module-overview shape lint 3 requires.
    pub fn is_inner_doc(&self) -> bool {
        self.is_comment() && (self.text.starts_with("//!") || self.text.starts_with("/*!"))
    }
}

/// Lexes `source` into a token stream. Whitespace is dropped; everything
/// else — including comments — becomes a [`Token`]. The lexer never
/// fails: malformed input degrades to punctuation tokens rather than
/// aborting, because a lint driver must report on every file it is
/// handed, not only the well-formed ones.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_string_ahead(1) => {
                    self.raw_string(1)
                }
                'b' if self.peek(1) == Some('"') => self.string_at(1),
                'b' if self.peek(1) == Some('\'') => {
                    self.pos += 1; // the `b` prefix; the tick logic does the rest
                    self.tick();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => self.raw_string(2),
                '\'' => self.tick(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, c.to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    /// Whether `r`/`br` at `self.pos` actually opens a raw string: some
    /// run of `#` followed by `"`. (`r#enum` is a raw identifier, not a
    /// raw string.)
    fn raw_string_ahead(&self, after_prefix: usize) -> bool {
        let mut i = self.pos + after_prefix;
        while self.chars.get(i) == Some(&'#') {
            i += 1;
        }
        self.chars.get(i) == Some(&'"')
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::BlockComment, text, line);
    }

    fn string(&mut self) {
        self.string_at(0);
    }

    /// Lexes a `"…"` literal whose opening quote is `prefix` chars ahead
    /// (1 for byte strings `b"…"`).
    fn string_at(&mut self, prefix: usize) {
        let line = self.line;
        self.pos += prefix + 1; // past the opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    // A `\<newline>` continuation escapes the newline
                    // itself; it is still a new source line, so count it
                    // or every later token's line number drifts.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.pos += 2; // escape: skip the escaped char
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Lexes `r#"…"#` (or `br##"…"##`, …) whose first `#`-or-quote is
    /// `prefix` chars ahead.
    fn raw_string(&mut self, prefix: usize) {
        let line = self.line;
        self.pos += prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // the opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                self.pos += 1 + hashes;
                break;
            }
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// A tick starts either a lifetime (`'a`) or a char literal (`'x'`,
    /// `'\n'`). A lifetime is a tick followed by an identifier *not*
    /// closed by another tick.
    fn tick(&mut self) {
        let line = self.line;
        let first = self.peek(1);
        if first == Some('\\') {
            // Escaped char literal: skip to the closing tick.
            self.pos += 2; // tick + backslash
            self.pos += 1; // the escaped character
            while self.peek(0).is_some_and(|c| c != '\'') {
                self.pos += 1; // \u{…} spans several chars
            }
            self.pos += 1;
            self.push(TokenKind::Literal, String::new(), line);
            return;
        }
        if first.is_some_and(|c| c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'') {
            // Lifetime: consume the identifier after the tick.
            self.pos += 1;
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        // Plain char literal: 'x'.
        self.pos += 3;
        self.push(TokenKind::Literal, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        // A fractional part: `.` only counts if a digit follows (so `0..n`
        // stays two range dots).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Number, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let tokens = lex("// SAFETY: fine\nlet x = 1; /* block */");
        assert_eq!(tokens[0].kind, TokenKind::LineComment);
        assert_eq!(tokens[0].text, "// SAFETY: fine");
        assert_eq!(tokens[0].line, 1);
        let block = tokens.iter().find(|t| t.kind == TokenKind::BlockComment);
        assert_eq!(block.map(|t| t.text.as_str()), Some("/* block */"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let tokens = lex("let s = \".unwrap() panic!(\"; f();");
        assert!(!idents(&tokens).contains(&"unwrap"));
        assert!(idents(&tokens).contains(&"f"));
    }

    #[test]
    fn raw_strings_and_byte_strings_lex() {
        let tokens = lex(r###"let a = r#"quote " inside"#; let b = b"bytes"; let c = br#"x"#;"###);
        let lits = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
        assert_eq!(idents(&tokens), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let tokens = lex("let r#enum = 1;");
        assert!(idents(&tokens).contains(&"enum"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let tokens = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1,
            "'x' is a char literal"
        );
    }

    #[test]
    fn escaped_char_literals_lex() {
        let tokens = lex(r"let t = '\n'; let u = '\u{1F600}'; let q = '\'';");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            3
        );
        assert!(idents(&tokens).contains(&"q"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let tokens = lex("/* outer /* inner */ still out */ fn f() {}");
        assert_eq!(tokens[0].kind, TokenKind::BlockComment);
        assert!(idents(&tokens).contains(&"fn"));
    }

    #[test]
    fn range_dots_do_not_join_numbers() {
        let tokens = lex("for i in 0..10 { let f = 1.5; }");
        let dots = tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both range dots");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Number)
                .count(),
            3,
            "0, 10 and 1.5"
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let tokens = lex("/* a\nb\nc */\nfn f() {}");
        let f = tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn string_continuation_escapes_still_count_their_newline() {
        let tokens = lex("let s = \"a \\\n   b \\\n   c\";\nfn f() {}");
        let f = tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4, "two \\<newline> continuations span two lines");
    }

    #[test]
    fn inner_doc_comments_are_recognised() {
        let tokens = lex("//! module overview\n/// item doc\nfn f() {}");
        assert!(tokens[0].is_inner_doc());
        assert!(!tokens[1].is_inner_doc());
    }
}
