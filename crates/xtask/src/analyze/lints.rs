//! The twelve workspace lints, implemented over the structural scanner.
//!
//! Lints 1–7 are the historical regex-era lints migrated onto token
//! sequences and the brace tree (same semantics, fewer loopholes —
//! `Box < dyn SwitchBuffer >` and friends no longer slip through
//! whitespace). Lints 8–12 are new:
//!
//! 8. **unsafe-audit** — every `unsafe` block/impl/fn/trait carries a
//!    `// SAFETY:` justification; every workspace crate except
//!    `damq-shard` declares `#![forbid(unsafe_code)]`; every atomic
//!    `Ordering::…` choice on the simulation path carries an
//!    `// ordering:` justification; and the generated
//!    `docs/UNSAFE_LEDGER.md` inventory is current.
//! 9. **determinism** — the simulation-path crates (core, switch, net,
//!    shard, telemetry) must not use `HashMap`/`HashSet` (iteration
//!    order is nondeterministic), `Instant`/`SystemTime` (wall-clock),
//!    or thread identity (`thread::current`, `ThreadId`); waivers carry
//!    `// lint: allow — why`.
//! 10. **metric-docs** — every metric name registered on the telemetry
//!     `MetricsRegistry` (a `.counter("…")` / `.histogram("…")` call
//!     with a literal name, outside test code) appears in the metrics
//!     reference table of `docs/OBSERVABILITY.md`, so the always-on
//!     registry's namespace stays documented as it grows.
//! 11. **hot-path-alloc** — the named cycle-kernel functions of the
//!     core/switch/net crates (`try_enqueue`, `transmit_cycle_with`,
//!     `advance_stages`, …) must not allocate or copy payloads:
//!     `Box::new`, `with_capacity`, `.to_vec()` and `.clone()` are
//!     flagged inside their brace spans. Scratch belongs in the owning
//!     struct, hoisted to construction; waivers carry
//!     `// lint: allow — why`.
//! 12. **reject-reason-coverage** — every variant of `RejectReason`
//!     (declared in `crates/core/src/error.rs`) must appear as a
//!     `RejectReason::Variant` match-arm pattern in non-test code of
//!     `crates/net/src`, the delivery path. The enum is
//!     `#[non_exhaustive]`, so a new reject class compiles everywhere
//!     without complaint; this lint makes the delivery path the one
//!     place that *must* decide how to handle it (recoverable loss vs
//!     structural bug).
//!
//! Every lint takes the parsed [`Workspace`] and appends [`Finding`]s;
//! the driver times each entry of [`ALL`] so scan-speed regressions are
//! visible run to run.

use std::fs;
use std::path::PathBuf;

use super::ledger;
use super::lexer::{Token, TokenKind};
use super::tree;
use super::{Finding, SourceFile, Workspace};

/// The comment marker that waives a lint for one site.
pub const ALLOW_MARKER: &str = "lint: allow";

/// The comment marker lint 8 requires on every `unsafe` site.
pub const SAFETY_MARKER: &str = "SAFETY:";

/// The comment marker lint 8 requires on every atomic-ordering site.
pub const ORDERING_MARKER: &str = "ordering:";

/// Crates whose `src/` must be panic-free (the simulator data path).
const PANIC_FREE_CRATES: [&str; 2] = ["crates/core/src/", "crates/net/src/"];

/// Crates whose `src/` must stay monomorphized (the per-cycle hot path).
const MONOMORPHIC_CRATES: [&str; 2] = ["crates/switch/src/", "crates/net/src/"];

/// Crates whose consuming-builder methods must carry `#[must_use]`.
const MUST_USE_CRATES: [&str; 2] = ["crates/core/src/", "crates/net/src/"];

/// Crates whose every `src/` module must open with a `//!` overview.
const MODULE_DOC_CRATES: [&str; 2] = ["crates/net/src/", "crates/shard/src/"];

/// The simulation-path crates lints 8 (orderings) and 9 (determinism)
/// guard: everything a deterministic run's bytes flow through.
pub const SIM_PATH_CRATES: [&str; 5] = [
    "crates/core/src/",
    "crates/switch/src/",
    "crates/net/src/",
    "crates/shard/src/",
    "crates/telemetry/src/",
];

/// The one crate allowed to contain `unsafe` (the phase pool).
pub const UNSAFE_CRATE_DIR: &str = "crates/shard";

/// A lint pass: appends findings for one structural rule.
pub type LintFn = fn(&Workspace, &mut Vec<Finding>);

/// The twelve lints, in order, with their display names. The driver
/// times each entry individually.
pub const ALL: [(&str, LintFn); 12] = [
    ("1 no-panic", no_panic),
    ("2 no-unseeded-rng", no_unseeded_rng),
    ("3 docs-mandatory", docs_mandatory),
    ("4 no-print", no_print),
    ("5 no-boxed-buffer", no_boxed_buffer),
    ("6 must-use-builders", must_use_builders),
    ("7 doc-links", doc_links),
    ("8 unsafe-audit", unsafe_audit),
    ("9 determinism", determinism),
    ("10 metric-docs", metric_docs),
    ("11 hot-path-alloc", hot_path_alloc),
    ("12 reject-reason-coverage", reject_reason_coverage),
];

fn finding(file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        path: file.path.clone(),
        line,
        message,
    }
}

/// Whether a site at `line` in non-test code lacks an allow waiver.
fn unwaived(file: &SourceFile, line: usize) -> bool {
    !file.in_test_code(line) && !file.comment_marker_at(line, ALLOW_MARKER)
}

/// Lint 1: panic-family calls in non-test simulator library code —
/// `.unwrap(`, `.expect(`, and the `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` macros.
fn no_panic(ws: &Workspace, findings: &mut Vec<Finding>) {
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    const METHODS: [&str; 2] = ["unwrap", "expect"];
    for prefix in PANIC_FREE_CRATES {
        for file in ws.files_under(prefix) {
            for (i, tok) in file.code.iter().enumerate() {
                let hit = if METHODS.iter().any(|m| tok.is_ident(m)) {
                    i > 0
                        && file.code[i - 1].is_punct('.')
                        && file.code.get(i + 1).is_some_and(|t| t.is_punct('('))
                } else if MACROS.iter().any(|m| tok.is_ident(m)) {
                    file.code.get(i + 1).is_some_and(|t| t.is_punct('!'))
                } else {
                    false
                };
                if hit && unwaived(file, tok.line) {
                    findings.push(finding(
                        file,
                        tok.line,
                        format!(
                            "'{}' in simulator library code — propagate a Result or \
                             justify with a '// {ALLOW_MARKER} — why' comment",
                            tok.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Lint 2: unseeded entropy sources outside the RNG crate —
/// `from_entropy`, `thread_rng`, `rand::random`. Applies to test code
/// too: experiments and their tests must both be reproducible.
fn no_unseeded_rng(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.rel.starts_with("crates/rng/") {
            continue;
        }
        for (i, tok) in file.code.iter().enumerate() {
            let hit = tok.is_ident("from_entropy")
                || tok.is_ident("thread_rng")
                || (tok.is_ident("rand")
                    && file.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 3).is_some_and(|t| t.is_ident("random")));
            if hit && !file.comment_marker_at(tok.line, ALLOW_MARKER) {
                findings.push(finding(
                    file,
                    tok.line,
                    format!(
                        "'{}' outside crates/rng — all randomness must be seeded \
                         for reproducible experiments",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// Whether `code` contains the inner attribute `#![name(arg)]`.
fn has_inner_attr(code: &[Token], name: &str, arg: &str) -> bool {
    code.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(name)
            && w[4].is_punct('(')
            && w[5].is_ident(arg)
            && w[6].is_punct(')')
    })
}

/// Lint 3: every library crate root carries `#![deny(missing_docs)]`,
/// and every module of the sharded simulation core opens with a `//!`
/// overview.
fn docs_mandatory(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (dir, _name) in &ws.crates {
        let rel = if dir == "." {
            "src/lib.rs".to_owned()
        } else {
            format!("{dir}/src/lib.rs")
        };
        let Some(file) = ws.file(&rel) else {
            continue; // binary-only crate (xtask)
        };
        if !has_inner_attr(&file.code, "deny", "missing_docs") {
            findings.push(finding(
                file,
                1,
                "crate root must carry #![deny(missing_docs)]".into(),
            ));
        }
    }
    for prefix in MODULE_DOC_CRATES {
        for file in ws.files_under(prefix) {
            if !file.tokens.iter().any(|t| t.is_inner_doc()) {
                findings.push(finding(
                    file,
                    1,
                    format!(
                        "modules under {prefix} must open with a //! overview \
                         (what the module is and how it fits the sharded core)"
                    ),
                ));
            }
        }
    }
}

/// Lint 4: no `println!`/`eprintln!` in library code. Harness binaries
/// (`src/bin/`), `benches/`, `tests/` and `crates/xtask` own their
/// output and are exempt.
fn no_print(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in ws.files_under("crates/") {
        if file.rel.starts_with("crates/xtask/")
            || !file.rel.contains("/src/")
            || file.rel.contains("/bin/")
        {
            continue;
        }
        for (i, tok) in file.code.iter().enumerate() {
            let hit = (tok.is_ident("println") || tok.is_ident("eprintln"))
                && file.code.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if hit && unwaived(file, tok.line) {
                findings.push(finding(
                    file,
                    tok.line,
                    format!(
                        "'{}!' in library code — return data or use the telemetry \
                         layer; binaries own stdout/stderr, or justify with a \
                         '// {ALLOW_MARKER} — why' comment",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// Lint 5: no `Box<dyn SwitchBuffer>` on the simulation data path. The
/// token-sequence match is whitespace-immune (the regex era needed two
/// spellings).
fn no_boxed_buffer(ws: &Workspace, findings: &mut Vec<Finding>) {
    for prefix in MONOMORPHIC_CRATES {
        for file in ws.files_under(prefix) {
            for (i, tok) in file.code.iter().enumerate() {
                let hit = tok.is_ident("Box")
                    && file.code.get(i + 1).is_some_and(|t| t.is_punct('<'))
                    && file.code.get(i + 2).is_some_and(|t| t.is_ident("dyn"))
                    && file
                        .code
                        .get(i + 3)
                        .is_some_and(|t| t.is_ident("SwitchBuffer"));
                if hit && unwaived(file, tok.line) {
                    findings.push(finding(
                        file,
                        tok.line,
                        format!(
                            "'Box<dyn SwitchBuffer>' on the simulation data path — use \
                             the generic parameter `B: SwitchBuffer` (enum-dispatched \
                             `AnyBuffer` for kind-selected configs), or justify with a \
                             '// {ALLOW_MARKER} — why' comment"
                        ),
                    ));
                }
            }
        }
    }
}

/// Lint 6: consuming-builder methods must be `#[must_use]`. Signatures
/// are extracted structurally (multi-line signatures, generics with
/// `Fn(..) -> ..` bounds, and `pub(crate)` visibility all parse).
fn must_use_builders(ws: &Workspace, findings: &mut Vec<Finding>) {
    for prefix in MUST_USE_CRATES {
        for file in ws.files_under(prefix) {
            for sig in tree::fn_signatures(&file.code) {
                if !(sig.consumes_self && sig.returns_self) {
                    continue;
                }
                if file.in_test_code(sig.line)
                    || file.comment_marker_at(sig.line, "#[must_use")
                    || file.comment_marker_at(sig.line, ALLOW_MARKER)
                {
                    continue;
                }
                findings.push(finding(
                    file,
                    sig.line,
                    format!(
                        "consuming builder method without #[must_use] — dropping the \
                         return value discards the configuration; add #[must_use] or \
                         justify with a '// {ALLOW_MARKER} — why' comment"
                    ),
                ));
            }
        }
    }
}

/// Lint 7: relative markdown links must resolve. Scans the root-level
/// `*.md` files and everything under `docs/`, skipping fenced code
/// blocks; a link target is the text between `](` and `)`, minus any
/// `#fragment` and quoted title, resolved against the file's directory.
fn doc_links(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in markdown_files(ws) {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        let dir = file.parent().unwrap_or(&ws.root).to_path_buf();
        let mut in_fence = false;
        for (idx, line) in source.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in markdown_link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                    || target.is_empty()
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue;
                }
                if !dir.join(path_part).exists() {
                    findings.push(Finding {
                        path: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "dead relative link '{target}' — the target does not exist"
                        ),
                    });
                }
            }
        }
    }
}

/// The markdown files lint 7 covers: `*.md` at the workspace root plus
/// everything under `docs/`, recursively, in sorted order.
fn markdown_files(ws: &Workspace) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = fs::read_dir(&ws.root) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_file() && path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    let mut stack = vec![ws.root.join("docs")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Extracts inline-link targets from one markdown line: the text between
/// every `](` and its closing `)`, with any ` "title"` suffix dropped.
fn markdown_link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        let tail = &rest[open + 2..];
        let Some(close) = tail.find(')') else {
            break;
        };
        let target = tail[..close].trim();
        // Drop an optional quoted title: [text](path "title").
        let target = target.split_whitespace().next().unwrap_or("");
        targets.push(target.to_owned());
        rest = &tail[close + 1..];
    }
    targets
}

/// The atomic-ordering variant names (`std::sync::atomic::Ordering`).
/// `std::cmp::Ordering`'s `Less`/`Equal`/`Greater` never match, so sort
/// code is untouched.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every `Ordering::<variant>` site in `file`, as `(line, variant)`.
pub fn atomic_ordering_sites(file: &SourceFile) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    for (i, tok) in file.code.iter().enumerate() {
        if !tok.is_ident("Ordering") {
            continue;
        }
        let path_sep = file.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && file.code.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !path_sep {
            continue;
        }
        if let Some(next) = file.code.get(i + 3) {
            if let Some(variant) = ATOMIC_ORDERINGS.iter().find(|v| next.is_ident(v)) {
                sites.push((tok.line, *variant));
            }
        }
    }
    sites
}

/// Lint 8: the unsafe audit.
///
/// * Every `unsafe` block / `unsafe impl` / `unsafe fn` / `unsafe trait`
///   anywhere in the workspace carries a `// SAFETY:` justification on
///   the same line or in the contiguous comment block directly above.
/// * Every workspace crate root except `damq-shard`'s declares
///   `#![forbid(unsafe_code)]` — the compiler, not the lint, then
///   guarantees the inventory below cannot silently grow.
/// * Every atomic `Ordering::…` use in the simulation-path crates
///   carries an `// ordering:` justification (Relaxed vs Acquire/Release
///   is an invariant-bearing choice; see `docs/UNSAFE_LEDGER.md`).
/// * The committed `docs/UNSAFE_LEDGER.md` equals the freshly generated
///   inventory — run `cargo xtask unsafe-ledger` after any change.
fn unsafe_audit(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        for site in tree::unsafe_sites(&file.code) {
            if !file.comment_marker_at(site.line, SAFETY_MARKER) {
                findings.push(finding(
                    file,
                    site.line,
                    format!(
                        "{} without a '// {SAFETY_MARKER} …' justification on the \
                         same line or directly above (`{}`)",
                        site.kind.label(),
                        site.summary
                    ),
                ));
            }
        }
    }

    for (dir, name) in &ws.crates {
        if dir == UNSAFE_CRATE_DIR {
            continue;
        }
        let src = if dir == "." {
            "src".to_owned()
        } else {
            format!("{dir}/src")
        };
        let root_file = [format!("{src}/lib.rs"), format!("{src}/main.rs")]
            .into_iter()
            .find_map(|rel| ws.file(&rel));
        let Some(file) = root_file else {
            continue;
        };
        if !has_inner_attr(&file.code, "forbid", "unsafe_code") {
            findings.push(finding(
                file,
                1,
                format!(
                    "crate root of `{name}` must carry #![forbid(unsafe_code)] — \
                     only crates/shard (the phase pool) may contain unsafe"
                ),
            ));
        }
    }

    for prefix in SIM_PATH_CRATES {
        for file in ws.files_under(prefix) {
            for (line, variant) in atomic_ordering_sites(file) {
                if !file.comment_marker_at(line, ORDERING_MARKER) {
                    findings.push(finding(
                        file,
                        line,
                        format!(
                            "atomic Ordering::{variant} without a \
                             '// {ORDERING_MARKER} …' justification — say why this \
                             ordering is strong enough (see docs/UNSAFE_LEDGER.md)"
                        ),
                    ));
                }
            }
        }
    }

    let expected = ledger::generate(ws);
    let ledger_path = ws.root.join(ledger::LEDGER_REL);
    match fs::read_to_string(&ledger_path) {
        Ok(actual) if actual == expected => {}
        Ok(_) => findings.push(Finding {
            path: ledger_path,
            line: 1,
            message: "stale unsafe ledger — regenerate with `cargo xtask unsafe-ledger`".into(),
        }),
        Err(_) => findings.push(Finding {
            path: ledger_path,
            line: 0,
            message: "missing unsafe ledger — generate with `cargo xtask unsafe-ledger`".into(),
        }),
    }
}

/// Lint 9: determinism on the simulation path. Serial and N-thread runs
/// must be byte-identical, so the crates the simulation's bytes flow
/// through must not consult nondeterministic sources: hash-order
/// iteration (`HashMap`/`HashSet` — use `BTreeMap`/`BTreeSet` or index
/// vectors), wall-clock time (`Instant`/`SystemTime`), or thread
/// identity (`thread::current`, `ThreadId`). Justified exceptions carry
/// `// lint: allow — why` (e.g. the telemetry profiler, which measures
/// the harness, never simulation state).
fn determinism(ws: &Workspace, findings: &mut Vec<Finding>) {
    const BANNED_IDENTS: [(&str, &str); 5] = [
        (
            "HashMap",
            "hash iteration order is nondeterministic — use BTreeMap or an index vector",
        ),
        (
            "HashSet",
            "hash iteration order is nondeterministic — use BTreeSet or a sorted Vec",
        ),
        (
            "Instant",
            "wall-clock time must not influence simulation state",
        ),
        (
            "SystemTime",
            "wall-clock time must not influence simulation state",
        ),
        (
            "ThreadId",
            "thread identity must not influence simulation state",
        ),
    ];
    for prefix in SIM_PATH_CRATES {
        for file in ws.files_under(prefix) {
            for (i, tok) in file.code.iter().enumerate() {
                let mut reason = None;
                for (ident, why) in BANNED_IDENTS {
                    if tok.is_ident(ident) {
                        reason = Some((ident, why));
                        break;
                    }
                }
                if reason.is_none()
                    && tok.is_ident("thread")
                    && file.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 3).is_some_and(|t| t.is_ident("current"))
                {
                    reason = Some((
                        "thread::current",
                        "thread identity must not influence simulation state",
                    ));
                }
                if let Some((what, why)) = reason {
                    if unwaived(file, tok.line) {
                        findings.push(finding(
                            file,
                            tok.line,
                            format!(
                                "'{what}' in a simulation-path crate — {why}; or \
                                 justify with a '// {ALLOW_MARKER} — why' comment"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// The document lint 10 checks registered metric names against.
const METRICS_DOC_REL: &str = "docs/OBSERVABILITY.md";

/// Every statically registered metric name in `file`, as `(line, name)`:
/// call sites of the shape `.counter("…")` / `.histogram("…")` whose
/// first argument is a string literal. The lexer drops literal text, so
/// the name is read back from the literal's raw source line (metric
/// registrations are one-per-line in practice).
pub fn registered_metric_names(file: &SourceFile) -> Vec<(usize, String)> {
    let mut names = Vec::new();
    for (i, tok) in file.code.iter().enumerate() {
        let is_site = (tok.is_ident("counter") || tok.is_ident("histogram"))
            && i > 0
            && file.code[i - 1].is_punct('.')
            && file.code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && file
                .code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Literal);
        if !is_site {
            continue;
        }
        let lit_line = file.code[i + 2].line;
        let Some(raw) = file.raw_lines.get(lit_line - 1) else {
            continue;
        };
        if let Some(name) = first_quoted(raw) {
            names.push((tok.line, name.to_owned()));
        }
    }
    names
}

/// The contents of the first double-quoted string on `line`, if any.
fn first_quoted(line: &str) -> Option<&str> {
    let open = line.find('"')?;
    let rest = &line[open + 1..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

/// Lint 10: metric documentation. Every metric name registered outside
/// test code must appear — in backticks — in the metrics reference table
/// of `docs/OBSERVABILITY.md`. The registry is always-on and its
/// snapshot is part of the committed goldens, so an undocumented name is
/// an undocumented public surface.
fn metric_docs(ws: &Workspace, findings: &mut Vec<Finding>) {
    let doc = fs::read_to_string(ws.root.join(METRICS_DOC_REL)).unwrap_or_default();
    for file in ws.files_under("crates/") {
        for (line, name) in registered_metric_names(file) {
            if unwaived(file, line) && !doc.contains(&format!("`{name}`")) {
                findings.push(finding(
                    file,
                    line,
                    format!(
                        "metric '{name}' is registered here but missing from the \
                         metrics reference in {METRICS_DOC_REL} — document it (or \
                         justify with a '// {ALLOW_MARKER} — why' comment)"
                    ),
                ));
            }
        }
    }
}

/// Crates whose cycle-kernel functions lint 11 keeps allocation-free
/// (the steady-state per-cycle data path).
const HOT_PATH_CRATES: [&str; 3] = ["crates/core/src/", "crates/switch/src/", "crates/net/src/"];

/// The cycle-kernel function names lint 11 guards: every function a
/// steady-state `NetworkSim::step` executes per cycle. Constructors and
/// cold paths (audits, snapshots, telemetry emission) are exempt —
/// scratch is *supposed* to be allocated there.
const KERNEL_FNS: [&str; 13] = [
    // core: the per-cycle buffer operations of every design.
    "try_enqueue",
    "enqueue",
    "dequeue",
    "front",
    "kill_slot",
    "queue_lens_into",
    "can_accept",
    // switch: the batched arbitration kernel and its ingress.
    "transmit_cycle_with",
    "receive",
    // net: the cycle loop.
    "step",
    "generate",
    "advance_stages",
    "inject",
];

/// Line spans of every kernel function in `code`, as
/// `(open_line, close_line, name)` — found by walking the brace tree for
/// nodes whose header reads `fn <kernel-name>`.
pub fn kernel_fn_spans(code: &[Token]) -> Vec<(usize, usize, &'static str)> {
    let t = tree::build(code);
    let mut spans = Vec::new();
    collect_kernel_spans(&t.roots, code, &mut spans);
    spans
}

fn collect_kernel_spans(
    nodes: &[tree::Node],
    code: &[Token],
    spans: &mut Vec<(usize, usize, &'static str)>,
) {
    for node in nodes {
        let header = &code[node.header.0..node.header.1];
        let named = header.windows(2).find_map(|w| {
            if !w[0].is_ident("fn") {
                return None;
            }
            KERNEL_FNS.iter().find(|k| w[1].is_ident(k)).copied()
        });
        if let Some(name) = named {
            spans.push((node.open_line, node.close_line, name));
            // A kernel's nested blocks are already inside the span.
            continue;
        }
        collect_kernel_spans(&node.children, code, spans);
    }
}

/// Lint 11: no allocation or payload copies inside the cycle kernels.
/// Steady-state stepping must be allocation-free (the scratch lives in
/// the owning struct, sized at construction), so inside the functions
/// named by [`KERNEL_FNS`] the tokens `Box::new`, `with_capacity(`,
/// `.to_vec()` and `.clone()` are findings. Waivers carry
/// `// lint: allow — why`.
fn hot_path_alloc(ws: &Workspace, findings: &mut Vec<Finding>) {
    for prefix in HOT_PATH_CRATES {
        for file in ws.files_under(prefix) {
            let spans = kernel_fn_spans(&file.code);
            if spans.is_empty() {
                continue;
            }
            for (i, tok) in file.code.iter().enumerate() {
                let after_dot = i > 0 && file.code[i - 1].is_punct('.');
                let calls = file.code.get(i + 1).is_some_and(|t| t.is_punct('('));
                let what = if tok.is_ident("new")
                    && i >= 3
                    && file.code[i - 1].is_punct(':')
                    && file.code[i - 2].is_punct(':')
                    && file.code[i - 3].is_ident("Box")
                {
                    Some("Box::new")
                } else if tok.is_ident("with_capacity") && calls {
                    Some("with_capacity(…)")
                } else if tok.is_ident("to_vec") && after_dot && calls {
                    Some(".to_vec()")
                } else if tok.is_ident("clone") && after_dot && calls {
                    Some(".clone()")
                } else {
                    None
                };
                let Some(what) = what else {
                    continue;
                };
                let Some(&(_, _, kernel)) = spans
                    .iter()
                    .find(|&&(lo, hi, _)| (lo..=hi).contains(&tok.line))
                else {
                    continue;
                };
                if unwaived(file, tok.line) {
                    findings.push(finding(
                        file,
                        tok.line,
                        format!(
                            "'{what}' inside the cycle kernel `{kernel}` — steady-state \
                             stepping must not allocate or copy payloads; hoist the \
                             buffer into the owning struct (sized at construction) or \
                             justify with a '// {ALLOW_MARKER} — why' comment"
                        ),
                    ));
                }
            }
        }
    }
}

/// Where the reject-reason enum lint 12 audits is declared.
const REJECT_ENUM_FILE: &str = "crates/core/src/error.rs";

/// The crate whose non-test code must match every reject variant (the
/// network delivery path).
const REJECT_HANDLER_DIR: &str = "crates/net/src/";

/// The variants of `RejectReason`, read structurally from its enum
/// declaration: idents directly inside the enum's brace span (depth 1,
/// outside any parentheses) that open a variant — i.e. follow the `{`
/// or a `,`. Unit, tuple and struct variants all parse; only the
/// variant *names* are collected.
pub fn reject_reason_variants(file: &SourceFile) -> Vec<(usize, String)> {
    let mut variants = Vec::new();
    let code = &file.code;
    let Some(open) = code
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("RejectReason") && w[2].is_punct('{'))
    else {
        return variants;
    };
    let mut brace_depth = 0i32;
    let mut paren_depth = 0i32;
    let mut at_variant_start = false;
    for tok in &code[open + 2..] {
        if tok.is_punct('{') {
            brace_depth += 1;
            at_variant_start = brace_depth == 1;
            continue;
        }
        if tok.is_punct('}') {
            brace_depth -= 1;
            if brace_depth == 0 {
                break;
            }
            continue;
        }
        if tok.is_punct('(') {
            paren_depth += 1;
        } else if tok.is_punct(')') {
            paren_depth -= 1;
        } else if tok.is_punct(',') {
            at_variant_start = brace_depth == 1 && paren_depth == 0;
            continue;
        } else if at_variant_start && tok.kind == TokenKind::Ident {
            variants.push((tok.line, tok.text.clone()));
        }
        at_variant_start = false;
    }
    variants
}

/// Lint 12: reject-reason coverage. `RejectReason` is
/// `#[non_exhaustive]`, so the delivery path's matches all carry a `_`
/// arm and a newly added reject class would silently fall through
/// everywhere. This lint closes the loop: every declared variant must
/// appear as a `RejectReason::Variant` match-arm pattern (followed by
/// `|` or `=>`) in non-test code under `crates/net/src`, so adding a
/// variant forces an explicit delivery-path decision — recoverable loss
/// (park/deflect/drop) or structural bug (debug assert).
fn reject_reason_coverage(ws: &Workspace, findings: &mut Vec<Finding>) {
    let Some(enum_file) = ws.file(REJECT_ENUM_FILE) else {
        return; // partial workspaces (unit tests) have nothing to check
    };
    let variants = reject_reason_variants(enum_file);
    if variants.is_empty() {
        findings.push(finding(
            enum_file,
            1,
            "lint 12 found no RejectReason variants — if the enum moved, \
             update REJECT_ENUM_FILE in the analyzer"
                .into(),
        ));
        return;
    }
    for (decl_line, variant) in variants {
        let handled = ws.files_under(REJECT_HANDLER_DIR).into_iter().any(|file| {
            file.code.iter().enumerate().any(|(i, tok)| {
                tok.is_ident("RejectReason")
                    && !file.in_test_code(tok.line)
                    && file.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && file.code.get(i + 3).is_some_and(|t| t.is_ident(&variant))
                    // A match-arm pattern: the next token starts `|` (an
                    // or-pattern) or `=>` (the arm's arrow).
                    && file
                        .code
                        .get(i + 4)
                        .is_some_and(|t| t.is_punct('|') || t.is_punct('='))
            })
        });
        if !handled {
            findings.push(finding(
                enum_file,
                decl_line,
                format!(
                    "RejectReason::{variant} is never matched in the delivery path \
                     ({REJECT_HANDLER_DIR}) — the enum is #[non_exhaustive], so decide \
                     explicitly whether this reject class is recoverable loss or a \
                     structural bug"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_with(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent-test-root"),
            files: files
                .into_iter()
                .map(|(rel, src)| SourceFile::from_source(PathBuf::from(rel), rel.to_owned(), src))
                .collect(),
            crates: vec![],
        }
    }

    fn run(lint: fn(&Workspace, &mut Vec<Finding>), ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        lint(ws, &mut findings);
        findings
    }

    #[test]
    fn no_panic_catches_and_waives() {
        let ws = ws_with(vec![(
            "crates/net/src/x.rs",
            "fn f() { x.unwrap(); }\n\
             // lint: allow — provably infallible\n\
             fn g() { y.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n",
        )]);
        let findings = run(no_panic, &ws);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn no_panic_ignores_strings_and_comments() {
        let ws = ws_with(vec![(
            "crates/core/src/x.rs",
            "// .unwrap() in a comment\nfn f() { let s = \".unwrap()\"; }\n",
        )]);
        assert!(run(no_panic, &ws).is_empty());
    }

    #[test]
    fn boxed_buffer_is_whitespace_immune() {
        let ws = ws_with(vec![(
            "crates/switch/src/x.rs",
            "type A = Box<dyn SwitchBuffer>;\ntype B = Box < dyn\n    SwitchBuffer >;\n",
        )]);
        let findings = run(no_boxed_buffer, &ws);
        assert_eq!(findings.len(), 2, "both spellings and the line-split one");
    }

    #[test]
    fn rng_lint_spans_tests_too() {
        let ws = ws_with(vec![(
            "crates/bench/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { let r = thread_rng(); } }\n",
        )]);
        assert_eq!(run(no_unseeded_rng, &ws).len(), 1);
    }

    #[test]
    fn must_use_accepts_attribute_and_flags_bare() {
        let ws = ws_with(vec![(
            "crates/core/src/x.rs",
            "#[must_use]\npub fn a(mut self) -> Self { self }\n\
             pub fn b(mut self) -> Self { self }\n\
             pub fn c(&self) -> usize { 0 }\n",
        )]);
        let findings = run(must_use_builders, &ws);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn unsafe_audit_requires_safety_comment() {
        let ws = ws_with(vec![(
            "crates/shard/src/x.rs",
            "// SAFETY: justified.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n",
        )]);
        let mut findings = Vec::new();
        for file in &ws.files {
            for site in tree::unsafe_sites(&file.code) {
                if !file.comment_marker_at(site.line, SAFETY_MARKER) {
                    findings.push((site.line, site.summary));
                }
            }
        }
        assert_eq!(findings.len(), 1, "the Sync impl has no SAFETY above it");
        assert_eq!(findings[0].0, 3);
    }

    #[test]
    fn ordering_sites_need_justification() {
        let ws = ws_with(vec![(
            "crates/net/src/x.rs",
            "// ordering: relaxed — statistics only.\n\
             let a = c.load(Ordering::Relaxed);\n\
             let b = c.load(Ordering::Acquire);\n\
             let cmp = std::cmp::Ordering::Less;\n",
        )]);
        let file = &ws.files[0];
        let sites = atomic_ordering_sites(file);
        assert_eq!(sites.len(), 2, "cmp::Ordering::Less is not atomic");
        assert!(file.comment_marker_at(sites[0].0, ORDERING_MARKER));
        assert!(!file.comment_marker_at(sites[1].0, ORDERING_MARKER));
    }

    #[test]
    fn determinism_catches_hash_and_clock() {
        let ws = ws_with(vec![(
            "crates/telemetry/src/x.rs",
            "use std::collections::HashMap;\n\
             // lint: allow — membership only, never iterated\n\
             use std::collections::HashSet;\n\
             fn t() { let now = Instant::now(); }\n\
             fn id() { let me = std::thread::current(); }\n",
        )]);
        let findings = run(determinism, &ws);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 4, 5], "waived HashSet is skipped");
    }

    #[test]
    fn metric_docs_extracts_names_and_skips_tests() {
        let ws = ws_with(vec![(
            "crates/net/src/x.rs",
            "fn r(reg: &mut MetricsRegistry) {\n\
             let c = reg.counter(\"net.cycles\");\n\
             let h = reg.histogram(\"net.latency_cycles\");\n\
             let d = reg.counter(dynamic_name);\n\
             }\n\
             #[cfg(test)]\nmod tests { fn t(reg: &mut MetricsRegistry) { reg.counter(\"test.x\"); } }\n",
        )]);
        let names = registered_metric_names(&ws.files[0]);
        assert_eq!(
            names,
            vec![
                (2, "net.cycles".to_owned()),
                (3, "net.latency_cycles".to_owned()),
                (7, "test.x".to_owned()),
            ],
            "literal names only; the dynamic-name site is skipped"
        );
        // The workspace root points nowhere, so the reference doc reads
        // as empty and both non-test names are flagged; the test-code
        // registration is not.
        let findings = run(metric_docs, &ws);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn hot_path_alloc_flags_kernels_only() {
        let ws = ws_with(vec![(
            "crates/switch/src/x.rs",
            "impl Switch {\n\
             pub fn new() -> Self {\n\
                 let scratch = Vec::with_capacity(16);\n\
                 Self { scratch }\n\
             }\n\
             pub fn transmit_cycle_with(&mut self) {\n\
                 let v = Vec::with_capacity(4);\n\
                 let b = Box::new(0u32);\n\
                 let c = self.lens.to_vec();\n\
                 let p = packet.clone();\n\
                 let ok = done.clone;\n\
             }\n\
             }\n",
        )]);
        let findings = run(hot_path_alloc, &ws);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(
            lines,
            vec![7, 8, 9, 10],
            "constructor allocation is fine; the four kernel sites are \
             findings; `done.clone` without a call is not"
        );
        assert!(findings[0].message.contains("transmit_cycle_with"));
    }

    #[test]
    fn hot_path_alloc_honours_waivers_and_test_code() {
        let ws = ws_with(vec![(
            "crates/core/src/x.rs",
            "pub fn dequeue(&mut self) {\n\
                 // lint: allow — cold fault path, measured free.\n\
                 let v = self.dead.to_vec();\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 pub fn dequeue() { let b = Box::new(1); }\n\
             }\n",
        )]);
        assert!(run(hot_path_alloc, &ws).is_empty());
    }

    #[test]
    fn kernel_spans_cover_nested_blocks() {
        let src = "pub fn advance_stages(&mut self) {\n\
                   for s in 0..n {\n\
                   let x = 1;\n\
                   }\n\
                   }\n\
                   pub fn other() {\n\
                   let y = 2;\n\
                   }\n";
        let file = SourceFile::from_source(
            PathBuf::from("crates/net/src/x.rs"),
            "crates/net/src/x.rs".to_owned(),
            src,
        );
        let spans = kernel_fn_spans(&file.code);
        assert_eq!(spans.len(), 1);
        let (lo, hi, name) = spans[0];
        assert_eq!(name, "advance_stages");
        assert!(lo <= 1 && hi >= 5, "span {lo}..={hi} covers the loop");
    }

    const REJECT_ENUM_SRC: &str = "#[non_exhaustive]\n\
         pub enum RejectReason {\n\
         PacketTooLarge,\n\
         BufferFull,\n\
         Faulted,\n\
         }\n";

    #[test]
    fn reject_variants_parse_structurally() {
        let file = SourceFile::from_source(
            PathBuf::from(REJECT_ENUM_FILE),
            REJECT_ENUM_FILE.to_owned(),
            "pub enum Other { A, B }\n\
             pub enum RejectReason {\n\
             Unit,\n\
             Tuple(usize, String),\n\
             Struct { len: usize, cap: usize },\n\
             }\n",
        );
        let names: Vec<String> = reject_reason_variants(&file)
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(
            names,
            vec!["Unit", "Tuple", "Struct"],
            "variant names only — no field idents, no other enums"
        );
    }

    #[test]
    fn reject_coverage_requires_every_variant_in_a_match() {
        let ws = ws_with(vec![
            (REJECT_ENUM_FILE, REJECT_ENUM_SRC),
            (
                "crates/net/src/network.rs",
                "fn deliver() {\n\
                 match r.reason {\n\
                 RejectReason::BufferFull | RejectReason::Faulted => {}\n\
                 _ => {}\n\
                 }\n\
                 let x = RejectReason::PacketTooLarge;\n\
                 }\n",
            ),
        ]);
        let findings = run(reject_reason_coverage, &ws);
        assert_eq!(
            findings.len(),
            1,
            "PacketTooLarge appears only as an expression, not an arm"
        );
        assert!(findings[0].message.contains("PacketTooLarge"));
    }

    #[test]
    fn reject_coverage_ignores_test_code_and_passes_when_complete() {
        let ws = ws_with(vec![
            (REJECT_ENUM_FILE, REJECT_ENUM_SRC),
            (
                "crates/net/src/network.rs",
                "fn deliver() {\n\
                 match r.reason {\n\
                 RejectReason::BufferFull | RejectReason::Faulted => {}\n\
                 RejectReason::PacketTooLarge => {}\n\
                 _ => {}\n\
                 }\n\
                 }\n",
            ),
        ]);
        assert!(run(reject_reason_coverage, &ws).is_empty());

        let ws = ws_with(vec![
            (REJECT_ENUM_FILE, REJECT_ENUM_SRC),
            (
                "crates/net/src/network.rs",
                "#[cfg(test)]\nmod tests {\n\
                 fn t() { match r { RejectReason::BufferFull => {} _ => {} } }\n\
                 }\n",
            ),
        ]);
        assert_eq!(
            run(reject_reason_coverage, &ws).len(),
            3,
            "matches inside test code do not count as delivery-path coverage"
        );
    }

    #[test]
    fn markdown_link_targets_extracts_paths() {
        assert_eq!(
            markdown_link_targets("see [a](docs/A.md) and [b](B.md#sec)"),
            vec!["docs/A.md".to_owned(), "B.md#sec".to_owned()]
        );
        assert_eq!(
            markdown_link_targets(r#"[t](path.md "a title")"#),
            vec!["path.md".to_owned()]
        );
        assert!(markdown_link_targets("no links here").is_empty());
    }
}
