//! `damq-analyze` — the structural analysis subsystem behind
//! `cargo xtask lint`.
//!
//! The first six PRs grew the lint driver as regex-style line scans;
//! this module replaces that with a real (if small) pipeline:
//!
//! 1. [`lexer`] tokenizes every workspace source file — identifiers,
//!    punctuation, literals, and comments retained with their text;
//! 2. [`tree`] builds a brace tree over the code tokens and derives
//!    structural facts (`#[cfg(test)]` spans, `unsafe` sites, `pub fn`
//!    signatures);
//! 3. [`lints`] runs the twelve workspace lints over the parsed files;
//! 4. [`ledger`] renders the `unsafe`/atomics inventory as
//!    `docs/UNSAFE_LEDGER.md`, which lint 8 checks for staleness.
//!
//! Everything is hand-rolled and dependency-free, mirroring how
//! `damq-rng` replaced the unfetchable external `rand`: the container
//! builds offline, so the analysis engine has to live in-tree.

pub mod ledger;
pub mod lexer;
pub mod lints;
pub mod tree;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lexer::Token;

/// One lint finding, printed `path:line: message`.
pub struct Finding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line (0 when the finding is about the whole file).
    pub line: usize,
    /// What is wrong and how to fix or waive it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
    }
}

/// One parsed source file: raw lines (for comment-marker checks that are
/// line-oriented), the full token stream, the comment-free code tokens,
/// and the `#[cfg(test)]` line spans derived from the brace tree.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators (stable
    /// across hosts, used for scoping and the ledger).
    pub rel: String,
    /// The file's lines, verbatim.
    pub raw_lines: Vec<String>,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Code tokens only (comments filtered out).
    pub code: Vec<Token>,
    /// Line spans covered by `#[cfg(test)]` blocks.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Parses `source` as the contents of `path` (`rel` is the
    /// root-relative display path). Public so lint tests can build
    /// synthetic files without touching the filesystem.
    pub fn from_source(path: PathBuf, rel: String, source: &str) -> Self {
        let raw_lines = source.lines().map(str::to_owned).collect();
        let tokens = lexer::lex(source);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let tree = tree::build(&code);
        let test_spans = tree.test_spans(&code);
        SourceFile {
            path,
            rel,
            raw_lines,
            tokens,
            code,
            test_spans,
        }
    }

    /// Whether `line` is inside a `#[cfg(test)]` block.
    pub fn in_test_code(&self, line: usize) -> bool {
        tree::line_in_spans(line, &self.test_spans)
    }

    /// Whether the contiguous comment block directly above `line`
    /// (1-based), or `line` itself, contains `marker`. This is how all
    /// comment-anchored annotations work: `// lint: allow — why`,
    /// `// SAFETY: …`, `// ordering: …`. Doc comments (`///`, `//!`)
    /// count as comment lines, so a field's doc can carry the marker,
    /// and statement-continuation lines (an rustfmt-wrapped `let x =`
    /// above an `unsafe {` line) are walked through: the comment need
    /// only sit above the enclosing statement, mirroring clippy's
    /// `undocumented_unsafe_blocks`.
    pub fn comment_marker_at(&self, line: usize, marker: &str) -> bool {
        let idx = line.saturating_sub(1);
        if self.raw_lines.get(idx).is_some_and(|l| l.contains(marker)) {
            return true;
        }
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let trimmed = self.raw_lines[i].trim();
            if trimmed.starts_with("//") || trimmed.starts_with("#[") {
                if trimmed.contains(marker) {
                    return true;
                }
                continue;
            }
            // A statement boundary ends the walk; anything else is a
            // continuation of the statement the site lives in.
            if trimmed.is_empty() || trimmed.ends_with([';', '{', '}']) {
                return false;
            }
        }
        false
    }

    /// The text of the contiguous comment block directly above `line`
    /// after the first occurrence of `marker`, whitespace-collapsed —
    /// the justification string the ledger prints.
    pub fn comment_text_after(&self, line: usize, marker: &str) -> Option<String> {
        let idx = line.saturating_sub(1);
        // Find the block: walk up over comment lines (and statement
        // continuations, as in `comment_marker_at`), then read down.
        let mut start = idx;
        while start > 0 {
            let above = self.raw_lines[start - 1].trim();
            let continuation =
                !above.is_empty() && !above.starts_with("#[") && !above.ends_with([';', '{', '}']);
            if above.starts_with("//") || continuation {
                start -= 1;
            } else {
                break;
            }
        }
        let mut collected: Vec<&str> = Vec::new();
        let mut found = false;
        for l in &self.raw_lines[start..=idx.min(self.raw_lines.len().saturating_sub(1))] {
            let trimmed = l.trim_start();
            let body = trimmed
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim();
            if let Some(pos) = body.find(marker) {
                collected.clear();
                collected.push(body[pos + marker.len()..].trim());
                found = true;
            } else if found && trimmed.starts_with("//") {
                collected.push(body);
            } else if found {
                break;
            }
        }
        if !found {
            return None;
        }
        let joined = collected.join(" ");
        let mut text = joined.split_whitespace().collect::<Vec<_>>().join(" ");
        if text.len() > 140 {
            let mut cut = 140;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            text.push('…');
        }
        Some(text)
    }
}

/// Every parsed source file of the workspace, plus the crate inventory.
pub struct Workspace {
    /// The workspace root directory.
    pub root: PathBuf,
    /// Parsed files in sorted path order (determinism of findings and
    /// ledger output).
    pub files: Vec<SourceFile>,
    /// Workspace crates as `(dir-relative-to-root, package name)`,
    /// sorted; includes the root `damq` package as `(".", "damq")`.
    pub crates: Vec<(String, String)>,
}

impl Workspace {
    /// Loads and parses every `.rs` file under `crates/*/{src,tests,benches}`,
    /// `src/`, `tests/` and `examples/`.
    pub fn load(root: &Path) -> Self {
        let mut paths: Vec<PathBuf> = Vec::new();
        if let Ok(entries) = fs::read_dir(root.join("crates")) {
            for entry in entries.flatten() {
                for sub in ["src", "tests", "benches"] {
                    collect_rust_files(&entry.path().join(sub), &mut paths);
                }
            }
        }
        for sub in ["src", "tests", "examples"] {
            collect_rust_files(&root.join(sub), &mut paths);
        }
        paths.sort();

        let files = paths
            .into_iter()
            .filter_map(|path| {
                let source = fs::read_to_string(&path).ok()?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                Some(SourceFile::from_source(path, rel, &source))
            })
            .collect();

        let mut crates = Vec::new();
        if let Ok(entries) = fs::read_dir(root.join("crates")) {
            for entry in entries.flatten() {
                let dir = entry.path();
                if let Some(name) = package_name(&dir.join("Cargo.toml")) {
                    let rel = format!(
                        "crates/{}",
                        dir.file_name().unwrap_or_default().to_string_lossy()
                    );
                    crates.push((rel, name));
                }
            }
        }
        if let Some(name) = package_name(&root.join("Cargo.toml")) {
            crates.push((".".to_owned(), name));
        }
        crates.sort();

        Workspace {
            root: root.to_path_buf(),
            files,
            crates,
        }
    }

    /// Files whose root-relative path starts with `prefix`.
    pub fn files_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| f.rel.starts_with(prefix))
    }

    /// The file at exactly this root-relative path, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// The `name = "…"` of a Cargo manifest's `[package]` section (the first
/// `name =` line — good enough for this workspace's hand-written
/// manifests).
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_owned());
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively (unsorted; caller sorts).
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("test.rs"), "test.rs".into(), src)
    }

    #[test]
    fn comment_marker_walks_contiguous_blocks() {
        let f = file("// lint: allow — reason\n// more context\nx.unwrap();\ny.unwrap();\n");
        assert!(f.comment_marker_at(3, "lint: allow"));
        assert!(
            !f.comment_marker_at(4, "lint: allow"),
            "block is broken by code"
        );
    }

    #[test]
    fn comment_marker_matches_same_line() {
        let f = file("x.unwrap(); // lint: allow — checked above\n");
        assert!(f.comment_marker_at(1, "lint: allow"));
    }

    #[test]
    fn comment_text_extraction() {
        let f = file("// SAFETY: the pointer is valid because\n// the barrier holds it alive.\nunsafe { x }\n");
        let text = f.comment_text_after(3, "SAFETY:").unwrap();
        assert_eq!(
            text,
            "the pointer is valid because the barrier holds it alive."
        );
    }

    #[test]
    fn test_spans_flow_through() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n");
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(1));
    }
}
