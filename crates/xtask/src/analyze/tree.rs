//! Brace tree over the token stream: nested `{ … }` blocks with their
//! item headers, plus the derived structural facts the lints consume —
//! `#[cfg(test)]` spans, `unsafe` sites and `pub fn` signatures.
//!
//! The tree is deliberately shallow in what it understands: every `{`
//! opens a node whose *header* is the code-token run since the previous
//! item boundary (`;`, `{` or `}`), every `}` closes one. That is enough
//! to answer the structural questions the lints ask ("is this line
//! inside a `#[cfg(test)] mod`?", "does this `unsafe impl` carry a
//! SAFETY comment?", "does this `pub fn` consume `self` and return
//! `Self`?") without a real parser.

use super::lexer::{Token, TokenKind};

/// One `{ … }` block: its header tokens (indices into the *code* token
/// list), the lines it spans, and its nested children.
#[derive(Debug)]
pub struct Node {
    /// Code-token index range of the header: everything between the
    /// previous item boundary and the opening brace. Attributes such as
    /// `#[cfg(test)]` are part of the header (they contain no braces).
    pub header: (usize, usize),
    /// 1-based line of the opening brace.
    pub open_line: usize,
    /// 1-based line of the closing brace (last source line if unclosed).
    pub close_line: usize,
    /// Nested blocks, in source order.
    pub children: Vec<Node>,
}

/// The brace tree of one source file, built over its code tokens
/// (comments filtered out, but index-mapped back to the full stream).
#[derive(Debug)]
pub struct Tree {
    /// Top-level blocks, in source order.
    pub roots: Vec<Node>,
}

/// Builds the brace tree from `code` (the comment-free token list).
pub fn build(code: &[Token]) -> Tree {
    let mut builder = Builder {
        code,
        pos: 0,
        item_start: 0,
    };
    let last_line = code.last().map_or(1, |t| t.line);
    let roots = builder.block_children(last_line);
    Tree { roots }
}

struct Builder<'a> {
    code: &'a [Token],
    pos: usize,
    item_start: usize,
}

impl Builder<'_> {
    /// Consumes tokens until the enclosing block's `}` (or end of input),
    /// returning the child nodes found. `fallback_close` is the line to
    /// report when the block never closes (malformed input).
    fn block_children(&mut self, fallback_close: usize) -> Vec<Node> {
        let mut children = Vec::new();
        while self.pos < self.code.len() {
            let tok = &self.code[self.pos];
            if tok.is_punct('{') {
                let header = (self.item_start, self.pos);
                let open_line = tok.line;
                self.pos += 1;
                self.item_start = self.pos;
                let inner = self.block_children(fallback_close);
                let close_line = self
                    .code
                    .get(self.pos.saturating_sub(1))
                    .map_or(fallback_close, |t| t.line);
                children.push(Node {
                    header,
                    open_line,
                    close_line,
                    children: inner,
                });
                self.item_start = self.pos;
            } else if tok.is_punct('}') {
                self.pos += 1;
                return children;
            } else {
                if tok.is_punct(';') {
                    self.item_start = self.pos + 1;
                }
                self.pos += 1;
            }
        }
        children
    }
}

impl Tree {
    /// Line spans (inclusive) of every `#[cfg(test)]`-gated block — test
    /// modules and test functions. Lints on library code skip findings
    /// inside these spans.
    pub fn test_spans(&self, code: &[Token]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        collect_test_spans(&self.roots, code, &mut spans);
        spans
    }
}

fn collect_test_spans(nodes: &[Node], code: &[Token], spans: &mut Vec<(usize, usize)>) {
    for node in nodes {
        if header_has_cfg_test(&code[node.header.0..node.header.1]) {
            spans.push((node.open_line, node.close_line));
            // No need to recurse: the whole span is excluded.
            continue;
        }
        collect_test_spans(&node.children, code, spans);
    }
}

/// Whether a header token run contains the attribute shape
/// `# [ cfg ( test` (covering `#[cfg(test)]` and `#[cfg(all(test, …))]`
/// for the common orderings used in this workspace).
fn header_has_cfg_test(header: &[Token]) -> bool {
    header.windows(4).any(|w| {
        w[0].is_punct('#') && w[1].is_punct('[') && w[2].is_ident("cfg") && w[3].is_punct('(')
    }) && header.iter().any(|t| t.is_ident("test"))
}

/// Whether `line` falls in any of `spans` (inclusive bounds).
pub fn line_in_spans(line: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

/// The kind of an `unsafe` occurrence, classified by its following token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` — an unsafe block.
    Block,
    /// `unsafe impl Trait for Type` — an unsafe trait implementation.
    Impl,
    /// `unsafe fn name(...)` — an unsafe function.
    Fn,
    /// `unsafe trait Name` — an unsafe trait declaration.
    Trait,
    /// Anything else (`unsafe` in an unexpected position).
    Other,
}

impl UnsafeKind {
    /// Human-readable label used in findings and the generated ledger.
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Trait => "unsafe trait",
            UnsafeKind::Other => "unsafe",
        }
    }
}

/// One `unsafe` site found in a file's code tokens.
#[derive(Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Classification by the following token.
    pub kind: UnsafeKind,
    /// A short rendering of the site's header (for the ledger), e.g.
    /// `unsafe impl Send for Job`.
    pub summary: String,
}

/// Finds every `unsafe` keyword in `code` and classifies it.
pub fn unsafe_sites(code: &[Token]) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let kind = match code.get(i + 1) {
            Some(t) if t.is_punct('{') => UnsafeKind::Block,
            Some(t) if t.is_ident("impl") => UnsafeKind::Impl,
            Some(t) if t.is_ident("fn") => UnsafeKind::Fn,
            Some(t) if t.is_ident("trait") => UnsafeKind::Trait,
            _ => UnsafeKind::Other,
        };
        let mut summary = String::from("unsafe");
        for t in code.iter().skip(i + 1).take(8) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.kind == TokenKind::Ident || t.kind == TokenKind::Lifetime {
                summary.push(' ');
                summary.push_str(&t.text);
            } else if t.kind == TokenKind::Punct && !t.is_punct(',') {
                summary.push_str(&t.text);
            }
        }
        sites.push(UnsafeSite {
            line: tok.line,
            kind,
            summary,
        });
    }
    sites
}

/// A `pub fn` signature, extracted structurally for the `#[must_use]`
/// builder lint.
#[derive(Debug)]
pub struct FnSig {
    /// 1-based line of the `pub` keyword.
    pub line: usize,
    /// Whether the receiver is `self` / `mut self` by value.
    pub consumes_self: bool,
    /// Whether the declared return type starts with `Self`.
    pub returns_self: bool,
}

/// Extracts every `pub fn` / `pub const fn` signature from `code`
/// (including trait-method declarations that end in `;`). Generic
/// parameter lists are skipped with angle-bracket depth tracking; `->`
/// inside bounds (e.g. `F: Fn(u32) -> u32`) does not close a depth.
pub fn fn_signatures(code: &[Token]) -> Vec<FnSig> {
    let mut sigs = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let line = code[i].line;
        let mut j = i + 1;
        // Visibility scope `pub(crate)` etc.: skip a balanced paren run.
        if code.get(j).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0i32;
            while let Some(t) = code.get(j) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if code.get(j).is_some_and(|t| t.is_ident("const")) {
            j += 1;
        }
        if !code.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        j += 1; // fn
        j += 1; // the function name
                // Generic parameters: skip to the matching `>`.
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while let Some(t) = code.get(j) {
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    // `->` inside bounds: the `>` of an arrow is not a
                    // generic closer.
                    let arrow = j > 0 && code[j - 1].is_punct('-');
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                }
                j += 1;
            }
        }
        // Parameter list.
        let Some(open) = code.get(j).filter(|t| t.is_punct('(')) else {
            i = j;
            continue;
        };
        let _ = open;
        let params_start = j + 1;
        let mut depth = 0i32;
        while let Some(t) = code.get(j) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let params_end = j; // index of the closing paren
        let consumes_self = {
            let first = code.get(params_start);
            let second = code.get(params_start + 1);
            match first {
                Some(t) if t.is_ident("self") => true,
                Some(t) if t.is_ident("mut") => second.is_some_and(|t| t.is_ident("self")),
                _ => false,
            }
        };
        // Return type: `-> Self …` directly after the params.
        let returns_self = code.get(params_end + 1).is_some_and(|t| t.is_punct('-'))
            && code.get(params_end + 2).is_some_and(|t| t.is_punct('>'))
            && code.get(params_end + 3).is_some_and(|t| t.is_ident("Self"));
        sigs.push(FnSig {
            line,
            consumes_self,
            returns_self,
        });
        i = params_end + 1;
    }
    sigs
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn code(src: &str) -> Vec<Token> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    #[test]
    fn tree_nests_blocks() {
        let toks = code("mod a { fn f() { if x { } } } struct S { x: u32 }");
        let tree = build(&toks);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.roots[0].children.len(), 1, "fn f inside mod a");
        assert_eq!(tree.roots[0].children[0].children.len(), 1, "if inside f");
    }

    #[test]
    fn cfg_test_mod_spans_are_found() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let toks = code(src);
        let tree = build(&toks);
        let spans = tree.test_spans(&toks);
        assert_eq!(spans.len(), 1);
        assert!(line_in_spans(4, &spans), "unwrap line is inside the span");
        assert!(!line_in_spans(1, &spans), "real code is outside");
    }

    #[test]
    fn cfg_test_fn_is_also_skipped() {
        let src = "#[cfg(test)]\nfn helper() { x.unwrap(); }\nfn real() {}\n";
        let toks = code(src);
        let spans = build(&toks).test_spans(&toks);
        assert!(line_in_spans(2, &spans));
        assert!(!line_in_spans(3, &spans));
    }

    #[test]
    fn unsafe_sites_classify() {
        let src = "unsafe impl Send for Job {}\nfn f() { unsafe { g() } }\npub unsafe fn h() {}\n";
        let toks = code(src);
        let sites = unsafe_sites(&toks);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].kind, UnsafeKind::Impl);
        assert_eq!(sites[0].summary, "unsafe impl Send for Job");
        assert_eq!(sites[1].kind, UnsafeKind::Block);
        assert_eq!(sites[2].kind, UnsafeKind::Fn);
    }

    #[test]
    fn fn_signatures_detect_consuming_builders() {
        let src = "\
pub fn seed(mut self, s: u64) -> Self { self }
pub const fn with_x(self) -> Self { self }
pub fn len(&self) -> usize { 0 }
pub fn set(&mut self, x: u64) -> Self { Self }
pub fn build(self) -> Result<B, E> { }
pub fn generic<F: Fn(u32) -> u32>(self, f: F) -> Self { self }
pub(crate) fn internal(self) -> Self { self }
";
        let toks = code(src);
        let sigs = fn_signatures(&toks);
        let builders: Vec<usize> = sigs
            .iter()
            .filter(|s| s.consumes_self && s.returns_self)
            .map(|s| s.line)
            .collect();
        assert_eq!(builders, vec![1, 2, 6, 7]);
    }

    #[test]
    fn multiline_signatures_are_one_sig() {
        let src = "pub fn long(\n    mut self,\n    x: u64,\n) -> Self {\n    self\n}\n";
        let toks = code(src);
        let sigs = fn_signatures(&toks);
        assert_eq!(sigs.len(), 1);
        assert!(sigs[0].consumes_self && sigs[0].returns_self);
        assert_eq!(sigs[0].line, 1);
    }
}
