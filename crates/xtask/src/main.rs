//! Workspace task driver: `cargo xtask lint` and `cargo xtask
//! unsafe-ledger`.
//!
//! The analysis itself lives in the [`analyze`] module — a hand-rolled
//! lexer, a brace tree, ten structural lints and the generated
//! `docs/UNSAFE_LEDGER.md` inventory. The twelve lints (details in
//! `docs/VERIFICATION.md` § Static analysis):
//!
//! 1. **No panics in simulator library code** (`crates/core`,
//!    `crates/net`) — propagate `Result`; waivable.
//! 2. **No unseeded randomness outside `crates/rng`** — `from_entropy`,
//!    `thread_rng`, `rand::random` make experiments irreproducible.
//! 3. **Documentation is mandatory** — `#![deny(missing_docs)]` on every
//!    library crate root; `//!` overviews on every module of the sharded
//!    core (`crates/net`, `crates/shard`).
//! 4. **No stdout/stderr printing in library code** — binaries,
//!    benches and xtask are exempt.
//! 5. **No `Box<dyn SwitchBuffer>` on the simulation data path**
//!    (`crates/switch`, `crates/net`) — the hot path stays
//!    monomorphized.
//! 6. **Consuming builder methods carry `#[must_use]`** (`crates/core`,
//!    `crates/net`).
//! 7. **No dead intra-repo markdown links** (root `*.md` and `docs/`).
//! 8. **Unsafe audit** — every `unsafe` site carries `// SAFETY:`; every
//!    crate except `crates/shard` forbids unsafe at the root; atomic
//!    `Ordering` choices on the sim path carry `// ordering:`; the
//!    generated `docs/UNSAFE_LEDGER.md` is current.
//! 9. **Determinism** — no `HashMap`/`HashSet`, wall-clock time, or
//!    thread identity in the sim-path crates; waivable.
//! 10. **Metric docs** — every metric name registered on the telemetry
//!     `MetricsRegistry` appears in the metrics reference table of
//!     `docs/OBSERVABILITY.md`; waivable.
//!
//! `cargo xtask lint` runs all ten plus the `cargo clippy` / `cargo fmt
//! --check` gates; `--no-cargo` skips the cargo gates (fast, no
//! compilation — the check.sh `analyze` gate budget is ~2s). Per-lint
//! wall-times are printed so scan-speed regressions are visible.

#![forbid(unsafe_code)]

mod analyze;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Instant;

use analyze::{ledger, lints, Workspace};

/// Clippy invocation pinned here so CI and dev runs agree.
const CLIPPY_ARGS: [&str; 7] = [
    "clippy",
    "--workspace",
    "--all-targets",
    "--quiet",
    "--",
    "-D",
    "warnings",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--no-cargo")),
        Some("unsafe-ledger") => unsafe_ledger(),
        Some("--help" | "-h") | None => {
            eprintln!("usage: cargo xtask <lint [--no-cargo] | unsafe-ledger>");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!(
                "unknown task '{other}' (usage: cargo xtask <lint [--no-cargo] | unsafe-ledger>)"
            );
            ExitCode::from(2)
        }
    }
}

fn lint(no_cargo: bool) -> ExitCode {
    let root = workspace_root();
    let total_start = Instant::now();

    let parse_start = Instant::now();
    let ws = Workspace::load(&root);
    let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "xtask lint: parsed {} files in {} crates {parse_ms:>24.1}ms",
        ws.files.len(),
        ws.crates.len()
    );

    let mut findings = Vec::new();
    for (name, run) in lints::ALL {
        let start = Instant::now();
        let before = findings.len();
        run(&ws, &mut findings);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let new = findings.len() - before;
        eprintln!("xtask lint: lint {name:<22} {new:>3} finding(s) {ms:>10.1}ms");
    }

    for finding in &findings {
        eprintln!("error: {finding}");
    }
    let mut failed = !findings.is_empty();
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "xtask lint: custom lints {} ({} finding(s), {total_ms:.1}ms total)",
        if failed { "FAILED" } else { "passed" },
        findings.len()
    );

    if !no_cargo {
        failed |= !run_cargo(&root, &CLIPPY_ARGS);
        failed |= !run_cargo(&root, &["fmt", "--all", "--check"]);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    }
}

/// Regenerates `docs/UNSAFE_LEDGER.md` from the current tree.
fn unsafe_ledger() -> ExitCode {
    let root = workspace_root();
    let ws = Workspace::load(&root);
    let rendered = ledger::generate(&ws);
    let path = root.join(ledger::LEDGER_REL);
    match fs::write(&path, &rendered) {
        Ok(()) => {
            eprintln!("xtask unsafe-ledger: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved relative to this crate's manifest so the
/// driver works from any working directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    eprintln!("xtask lint: running cargo {}", args.join(" "));
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("error: cargo {} exited with {status}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("error: failed to spawn cargo: {e}");
            false
        }
    }
}
