//! Workspace lint driver: `cargo xtask lint`.
//!
//! Seven custom lints that `clippy` cannot express for this workspace,
//! plus the standard `cargo clippy` / `cargo fmt --check` gates:
//!
//! 1. **No panics in simulator library code** — `unwrap()`, `expect(…)`,
//!    `panic!`, `unreachable!`, `todo!` and `unimplemented!` are forbidden
//!    in the non-test library code of `crates/core` and `crates/net` (the
//!    crates every experiment depends on). Fallible paths must propagate
//!    `Result`; provably-infallible sites carry a `// lint: allow — why`
//!    comment on the same or preceding line.
//! 2. **No unseeded randomness outside `crates/rng`** — `from_entropy`,
//!    `thread_rng` and `rand::random` would make experiments
//!    irreproducible; every RNG must be seeded through `damq-rng`.
//! 3. **Documentation is mandatory** — every library crate root must carry
//!    `#![deny(missing_docs)]`, and every module of `crates/net` and
//!    `crates/shard` (the sharded simulation core, where design intent is
//!    easiest to lose) must open with a `//!` overview.
//! 4. **No stdout/stderr printing in library code** — `println!` and
//!    `eprintln!` are forbidden in every library crate's `src/` (harness
//!    binaries under `src/bin/`, the `benches/` targets and `crates/xtask`
//!    own their output and are exempt). Libraries report through return
//!    values or the telemetry layer; justified exceptions carry a
//!    `// lint: allow — why` comment.
//! 5. **No trait objects on the simulation data path** — `Box<dyn
//!    SwitchBuffer>` is forbidden in `crates/switch/src` and
//!    `crates/net/src`. The data path is monomorphized: generic code takes
//!    `B: SwitchBuffer` and kind-selected configs go through the
//!    enum-dispatched `AnyBuffer`. The boxed compatibility facade lives in
//!    `crates/core` (exempt), and integration tests under `tests/` may
//!    still instantiate it; a deliberate exception in library code carries
//!    a `// lint: allow — why` comment.
//! 6. **Builder methods must be `#[must_use]`** — in `crates/core` and
//!    `crates/net`, a `pub fn` that consumes `self` and returns `Self` is
//!    a builder step; dropping its return value silently discards the
//!    configuration (`config.seed(7);` does nothing). Every such method
//!    carries `#[must_use]` (directly — a type-level attribute also works
//!    but the lint wants the local marker), or a `// lint: allow — why`
//!    comment.
//! 7. **No dead intra-repo markdown links** — every relative link in the
//!    root `*.md` files and `docs/*.md` must resolve to an existing file
//!    or directory. External (`http…`/`mailto:`) and same-file anchor
//!    links are exempt; fenced code blocks are skipped.
//!
//! Run `cargo xtask lint` for everything, or `cargo xtask lint --no-cargo`
//! for just the custom lints (fast, no compilation).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Panic-family calls forbidden in simulator library code.
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Crates whose `src/` must be panic-free (the simulator data path).
const PANIC_FREE_CRATES: [&str; 2] = ["crates/core", "crates/net"];

/// Unseeded entropy sources forbidden outside `crates/rng`.
const RNG_PATTERNS: [&str; 3] = ["from_entropy", "thread_rng", "rand::random"];

/// Console printing forbidden in library (non-binary) code.
const PRINT_PATTERNS: [&str; 2] = ["println!(", "eprintln!("];

/// Trait-object buffer dispatch forbidden on the simulation data path.
const BOXED_BUFFER_PATTERNS: [&str; 2] = ["Box<dyn SwitchBuffer>", "Box < dyn SwitchBuffer >"];

/// Crates whose `src/` must stay monomorphized (the per-cycle hot path).
const MONOMORPHIC_CRATES: [&str; 2] = ["crates/switch", "crates/net"];

/// Crates whose consuming-builder methods must carry `#[must_use]`.
const MUST_USE_CRATES: [&str; 2] = ["crates/core", "crates/net"];

/// The comment marker that waives the panic lint for one line.
const ALLOW_MARKER: &str = "lint: allow";

/// Clippy invocation pinned here so CI and dev runs agree.
const CLIPPY_ARGS: [&str; 7] = [
    "clippy",
    "--workspace",
    "--all-targets",
    "--quiet",
    "--",
    "-D",
    "warnings",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--no-cargo")),
        Some("--help" | "-h") | None => {
            eprintln!("usage: cargo xtask lint [--no-cargo]");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("unknown task '{other}' (usage: cargo xtask lint [--no-cargo])");
            ExitCode::from(2)
        }
    }
}

/// One lint finding, printed `path:line: message`.
struct Finding {
    path: PathBuf,
    line: usize,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
    }
}

fn lint(no_cargo: bool) -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();

    panic_lint(&root, &mut findings);
    rng_lint(&root, &mut findings);
    docs_lint(&root, &mut findings);
    print_lint(&root, &mut findings);
    boxed_buffer_lint(&root, &mut findings);
    must_use_lint(&root, &mut findings);
    doc_link_lint(&root, &mut findings);

    for finding in &findings {
        eprintln!("error: {finding}");
    }
    let mut failed = !findings.is_empty();
    eprintln!(
        "xtask lint: custom lints {} ({} finding(s))",
        if failed { "FAILED" } else { "passed" },
        findings.len()
    );

    if !no_cargo {
        failed |= !run_cargo(&root, &CLIPPY_ARGS);
        failed |= !run_cargo(&root, &["fmt", "--all", "--check"]);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    }
}

/// The workspace root, resolved relative to this crate's manifest so the
/// driver works from any working directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    eprintln!("xtask lint: running cargo {}", args.join(" "));
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("error: cargo {} exited with {status}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("error: failed to spawn cargo: {e}");
            false
        }
    }
}

/// Lint 1: panic-family calls in non-test library code.
fn panic_lint(root: &Path, findings: &mut Vec<Finding>) {
    for krate in PANIC_FREE_CRATES {
        for file in rust_files(&root.join(krate).join("src")) {
            scan_panic_file(&file, findings);
        }
    }
}

fn scan_panic_file(path: &Path, findings: &mut Vec<Finding>) {
    scan_forbidden(path, &PANIC_PATTERNS, findings, |pattern| {
        format!(
            "'{pattern}' in simulator library code — propagate a Result or \
             justify with a '// {ALLOW_MARKER} — why' comment"
        )
    });
}

/// Scans one file for forbidden `patterns` in non-test code, skipping
/// `#[cfg(test)] mod` blocks and `// lint: allow`-waived lines; each hit
/// becomes a [`Finding`] with the message built by `describe`.
fn scan_forbidden(
    path: &Path,
    patterns: &[&str],
    findings: &mut Vec<Finding>,
    describe: impl Fn(&str) -> String,
) {
    let Ok(source) = fs::read_to_string(path) else {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 0,
            message: "unreadable file".into(),
        });
        return;
    };
    let code_lines = strip_comments_and_strings(&source);
    let raw_lines: Vec<&str> = source.lines().collect();

    let mut in_test_mod = false;
    let mut test_depth: i32 = 0;
    let mut pending_cfg_test = false;

    for (idx, code) in code_lines.iter().enumerate() {
        let raw = raw_lines.get(idx).copied().unwrap_or_default();

        if in_test_mod {
            test_depth += brace_delta(code);
            if test_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }

        let trimmed = raw.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            // `#[cfg(test)]` gates the next item; only a `mod` opens a
            // whole block to skip. Anything else (a gated fn/use) is a
            // single item we conservatively keep linting.
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                in_test_mod = true;
                test_depth = brace_delta(code);
                if test_depth <= 0 && code.contains('{') {
                    in_test_mod = false;
                }
                pending_cfg_test = false;
                continue;
            }
            if !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }

        for pattern in patterns {
            if !code.contains(pattern) {
                continue;
            }
            if !allowed_by_comment(&raw_lines, idx) {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: describe(pattern),
                });
            }
        }
    }
}

/// Whether line `idx` carries the allow marker — on the line itself or
/// anywhere in the contiguous `//` comment block directly above it (allow
/// justifications are encouraged to be multi-line).
fn allowed_by_comment(raw_lines: &[&str], idx: usize) -> bool {
    if raw_lines.get(idx).is_some_and(|l| l.contains(ALLOW_MARKER)) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if trimmed.contains(ALLOW_MARKER) {
            return true;
        }
    }
    false
}

/// Lint 2: unseeded entropy sources outside the RNG crate.
fn rng_lint(root: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "rng"))
        .collect();
    dirs.push(root.join("src")); // the root `damq` package
    dirs.sort();

    for dir in dirs {
        for file in rust_files(&dir) {
            let Ok(source) = fs::read_to_string(&file) else {
                continue;
            };
            let code_lines = strip_comments_and_strings(&source);
            let raw_lines: Vec<&str> = source.lines().collect();
            for (idx, code) in code_lines.iter().enumerate() {
                for pattern in RNG_PATTERNS {
                    if code.contains(pattern) && !allowed_by_comment(&raw_lines, idx) {
                        findings.push(Finding {
                            path: file.clone(),
                            line: idx + 1,
                            message: format!(
                                "'{pattern}' outside crates/rng — all randomness must be \
                                 seeded for reproducible experiments"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Lint 4: console printing in library code. Harness binaries
/// (`src/bin/`), `benches/` targets and `crates/xtask` itself print by
/// design; every other `crates/*/src` file must stay silent.
fn print_lint(root: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
        .collect();
    dirs.sort();

    for dir in dirs {
        for file in rust_files(&dir.join("src")) {
            if file.components().any(|c| c.as_os_str() == "bin") {
                continue;
            }
            scan_forbidden(&file, &PRINT_PATTERNS, findings, |pattern| {
                format!(
                    "'{pattern}' in library code — return data or use the telemetry \
                     layer; binaries own stdout/stderr, or justify with a \
                     '// {ALLOW_MARKER} — why' comment"
                )
            });
        }
    }
}

/// Lint 5: trait-object buffer dispatch on the per-cycle hot path. The
/// switch and network crates are generic over `B: SwitchBuffer` with the
/// enum-dispatched `AnyBuffer` default; reintroducing `Box<dyn
/// SwitchBuffer>` there silently re-adds a virtual call per buffer
/// operation. The compatibility facade in `crates/core` and integration
/// tests under `tests/` stay exempt.
fn boxed_buffer_lint(root: &Path, findings: &mut Vec<Finding>) {
    for krate in MONOMORPHIC_CRATES {
        for file in rust_files(&root.join(krate).join("src")) {
            scan_forbidden(&file, &BOXED_BUFFER_PATTERNS, findings, |_| {
                format!(
                    "'Box<dyn SwitchBuffer>' on the simulation data path — use the \
                     generic parameter `B: SwitchBuffer` (enum-dispatched `AnyBuffer` \
                     for kind-selected configs), or justify with a \
                     '// {ALLOW_MARKER} — why' comment"
                )
            });
        }
    }
}

/// Lint 6: consuming-builder methods must be `#[must_use]`. A `pub fn`
/// in `crates/core` or `crates/net` that takes `self` by value and
/// returns `Self` is a builder step; calling it without using the result
/// silently drops the new configuration. The lint requires a local
/// `#[must_use]` attribute in the contiguous attribute/doc block directly
/// above the signature (type-level `#[must_use]` also protects callers,
/// but the local marker keeps the intent visible at every site), or a
/// `// lint: allow — why` waiver.
fn must_use_lint(root: &Path, findings: &mut Vec<Finding>) {
    for krate in MUST_USE_CRATES {
        for file in rust_files(&root.join(krate).join("src")) {
            scan_must_use_file(&file, findings);
        }
    }
}

fn scan_must_use_file(path: &Path, findings: &mut Vec<Finding>) {
    let Ok(source) = fs::read_to_string(path) else {
        findings.push(Finding {
            path: path.to_path_buf(),
            line: 0,
            message: "unreadable file".into(),
        });
        return;
    };
    let code_lines = strip_comments_and_strings(&source);
    let raw_lines: Vec<&str> = source.lines().collect();

    for (idx, code) in code_lines.iter().enumerate() {
        let trimmed = code.trim_start();
        if !(trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ")) {
            continue;
        }
        // Gather the signature, which may span lines, up to its body or
        // terminating semicolon (trait declarations).
        let mut signature = String::new();
        for sig_line in code_lines.iter().skip(idx).take(8) {
            signature.push_str(sig_line.trim());
            signature.push(' ');
            if sig_line.contains('{') || sig_line.contains(';') {
                break;
            }
        }
        if !is_consuming_builder(&signature) {
            continue;
        }
        if has_must_use_above(&raw_lines, idx) || allowed_by_comment(&raw_lines, idx) {
            continue;
        }
        findings.push(Finding {
            path: path.to_path_buf(),
            line: idx + 1,
            message: format!(
                "consuming builder method without #[must_use] — dropping the \
                 return value discards the configuration; add #[must_use] or \
                 justify with a '// {ALLOW_MARKER} — why' comment"
            ),
        });
    }
}

/// Whether a (single-line, stripped) signature takes `self` by value and
/// returns `Self` — the shape of a chainable builder step.
fn is_consuming_builder(signature: &str) -> bool {
    let by_value_self = signature.contains("(mut self")
        || signature.contains("(self,")
        || signature.contains("(self)");
    let returns_self = signature
        .split("->")
        .nth(1)
        .is_some_and(|ret| ret.trim_start().starts_with("Self"));
    by_value_self && returns_self
}

/// Whether the contiguous attribute/doc block directly above line `idx`
/// contains `#[must_use]` (with or without a reason string).
fn has_must_use_above(raw_lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim_start();
        if trimmed.contains("#[must_use") {
            return true;
        }
        if trimmed.is_empty() || !(trimmed.starts_with("#[") || trimmed.starts_with("//")) {
            return false;
        }
    }
    false
}

/// Crates whose every `src/` module must open with a `//!` overview —
/// the sharded simulation core, where a file without a stated design
/// intent (phases, islands, determinism) is a maintenance hazard.
const MODULE_DOC_CRATES: [&str; 2] = ["crates/net", "crates/shard"];

/// Lint 3: every library crate root must deny missing docs, and every
/// module of [`MODULE_DOC_CRATES`] must carry a `//!` overview.
fn docs_lint(root: &Path, findings: &mut Vec<Finding>) {
    let mut lib_roots: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src").join("lib.rs");
            if lib.is_file() {
                lib_roots.push(lib);
            }
        }
    }
    let root_lib = root.join("src").join("lib.rs");
    if root_lib.is_file() {
        lib_roots.push(root_lib);
    }
    lib_roots.sort();

    for lib in lib_roots {
        let Ok(source) = fs::read_to_string(&lib) else {
            continue;
        };
        if !source.contains("#![deny(missing_docs)]") {
            findings.push(Finding {
                path: lib,
                line: 1,
                message: "crate root must carry #![deny(missing_docs)]".into(),
            });
        }
    }

    for krate in MODULE_DOC_CRATES {
        for file in rust_files(&root.join(krate).join("src")) {
            let Ok(source) = fs::read_to_string(&file) else {
                continue;
            };
            if !source.lines().any(|l| l.trim_start().starts_with("//!")) {
                findings.push(Finding {
                    path: file,
                    line: 1,
                    message: format!(
                        "modules of {krate} must open with a //! overview \
                         (what the module is and how it fits the sharded core)"
                    ),
                });
            }
        }
    }
}

/// Lint 7: relative markdown links must resolve. Scans the root-level
/// `*.md` files and everything under `docs/`, skipping fenced code
/// blocks; a link target is the text between `](` and `)`, minus any
/// `#fragment` and quoted title, resolved against the file's directory.
fn doc_link_lint(root: &Path, findings: &mut Vec<Finding>) {
    for file in markdown_files(root) {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        let dir = file.parent().unwrap_or(root).to_path_buf();
        let mut in_fence = false;
        for (idx, line) in source.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in markdown_link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                    || target.is_empty()
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue;
                }
                if !dir.join(path_part).exists() {
                    findings.push(Finding {
                        path: file.clone(),
                        line: idx + 1,
                        message: format!(
                            "dead relative link '{target}' — the target does not exist"
                        ),
                    });
                }
            }
        }
    }
}

/// The markdown files lint 7 covers: `*.md` at the workspace root plus
/// everything under `docs/`, recursively, in sorted order.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = fs::read_dir(root) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_file() && path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    let mut stack = vec![root.join("docs")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Extracts inline-link targets from one markdown line: the text between
/// every `](` and its closing `)`, with any ` "title"` suffix dropped.
fn markdown_link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find("](") {
        let tail = &rest[open + 2..];
        let Some(close) = tail.find(')') else {
            break;
        };
        let target = tail[..close].trim();
        // Drop an optional quoted title: [text](path "title").
        let target = target.split_whitespace().next().unwrap_or("");
        targets.push(target.to_owned());
        rest = &tail[close + 1..];
    }
    targets
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Net `{`/`}` count of a code line (comments and strings pre-stripped).
fn brace_delta(code: &str) -> i32 {
    code.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Replaces comments, string literals and char literals with spaces so
/// pattern matching only sees real code. Line structure is preserved.
fn strip_comments_and_strings(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }

    let mut state = State::Code;
    let mut lines = Vec::new();
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(chars.len());
        let mut i = 0;
        if state == State::LineComment {
            state = State::Code; // line comments end at the newline
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        out.push_str("  ");
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        out.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        out.push(' ');
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            for _ in i..=j {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal or lifetime. A literal closes with a
                        // quote one or two chars away; a lifetime does not.
                        if next == Some('\\') {
                            let close = chars.iter().skip(i + 2).position(|&c| c == '\'');
                            let end = close.map_or(chars.len(), |o| i + 2 + o);
                            for _ in i..=end.min(chars.len() - 1) {
                                out.push(' ');
                            }
                            i = end + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            out.push_str("   ");
                            i += 3;
                        } else {
                            out.push(c); // lifetime tick
                            i += 1;
                        }
                    }
                    _ => {
                        out.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    out.push(' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        out.push_str("  ");
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else {
                        if c == '"' {
                            state = State::Code;
                        }
                        out.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"'
                        && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
                    {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
        }
        lines.push(out);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings() {
        let src = "let x = 1; // a.unwrap() in a comment\nlet s = \".expect(\"; panic!(\"msg\");";
        let lines = strip_comments_and_strings(src);
        assert!(!lines[0].contains(".unwrap()"));
        assert!(!lines[1].contains(".expect("));
        assert!(lines[1].contains("panic!("), "real code survives");
    }

    #[test]
    fn stripper_handles_block_comments_across_lines() {
        let src = "/* a\n.unwrap()\n*/ let y = 2;";
        let lines = strip_comments_and_strings(src);
        assert!(!lines[1].contains(".unwrap()"));
        assert!(lines[2].contains("let y = 2;"));
    }

    #[test]
    fn stripper_keeps_lifetimes_intact() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lines = strip_comments_and_strings(src);
        assert!(lines[0].contains("fn f<'a>"));
        assert!(lines[0].contains("{ x }"));
    }

    #[test]
    fn boxed_buffer_pattern_ignores_doc_comments() {
        let src = "/// Compare with `Box<dyn SwitchBuffer>` for context.\nbuffers: Vec<Box<dyn SwitchBuffer>>,";
        let lines = strip_comments_and_strings(src);
        assert!(
            !lines[0].contains(BOXED_BUFFER_PATTERNS[0]),
            "doc text is exempt"
        );
        assert!(
            lines[1].contains(BOXED_BUFFER_PATTERNS[0]),
            "real code is caught"
        );
    }

    #[test]
    fn consuming_builder_detection() {
        assert!(is_consuming_builder(
            "pub fn seed(mut self, s: u64) -> Self {"
        ));
        assert!(is_consuming_builder("pub const fn with_x(self) -> Self {"));
        assert!(is_consuming_builder(
            "pub fn with_y(self, y: u64) -> Self {"
        ));
        assert!(!is_consuming_builder("pub fn len(&self) -> usize {"));
        assert!(!is_consuming_builder(
            "pub fn set(&mut self, x: u64) -> Self {"
        ));
        assert!(!is_consuming_builder(
            "pub fn build(self) -> Result<Buffer, Error> {"
        ));
    }

    #[test]
    fn must_use_block_walks_attributes_and_docs() {
        let lines = [
            "#[must_use]",
            "/// Docs between.",
            "pub fn f(self) -> Self {",
        ];
        assert!(has_must_use_above(&lines, 2));
        let with_reason = ["#[must_use = \"why\"]", "pub fn f(self) -> Self {"];
        assert!(has_must_use_above(&with_reason, 1));
        let gap = ["#[must_use]", "", "pub fn f(self) -> Self {"];
        assert!(
            !has_must_use_above(&gap, 2),
            "a blank line breaks the block"
        );
        let none = ["fn other() {}", "pub fn f(self) -> Self {"];
        assert!(!has_must_use_above(&none, 1));
    }

    #[test]
    fn brace_delta_counts_net_braces() {
        assert_eq!(brace_delta("mod tests {"), 1);
        assert_eq!(brace_delta("} } {"), -1);
    }

    #[test]
    fn markdown_link_targets_extracts_paths() {
        assert_eq!(
            markdown_link_targets("see [a](docs/A.md) and [b](B.md#sec)"),
            vec!["docs/A.md".to_owned(), "B.md#sec".to_owned()]
        );
        assert_eq!(
            markdown_link_targets(r#"[t](path.md "a title")"#),
            vec!["path.md".to_owned()]
        );
        assert_eq!(
            markdown_link_targets("[x](https://example.com) plain ] ( text"),
            vec!["https://example.com".to_owned()]
        );
        assert!(markdown_link_targets("no links here").is_empty());
    }
}
