//! Side-by-side comparison of the four buffer designs on one workload.
//!
//! Sweeps offered load on the paper's 64×64 Omega network and prints, for
//! each design, the delivered throughput and latency — a compact version
//! of the paper's whole evaluation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example buffer_comparison
//! ```

use damq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = NetworkConfig::new(64, 4).slots_per_buffer(4).seed(99);
    let loads = [0.2, 0.4, 0.5, 0.6, 0.7, 0.8];

    println!("64x64 Omega, 4 slots/buffer, blocking, smart arbitration");
    println!("cells are: delivered throughput @ mean latency (clock cycles)");
    println!();
    print!("{:>6}", "load");
    for kind in BufferKind::ALL {
        print!("{:>22}", kind.name());
    }
    println!();

    for load in loads {
        print!("{load:>6.2}");
        for kind in BufferKind::ALL {
            let m = measure(base.buffer_kind(kind).offered_load(load), 500, 2_000)?;
            print!(
                "{:>22}",
                format!("{:.2} @ {:>6.1}", m.delivered, m.latency_clocks)
            );
        }
        println!();
    }

    println!();
    println!("saturation throughput (bisection search):");
    let mut fifo_sat = None;
    let mut damq_sat = None;
    for kind in BufferKind::ALL {
        let sat = find_saturation(base.buffer_kind(kind), SaturationOptions::default())?;
        println!("  {:>4}: {:.2}", kind.name(), sat.throughput);
        match kind {
            BufferKind::Fifo => fifo_sat = Some(sat.throughput),
            BufferKind::Damq => damq_sat = Some(sat.throughput),
            _ => {}
        }
    }
    let (fifo, damq) = (fifo_sat.unwrap(), damq_sat.unwrap());
    println!();
    println!(
        "DAMQ sustains {:.0}% more throughput than FIFO with the same storage",
        (damq / fifo - 1.0) * 100.0
    );
    Ok(())
}
