//! Tree saturation: why no buffer design survives a hot spot.
//!
//! Pfister & Norton showed that a few percent of traffic aimed at one
//! memory module saturates the tree of switches rooted at it, and the
//! paper's Table 6 confirms the buffer design cannot help. This example
//! makes the effect visible: the same network, same load, with and without
//! a 5% hot spot.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example hotspot_tree_saturation
//! ```

use damq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = NetworkConfig::new(64, 4).slots_per_buffer(4).seed(7);

    println!("== uniform traffic: DAMQ shrugs off load 0.5 ==");
    report(base.traffic(TrafficPattern::Uniform).offered_load(0.5))?;

    println!();
    println!("== 5% hot spot, same load: tree saturation ==");
    report(
        base.traffic(TrafficPattern::paper_hot_spot())
            .offered_load(0.5),
    )?;

    println!();
    println!("== buffer design does not matter under a hot spot ==");
    for kind in BufferKind::ALL {
        let sat = find_saturation(
            base.traffic(TrafficPattern::paper_hot_spot())
                .buffer_kind(kind),
            SaturationOptions::default(),
        )?;
        println!(
            "{kind:>4}: saturation throughput {:.2} (uniform-traffic DAMQ manages ~0.7)",
            sat.throughput
        );
    }
    println!();
    println!("the 5% hot spot caps every design near 1/(0.05*64 + 0.95) ≈ 0.24,");
    println!("which is why RP3 used a separate combining network for hot traffic.");
    Ok(())
}

fn report(cfg: NetworkConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = NetworkSim::new(cfg.buffer_kind(BufferKind::Damq))?;
    sim.warm_up(500);
    sim.run(2_000);
    let m = sim.metrics();
    println!(
        "delivered {:.3} of {:.3} offered; mean latency {:.1} clocks; backlog {} packets",
        m.delivered_throughput(),
        m.offered_throughput(),
        m.mean_latency_clocks(),
        sim.source_backlog(),
    );
    // Show how deliveries concentrate (or not) across sinks.
    let per_sink = m.per_sink_delivered();
    let hot = per_sink[0];
    let rest: u64 = per_sink[1..].iter().sum();
    println!(
        "sink 0 received {hot} packets; the other 63 sinks averaged {:.1}",
        rest as f64 / 63.0
    );
    Ok(())
}
