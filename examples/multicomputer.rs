//! A four-node ComCoBB multicomputer exchanging messages.
//!
//! The ComCoBB was designed as the communication coprocessor of a
//! point-to-point multicomputer (paper §1): this example wires four chips
//! into a bidirectional ring, programs virtual circuits, and has every
//! host send a multi-packet message two hops clockwise — all at clock-
//! cycle granularity, through the DAMQ buffers and 4-cycle cut-through of
//! the real micro-architecture model.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example multicomputer
//! ```

use damq::microarch::{ChipConfig, RouteEntry, System, PROCESSOR_PORT};

// Port roles on each node: 0 = clockwise out/in pair, 1 = counter-clockwise.
const CW: usize = 0;
const CCW: usize = 1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::new();
    let nodes: Vec<_> = (0..4)
        .map(|_| sys.add_node(ChipConfig::comcobb()))
        .collect();

    // Bidirectional ring: node i's CW port pairs with node (i+1)'s CCW port.
    for i in 0..4 {
        let next = (i + 1) % 4;
        sys.connect(nodes[i], CW, nodes[next], CCW)?;
        sys.connect(nodes[next], CCW, nodes[i], CW)?;
    }

    // Virtual circuit 0x80+i: node i's host -> two hops -> node (i+2)'s
    // host. Nodes 0 and 1 route clockwise, nodes 2 and 3 counter-clockwise:
    // with all four circuits clockwise the channel-dependency graph would
    // be the full ring cycle, and four simultaneous multi-packet messages
    // deadlock (see `ring_deadlock.rs` in the microarch tests — the
    // classic result that store-and-forward rings need either careful
    // circuit placement or virtual channels). Splitting directions keeps
    // each link's dependency chain acyclic.
    for i in 0..4 {
        let header = 0x80 + i as u8;
        let (out, inp) = if i < 2 { (CW, CCW) } else { (CCW, CW) };
        let hop1 = if i < 2 { (i + 1) % 4 } else { (i + 3) % 4 };
        let dest = (i + 2) % 4;
        sys.program_route(
            nodes[i],
            PROCESSOR_PORT,
            header,
            RouteEntry {
                output: out,
                new_header: header,
            },
        )?;
        sys.program_route(
            nodes[hop1],
            inp,
            header,
            RouteEntry {
                output: out,
                new_header: header,
            },
        )?;
        sys.program_route(
            nodes[dest],
            inp,
            header,
            RouteEntry {
                output: PROCESSOR_PORT,
                new_header: header,
            },
        )?;
    }

    // Every host sends a 100-byte message (4 packets) at once: the ring
    // carries four crossing multi-packet transfers simultaneously.
    for (i, &node) in nodes.iter().enumerate() {
        let message = format!("greetings from node {i}! {}", "x".repeat(75));
        sys.host_send(node, 0x80 + i as u8, message.into_bytes());
    }

    let idle_at = sys.run_until_idle(100_000);
    println!("all traffic drained at clock cycle {idle_at}");
    println!();
    for (i, &node) in nodes.iter().enumerate() {
        for message in sys.host_received(node) {
            let text = String::from_utf8_lossy(message);
            let preview = &text[..text.len().min(24)];
            println!(
                "node {i} received {} bytes from circuit: \"{preview}…\"",
                message.len()
            );
        }
    }
    sys.check_invariants();
    println!();
    println!("each message crossed two chips; every hop cut through in 4 cycles");
    println!("when its link was idle, and queued in DAMQ linked lists when not.");
    Ok(())
}
