//! Simulate the paper's 64×64 Omega network and watch it run.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example omega_simulation [fifo|samq|safc|damq] [load]
//! ```
//!
//! e.g. `cargo run --release --example omega_simulation damq 0.6`.

use damq::net::CLOCKS_PER_CYCLE;
use damq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let kind = match args.next().as_deref() {
        Some("fifo") => BufferKind::Fifo,
        Some("samq") => BufferKind::Samq,
        Some("safc") => BufferKind::Safc,
        Some("damq") | None => BufferKind::Damq,
        Some(other) => return Err(format!("unknown buffer kind {other:?}").into()),
    };
    let load: f64 = args.next().map_or(Ok(0.5), |s| s.parse())?;

    println!("64x64 Omega network, 4x4 {kind} switches, 4 slots/buffer, blocking protocol");
    println!("offered load {load:.2} packets/terminal/cycle (1 cycle = {CLOCKS_PER_CYCLE} clocks)");
    println!();

    let mut sim = NetworkSim::new(
        NetworkConfig::new(64, 4)
            .buffer_kind(kind)
            .slots_per_buffer(4)
            .offered_load(load)
            .seed(2024),
    )?;

    println!(
        "{:>7} {:>9} {:>9} {:>8} {:>10} {:>9} {:>8}",
        "cycle", "generated", "delivered", "in-net", "backlog", "thr", "lat(clk)"
    );
    for chunk in 1..=10 {
        sim.run(500);
        let m = sim.metrics();
        println!(
            "{:>7} {:>9} {:>9} {:>8} {:>10} {:>9.3} {:>8.1}",
            chunk * 500,
            m.generated(),
            m.delivered(),
            sim.packets_in_flight(),
            sim.source_backlog(),
            m.delivered_throughput(),
            m.mean_latency_clocks(),
        );
    }

    let m = sim.metrics();
    println!();
    if m.delivered_throughput() + 0.01 < m.offered_throughput() {
        println!(
            "network is SATURATED: delivering {:.3} of {:.3} offered; {} packets backed up",
            m.delivered_throughput(),
            m.offered_throughput(),
            sim.source_backlog()
        );
        println!("(try a lower load, or the DAMQ buffer if you weren't using it)");
    } else {
        println!(
            "network keeps up: {:.3} delivered ≈ {:.3} offered, mean latency {:.1} clocks",
            m.delivered_throughput(),
            m.offered_throughput(),
            m.mean_latency_clocks()
        );
    }
    Ok(())
}
