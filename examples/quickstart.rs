//! Quickstart: the four buffer designs and what makes DAMQ different.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use damq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four packets at one input port of a 4x4 switch: the first three are
    // routed to output 3 (currently busy downstream), the last to the idle
    // output 1.
    println!("== head-of-line blocking demo ==");
    let config = BufferConfig::new(4, 8); // 8 slots: 2 per queue when static
    for kind in BufferKind::ALL {
        let mut buf = config.build(kind)?;
        for i in 0..2 {
            let p = Packet::builder(NodeId::new(i), NodeId::new(30)).build();
            buf.try_enqueue(OutputPort::new(3), p)?;
        }
        let p = Packet::builder(NodeId::new(3), NodeId::new(10)).build();
        buf.try_enqueue(OutputPort::new(1), p)?;

        // Output 1 is idle: can this buffer serve it right now?
        let servable = buf.queue_len(OutputPort::new(1));
        println!(
            "{kind:>4}: packet for idle output 1 is {}",
            if servable > 0 {
                "TRANSMITTABLE (no HOL blocking)"
            } else {
                "stuck behind blocked packets (HOL blocking)"
            }
        );
    }

    // The storage-sharing difference between SAMQ and DAMQ.
    println!();
    println!("== dynamic vs static allocation demo ==");
    let burst_config = BufferConfig::new(4, 4); // the paper's 4-slot buffers
    let mut samq = SamqBuffer::new(burst_config)?;
    let mut damq = DamqBuffer::new(burst_config)?;
    // Four packets, all for output 2 (bursty traffic).
    for i in 0..4 {
        let p = || Packet::builder(NodeId::new(i), NodeId::new(42)).build();
        let samq_ok = samq.try_enqueue(OutputPort::new(2), p()).is_ok();
        let damq_ok = damq.try_enqueue(OutputPort::new(2), p()).is_ok();
        println!(
            "burst packet {i}: SAMQ {} | DAMQ {}",
            if samq_ok {
                "accepted"
            } else {
                "REJECTED (static queue full)"
            },
            if damq_ok { "accepted" } else { "rejected" },
        );
    }
    println!(
        "SAMQ wasted {} of its {} slots; DAMQ used all {}.",
        samq.free_slots(),
        samq.capacity_slots(),
        damq.used_slots(),
    );

    // A whole switch, one cycle at a time.
    println!();
    println!("== a 4x4 DAMQ switch in action ==");
    let mut sw = Switch::new(
        SwitchConfig::new(4)
            .buffer_kind(BufferKind::Damq)
            .slots_per_buffer(4)
            .arbiter_policy(ArbiterPolicy::Smart),
    )?;
    // Three packets arrive: two contend for output 0, one goes to output 2.
    sw.receive(
        InputPort::new(0),
        OutputPort::new(0),
        Packet::builder(NodeId::new(0), NodeId::new(0)).build(),
    )?;
    sw.receive(
        InputPort::new(1),
        OutputPort::new(0),
        Packet::builder(NodeId::new(1), NodeId::new(0)).build(),
    )?;
    sw.receive(
        InputPort::new(1),
        OutputPort::new(2),
        Packet::builder(NodeId::new(1), NodeId::new(2)).build(),
    )?;
    let mut cycle = 0;
    while sw.packets_resident() > 0 {
        cycle += 1;
        let sent = sw.transmit_cycle(|_, _| true);
        for d in &sent {
            println!("cycle {cycle}: {} -> {} ({})", d.input, d.output, d.packet);
        }
    }
    println!("drained in {cycle} cycles");
    Ok(())
}
