//! Watch a packet cut through the ComCoBB chip in four clock cycles.
//!
//! Reproduces the scenario of the paper's Table 1 at clock-cycle
//! granularity, then shows what happens when the output port is busy (the
//! packet is buffered in the DAMQ linked lists and forwarded later).
//!
//! Run with:
//!
//! ```sh
//! cargo run --example virtual_cut_through
//! ```

use damq::microarch::{Chip, ChipConfig, ChipEvent, RouteEntry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== case 1: idle output -> virtual cut-through ==");
    let mut chip = Chip::new(ChipConfig::comcobb());
    chip.program_route(
        0,
        0x20,
        RouteEntry {
            output: 2,
            new_header: 0x21,
        },
    )?;
    chip.input_wire_mut(0)
        .drive_packet(0, 0x20, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    chip.run_to_quiescence(64);
    print!("{}", chip.trace().render());
    let turnaround = chip
        .trace()
        .first(|e| matches!(e.event, ChipEvent::StartBitSent))
        .expect("forwarded")
        .cycle;
    println!("start-bit-to-start-bit turn-around: {turnaround} cycles");
    println!("(the packet was still arriving when its head left: cut-through)");

    println!();
    println!("== case 2: busy output -> store, then forward ==");
    let mut chip = Chip::new(ChipConfig::comcobb());
    chip.program_route(
        0,
        0x20,
        RouteEntry {
            output: 2,
            new_header: 0x21,
        },
    )?;
    chip.program_route(
        1,
        0x20,
        RouteEntry {
            output: 2,
            new_header: 0x2A,
        },
    )?;
    // Port 1's long packet wins output 2 first; port 0's packet must wait.
    chip.input_wire_mut(1).drive_packet(0, 0x20, &[0xEE; 32]);
    chip.input_wire_mut(0).drive_packet(2, 0x20, &[1, 2, 3]);
    chip.run_to_quiescence(128);
    let packets = chip.output_log(2).packets();
    for (start, header, data) in &packets {
        println!(
            "output 2 sent start bit at cycle {start}: header {header:#04x}, {} data bytes",
            data.len()
        );
    }
    let first_len = packets[0].2.len() as u64;
    let gap = packets[1].0 - packets[0].0;
    println!(
        "the second packet waited for the first's {first_len} bytes (gap {gap} cycles), \
         buffered in the DAMQ linked lists"
    );
    chip.check_invariants();
    Ok(())
}
