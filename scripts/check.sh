#!/usr/bin/env bash
# The repo's offline quality gate: lints, build, the full test suite (with
# and without per-operation invariant audits), the exhaustive 2x2 model
# checker, the fault-injection smoke (self-healing harness + resume), and
# rustdoc with warnings denied (`#![deny(missing_docs)]` in the crates
# turns any missing doc into a hard failure here).
#
# Every gate propagates its exit code: `set -euo pipefail` aborts on the
# first failing command (including inside pipelines), and the ERR trap
# names the gate that failed so CI logs point at the culprit.
#
# Usage: scripts/check.sh                 # run every gate
#        scripts/check.sh fault-smoke     # just the fault-injection smoke
#        scripts/check.sh parallel-smoke  # just the sharded-stepping smoke
set -Eeuo pipefail
cd "$(dirname "$0")/.."

CURRENT_GATE="startup"
trap 'echo "check.sh: FAILED in gate: $CURRENT_GATE" >&2' ERR

gate() {
    CURRENT_GATE="$1"
    echo "== $1 =="
}

# Satellite gate: the tiny fault sweep through the self-healing harness.
# Asserts (1) a forced-panic and a wedged cell are isolated, not fatal
# (the damq-bench integration test); (2) the smoke grid completes end to
# end through the real binary; (3) `--resume` on a truncated checkpoint
# replays only the missing cell and still reports every cell.
fault_smoke() {
    gate "fault-smoke: forced-panic + wedged cells stay isolated"
    cargo test -q -p damq-bench --test self_healing

    gate "fault-smoke: tiny fault sweep completes"
    local tmp
    tmp="$(mktemp -d)"
    DAMQ_RESULTS_DIR="$tmp" \
        cargo run -q -p damq-bench --bin fault_degradation -- --smoke \
        > /dev/null

    gate "fault-smoke: resume replays only the missing cell"
    local sidecar="$tmp/json/fault_degradation_smoke.cells.jsonl"
    local total
    total="$(wc -l < "$sidecar")"
    # Drop the last completed cell, as if the sweep died mid-run.
    head -n "$((total - 1))" "$sidecar" > "$sidecar.tmp"
    mv "$sidecar.tmp" "$sidecar"
    DAMQ_RESULTS_DIR="$tmp" \
        cargo run -q -p damq-bench --bin fault_degradation -- --smoke --resume \
        > /dev/null
    local report="$tmp/json/fault_degradation_smoke.json"
    grep -q "\"resumed\": $((total - 1))" "$report"
    grep -q '"cells": 1' "$report"
    grep -q '"ok": 1' "$report"
    # The assembled report still carries every cell of the grid.
    [ "$(grep -c '"buffer":' "$report")" -eq "$total" ]
    rm -rf "$tmp"
}

# Satellite gate: the sharded simulation core must be byte-identical to
# serial stepping. Asserts (1) the 2-thread fingerprint test (metrics,
# residual state and the full JSONL trace equal the serial run); (2) the
# parallel_scaling harness's own smoke cross-check through the release
# binary, exercising the real phase pool.
parallel_smoke() {
    gate "parallel-smoke: 2-thread run is byte-identical to serial"
    cargo test -q -p damq-net --test parallel_equivalence -- two_thread

    gate "parallel-smoke: scaling harness smoke agrees"
    cargo run -q --release -p damq-bench --bin parallel_scaling -- --smoke \
        > /dev/null
}

case "${1:-all}" in
fault-smoke)
    fault_smoke
    echo "fault-smoke passed"
    exit 0
    ;;
parallel-smoke)
    parallel_smoke
    echo "parallel-smoke passed"
    exit 0
    ;;
all) ;;
*)
    echo "usage: scripts/check.sh [fault-smoke|parallel-smoke]" >&2
    exit 2
    ;;
esac

gate "lint (custom lints + clippy + rustfmt)"
cargo xtask lint

gate "build (release)"
cargo build --release --workspace

gate "tests"
cargo test --workspace -q

gate "tests under strict-audit (audit every buffer op)"
cargo test -q -p damq-core --features strict-audit
cargo test -q -p damq-net --features strict-audit
cargo test -q -p damq-microarch --features strict-audit

gate "model checker (2x2 exhaustive, small bound)"
cargo run -q -p damq-verify --bin model_check -- --quick

gate "telemetry: golden 2x2 trace is byte-stable"
cargo test -q -p damq-net --test telemetry

gate "telemetry: disabled instrumentation compiles away"
cargo bench -p damq-bench --bench no_op_sink_overhead

gate "dispatch smoke: all three dispatch paths agree"
cargo bench -p damq-bench --bench sim_throughput -- --smoke

fault_smoke

parallel_smoke

gate "rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "all checks passed"
