#!/usr/bin/env bash
# The repo's offline quality gate: static analysis (twelve structural
# lints + unsafe ledger + clippy + rustfmt), build, the full test suite
# (with and without per-operation invariant audits), the exhaustive 2x2
# model checker, the fault-injection smoke (self-healing harness +
# resume), the observability smoke (metrics-registry golden + disabled
# overhead), the chaos soak smoke (recovery protocols under randomized
# fault storms, minimized-reproducer loop), sanitizer smokes (miri +
# TSan, probed and skipped with a note
# where the toolchain lacks them), and rustdoc with warnings denied
# (`#![deny(missing_docs)]` in the crates turns any missing doc into a
# hard failure here).
#
# Every gate propagates its exit code: `set -euo pipefail` aborts on the
# first failing command (including inside pipelines), and the ERR trap
# names the gate that failed so CI logs point at the culprit.
#
# Usage: scripts/check.sh                  # run every gate
#        scripts/check.sh analyze          # just the static-analysis gate
#        scripts/check.sh fault-smoke      # just the fault-injection smoke
#        scripts/check.sh parallel-smoke   # just the sharded-stepping smoke
#        scripts/check.sh obs-smoke        # just the observability smoke
#        scripts/check.sh soa-smoke        # just the SoA hot-path smoke
#        scripts/check.sh chaos-smoke      # just the chaos soak smoke
#        scripts/check.sh sanitizer-smoke  # miri + TSan, skip when unsupported
set -Eeuo pipefail
cd "$(dirname "$0")/.."

CURRENT_GATE="startup"
trap 'echo "check.sh: FAILED in gate: $CURRENT_GATE" >&2' ERR

gate() {
    CURRENT_GATE="$1"
    echo "== $1 =="
}

# Satellite gate: the tiny fault sweep through the self-healing harness.
# Asserts (1) a forced-panic and a wedged cell are isolated, not fatal
# (the damq-bench integration test); (2) the smoke grid completes end to
# end through the real binary; (3) `--resume` on a truncated checkpoint
# replays only the missing cell and still reports every cell.
fault_smoke() {
    gate "fault-smoke: forced-panic + wedged cells stay isolated"
    cargo test -q -p damq-bench --test self_healing

    gate "fault-smoke: tiny fault sweep completes"
    local tmp
    tmp="$(mktemp -d)"
    DAMQ_RESULTS_DIR="$tmp" \
        cargo run -q -p damq-bench --bin fault_degradation -- --smoke \
        > /dev/null

    gate "fault-smoke: resume replays only the missing cell"
    local sidecar="$tmp/json/fault_degradation_smoke.cells.jsonl"
    local total
    total="$(wc -l < "$sidecar")"
    # Drop the last completed cell, as if the sweep died mid-run.
    head -n "$((total - 1))" "$sidecar" > "$sidecar.tmp"
    mv "$sidecar.tmp" "$sidecar"
    DAMQ_RESULTS_DIR="$tmp" \
        cargo run -q -p damq-bench --bin fault_degradation -- --smoke --resume \
        > /dev/null
    local report="$tmp/json/fault_degradation_smoke.json"
    grep -q "\"resumed\": $((total - 1))" "$report"
    grep -q '"cells": 1' "$report"
    grep -q '"ok": 1' "$report"
    # The assembled report still carries every cell of the grid.
    [ "$(grep -c '"buffer":' "$report")" -eq "$total" ]
    rm -rf "$tmp"
}

# Satellite gate: the sharded simulation core must be byte-identical to
# serial stepping. Asserts (1) the 2-thread fingerprint test (metrics,
# residual state and the full JSONL trace equal the serial run); (2) the
# parallel_scaling harness's own smoke cross-check through the release
# binary, exercising the real phase pool.
parallel_smoke() {
    gate "parallel-smoke: 2-thread run is byte-identical to serial"
    cargo test -q -p damq-net --test parallel_equivalence -- two_thread

    gate "parallel-smoke: scaling harness smoke agrees"
    cargo run -q --release -p damq-bench --bin parallel_scaling -- --smoke \
        > /dev/null
}

# Satellite gate: the observability layer. Asserts (1) the obs_report
# metrics-registry snapshot on the golden 2x2 run is byte-identical to
# the committed golden (regenerate an intentional change with
# `cargo run --release -p damq-bench --bin obs_report`); (2) the
# always-on registry really is free when disabled (the
# no_op_registry_overhead bench fails past a 25% overhead ratio).
obs_smoke() {
    gate "obs-smoke: registry snapshot matches the committed golden"
    local tmp
    tmp="$(mktemp -d)"
    cargo run -q --release -p damq-bench --bin obs_report -- \
        --out "$tmp/obs_report.json" > /dev/null
    diff -u results/json/obs_report.json "$tmp/obs_report.json"
    rm -rf "$tmp"

    gate "obs-smoke: disabled metrics registry is free"
    cargo bench -p damq-bench --bench no_op_registry_overhead
}

# Satellite gate: the SoA hot path. Asserts (1) the SoA slot pool and
# its AoS twins stay equivalent with every per-operation invariant audit
# enabled (`strict-audit`); (2) the end-to-end AoS-vs-SoA network
# fingerprints (all five designs, faulted runs included) are
# byte-identical; (3) a network forced fully idle takes the quiescence
# fast path every switch-cycle and an idle-skip-off run fingerprints
# identically (`idle_skip_correctness`); (4) the always-on registry that
# carries `net.idle_skipped` is still free when disabled.
soa_smoke() {
    gate "soa-smoke: SoA pool vs AoS twins under strict-audit"
    cargo test -q -p damq-core --features strict-audit --test soa_equivalence

    gate "soa-smoke: AoS-vs-SoA network fingerprints are byte-identical"
    cargo test -q -p damq-net --test dispatch_equivalence

    gate "soa-smoke: idle-skip on/off fingerprints agree"
    cargo test -q -p damq-net --test idle_skip idle_skip_correctness

    gate "soa-smoke: disabled metrics registry is still free"
    cargo bench -p damq-bench --bench no_op_registry_overhead
}

# Satellite gate: the chaos soak harness around the recovery protocols.
# Asserts (1) a seeded invariant mutation surfaces as a minimized,
# replayable reproducer through the crash flight recorder (the
# damq-bench integration test); (2) the CI-sized soak grid — randomized
# per-epoch fault storms against live retransmission and rerouting,
# invariants re-audited every epoch — completes clean through the real
# binary.
chaos_smoke() {
    gate "chaos-smoke: seeded mutation yields a working reproducer"
    cargo test -q -p damq-bench --test chaos_soak

    gate "chaos-smoke: tiny soak grid stays clean"
    local tmp
    tmp="$(mktemp -d)"
    DAMQ_RESULTS_DIR="$tmp" \
        cargo run -q --release -p damq-bench --bin chaos_soak -- --smoke \
        > /dev/null
    # A clean soak leaves no flight dumps behind.
    [ ! -d "$tmp/chaos_dumps" ] || [ -z "$(ls -A "$tmp/chaos_dumps")" ]
    rm -rf "$tmp"
}

# Tentpole gate: the in-tree static analyzer. The twelve structural lints
# (lexer-backed, no regex) must report zero findings, the generated
# unsafe ledger must be fresh, and — in the full run — clippy and
# rustfmt must agree. The bare-lint pass is budgeted at ~2s so it stays
# cheap enough to run on every edit; the xtask prints per-lint timings.
analyze() {
    gate "analyze: twelve structural lints + unsafe-ledger freshness"
    cargo xtask lint --no-cargo

    gate "analyze: clippy + rustfmt"
    cargo xtask lint
}

# Satellite gate: dynamic race detectors over the one crate that holds
# unsafe code (damq-shard) and the sharded fingerprint test. Both
# tools need toolchain components this offline image may not carry, so
# each leg probes first and skips with a note instead of failing —
# the loom-lite model checker (`crates/shard/src/model.rs`, run by the
# ordinary test gate) carries the schedule-interleaving claims either
# way.
sanitizer_smoke() {
    gate "sanitizer-smoke: miri over damq-shard"
    if cargo +nightly miri --version > /dev/null 2>&1; then
        cargo +nightly miri test -q -p damq-shard
    elif cargo miri --version > /dev/null 2>&1; then
        cargo miri test -q -p damq-shard
    else
        echo "  SKIPPED: miri component not installed (offline host)."
        echo "  The exhaustive model checker in crates/shard/src/model.rs"
        echo "  covers the pool's interleaving claims in its place."
    fi

    gate "sanitizer-smoke: ThreadSanitizer over the 2-thread fingerprint"
    # TSan is only sound with an instrumented libstd (-Zbuild-std, which
    # needs the nightly rust-src component): Rust's futex-based Mutex
    # and Condvar live inside libstd, so an uninstrumented build hides
    # every lock-ordering edge from TSan and each mutex-guarded handoff
    # is reported as a false-positive race (measured: ~100 warnings on
    # this suite).
    if rustup component list --toolchain nightly 2> /dev/null \
        | grep -q 'rust-src.*(installed)'; then
        local host
        host="$(rustc -vV | awk '/^host:/ { print $2 }')"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -q -Zbuild-std --target "$host" \
            -p damq-net --test parallel_equivalence -- two_thread
    else
        echo "  SKIPPED: nightly rust-src not installed; TSan without"
        echo "  -Zbuild-std cannot see libstd's futex-based lock edges"
        echo "  and reports false positives on every Mutex handoff."
    fi
}

case "${1:-all}" in
analyze)
    analyze
    echo "analyze passed"
    exit 0
    ;;
fault-smoke)
    fault_smoke
    echo "fault-smoke passed"
    exit 0
    ;;
parallel-smoke)
    parallel_smoke
    echo "parallel-smoke passed"
    exit 0
    ;;
obs-smoke)
    obs_smoke
    echo "obs-smoke passed"
    exit 0
    ;;
soa-smoke)
    soa_smoke
    echo "soa-smoke passed"
    exit 0
    ;;
chaos-smoke)
    chaos_smoke
    echo "chaos-smoke passed"
    exit 0
    ;;
sanitizer-smoke)
    sanitizer_smoke
    echo "sanitizer-smoke passed"
    exit 0
    ;;
all) ;;
*)
    echo "usage: scripts/check.sh [analyze|fault-smoke|parallel-smoke|obs-smoke|soa-smoke|chaos-smoke|sanitizer-smoke]" >&2
    exit 2
    ;;
esac

analyze

gate "build (release)"
cargo build --release --workspace

gate "tests"
cargo test --workspace -q

gate "tests under strict-audit (audit every buffer op)"
cargo test -q -p damq-core --features strict-audit
cargo test -q -p damq-net --features strict-audit
cargo test -q -p damq-microarch --features strict-audit

gate "model checker (2x2 exhaustive, small bound)"
cargo run -q -p damq-verify --bin model_check -- --quick

gate "telemetry: golden 2x2 trace is byte-stable"
cargo test -q -p damq-net --test telemetry

gate "telemetry: disabled instrumentation compiles away"
cargo bench -p damq-bench --bench no_op_sink_overhead

gate "dispatch smoke: all three dispatch paths agree"
cargo bench -p damq-bench --bench sim_throughput -- --smoke

fault_smoke

parallel_smoke

obs_smoke

soa_smoke

chaos_smoke

sanitizer_smoke

gate "rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "all checks passed"
