#!/usr/bin/env bash
# The repo's offline quality gate: lints, build, the full test suite (with
# and without per-operation invariant audits), the exhaustive 2x2 model
# checker, and rustdoc with warnings denied (`#![deny(missing_docs)]` in
# the crates turns any missing doc into a hard failure here).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint (custom lints + clippy + rustfmt) =="
cargo xtask lint

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== tests under strict-audit (audit every buffer op) =="
cargo test -q -p damq-core --features strict-audit
cargo test -q -p damq-net --features strict-audit
cargo test -q -p damq-microarch --features strict-audit

echo "== model checker (2x2 exhaustive, small bound) =="
cargo run -q -p damq-verify --bin model_check -- --quick

echo "== telemetry: golden 2x2 trace is byte-stable =="
cargo test -q -p damq-net --test telemetry

echo "== telemetry: disabled instrumentation compiles away =="
cargo bench -p damq-bench --bench no_op_sink_overhead

echo "== dispatch smoke: all three dispatch paths agree =="
cargo bench -p damq-bench --bench sim_throughput -- --smoke

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "all checks passed"
