#!/usr/bin/env bash
# The repo's offline quality gate: build, full test suite, and rustdoc
# with warnings denied (`#![warn(missing_docs)]` in the crates turns any
# missing doc into a hard failure here).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --workspace -q

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "all checks passed"
