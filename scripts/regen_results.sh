#!/usr/bin/env bash
# Regenerates every table/figure in results/: the text tables (stdout of
# each harness) and the structured JSON reports (written by the harnesses
# to results/json/ as a side effect).
#
# Usage: scripts/regen_results.sh [binary...]
#   With no arguments, runs all 18 harnesses. With arguments, runs only
#   the named ones (e.g. `scripts/regen_results.sh table2 figure3`).
#
# Offline by design: needs only the Rust toolchain already in the tree.
# DAMQ_SWEEP_THREADS caps the sweep engine's worker threads if set.
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_BINARIES=(
  table1 table2 table3 table4 table5 table6 figure3
  markov_4x4 markov_queueing
  tree_saturation burstiness fairness seed_stability
  variable_length dual_network topology_comparison
  ablation_arbitration ablation_dafc
)
BINARIES=("${@:-${ALL_BINARIES[@]}}")

for bin in "${BINARIES[@]}"; do
  if [[ ! " ${ALL_BINARIES[*]} " == *" $bin "* ]]; then
    echo "error: unknown harness '$bin' (known: ${ALL_BINARIES[*]})" >&2
    exit 1
  fi
done

cargo build --release -p damq-bench

mkdir -p results/json
for bin in "${BINARIES[@]}"; do
  echo "== $bin =="
  ./target/release/"$bin" > "results/$bin.txt"
done

echo "done: ${#BINARIES[@]} harnesses -> results/*.txt + results/json/*.json"
