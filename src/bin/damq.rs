//! `damq` — command-line front end to the simulators and analyses.
//!
//! ```text
//! damq sim        run one network simulation and print its metrics
//! damq saturation find a configuration's saturation throughput
//! damq sweep      sweep offered load, CSV output
//! damq markov     evaluate one Table-2 Markov point
//! damq help       this text
//! ```
//!
//! Examples:
//!
//! ```sh
//! damq sim --buffer damq --load 0.6 --cycles 5000
//! damq saturation --buffer fifo --slots 8
//! damq sweep --buffer all --from 0.1 --to 0.8 --step 0.1 > curve.csv
//! damq markov --buffer damq --slots 3 --traffic 0.95
//! ```

use std::process::ExitCode;

use damq::buffers::BufferKind;
use damq::markov::{discard_probability, CycleOrder, SolveOptions};
use damq::net::{
    find_saturation, measure, ArrivalProcess, NetworkConfig, SaturationOptions, TopologyKind,
    TrafficPattern,
};
use damq::switch::{ArbiterPolicy, FlowControl};

const HELP: &str = "\
damq - multi-queue switch buffer simulators (Tamir & Frazier, ISCA 1988)

USAGE:
    damq <COMMAND> [OPTIONS]

COMMANDS:
    sim         run one network simulation and print its metrics
    saturation  find a configuration's saturation throughput
    sweep       sweep offered load and print a CSV latency/throughput curve
    markov      evaluate one 2x2-switch Markov analysis point
    help        print this text

NETWORK OPTIONS (sim, saturation, sweep):
    --size N          terminals (default 64; power of the radix)
    --radix K         switch radix (default 4)
    --topology T      omega | butterfly (default omega)
    --buffer B        fifo | samq | safc | damq | dafc | all (default damq)
    --slots S         slots per input buffer (default 4)
    --arbiter A       smart | dumb (default smart)
    --flow F          blocking | discarding (default blocking)
    --hot-spot H      fraction of traffic to terminal 0 (default: uniform)
    --burst B         mean burst length in cycles (on/off sources)
    --duty D          fraction of time sources are on (with --burst)
    --load L          offered load per terminal per cycle (default 0.5)
    --cycles C        measurement window in network cycles (default 5000)
    --warmup W        warm-up cycles (default 500)
    --seed X          RNG seed (default 51966)

MARKOV OPTIONS:
    --buffer B        fifo | samq | safc | damq | dafc (default damq)
    --slots S         packets per input buffer (default 4)
    --traffic T       per-input arrival probability (default 0.9)
    --order O         arrivals-first | departures-first (default arrivals-first)
";

/// Minimal `--key value` argument map.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected an option, found {key:?}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("option --{name} needs a value"))?;
            pairs.push((name.to_owned(), value.clone()));
        }
        Ok(Args { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parse_as<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }
}

fn buffer_kind(name: &str) -> Result<BufferKind, String> {
    match name {
        "fifo" => Ok(BufferKind::Fifo),
        "samq" => Ok(BufferKind::Samq),
        "safc" => Ok(BufferKind::Safc),
        "damq" => Ok(BufferKind::Damq),
        "dafc" => Ok(BufferKind::Dafc),
        other => Err(format!("unknown buffer kind {other:?}")),
    }
}

fn buffer_kinds(args: &Args) -> Result<Vec<BufferKind>, String> {
    match args.get("buffer").unwrap_or("damq") {
        "all" => Ok(BufferKind::EXTENDED.to_vec()),
        one => Ok(vec![buffer_kind(one)?]),
    }
}

fn network_config(args: &Args) -> Result<NetworkConfig, String> {
    let size = args.parse_as("size", 64usize)?;
    let radix = args.parse_as("radix", 4usize)?;
    let mut cfg = NetworkConfig::new(size, radix)
        .slots_per_buffer(args.parse_as("slots", 4usize)?)
        .offered_load(args.parse_as("load", 0.5f64)?)
        .seed(args.parse_as("seed", 0xCAFEu64)?);
    cfg = match args.get("topology").unwrap_or("omega") {
        "omega" => cfg.topology_kind(TopologyKind::Omega),
        "butterfly" => cfg.topology_kind(TopologyKind::Butterfly),
        other => return Err(format!("unknown topology {other:?}")),
    };
    cfg = match args.get("arbiter").unwrap_or("smart") {
        "smart" => cfg.arbiter_policy(ArbiterPolicy::Smart),
        "dumb" => cfg.arbiter_policy(ArbiterPolicy::Dumb),
        other => return Err(format!("unknown arbiter {other:?}")),
    };
    cfg = match args.get("flow").unwrap_or("blocking") {
        "blocking" => cfg.flow_control(FlowControl::Blocking),
        "discarding" => cfg.flow_control(FlowControl::Discarding),
        other => return Err(format!("unknown flow control {other:?}")),
    };
    if args.get("burst").is_some() || args.get("duty").is_some() {
        let mean_burst = args.parse_as("burst", 12.0f64)?;
        let duty = args.parse_as("duty", 0.5f64)?;
        cfg = cfg.arrival_process(ArrivalProcess::OnOff { mean_burst, duty });
    }
    if let Some(h) = args.get("hot-spot") {
        let fraction: f64 = h
            .parse()
            .map_err(|_| format!("invalid hot-spot fraction {h:?}"))?;
        cfg = cfg.traffic(TrafficPattern::HotSpot {
            fraction,
            target: damq::buffers::NodeId::new(0),
        });
    }
    Ok(cfg)
}

fn cmd_sim(args: &Args) -> Result<(), String> {
    let base = network_config(args)?;
    let warmup = args.parse_as("warmup", 500u64)?;
    let cycles = args.parse_as("cycles", 5_000u64)?;
    for kind in buffer_kinds(args)? {
        let m = measure(base.buffer_kind(kind), warmup, cycles)
            .map_err(|e| format!("simulation failed: {e}"))?;
        println!(
            "{:<5} offered {:.3}  delivered {:.3}  latency {:.1} clk (p95 {:.0}, p99 {:.0})  \
             discards {:.2}%  backlog {}",
            kind.name(),
            m.offered,
            m.delivered,
            m.latency_clocks,
            m.latency_p95_clocks,
            m.latency_p99_clocks,
            m.discard_fraction * 100.0,
            m.source_backlog,
        );
    }
    Ok(())
}

fn cmd_saturation(args: &Args) -> Result<(), String> {
    let base = network_config(args)?;
    let options = SaturationOptions {
        warm_up: args.parse_as("warmup", 500u64)?,
        window: args.parse_as("cycles", 2_000u64)?,
        ..SaturationOptions::default()
    };
    for kind in buffer_kinds(args)? {
        let r = find_saturation(base.buffer_kind(kind), options)
            .map_err(|e| format!("search failed: {e}"))?;
        println!(
            "{:<5} saturation {:.2}  latency-at-knee {:.1} clk  ({} probes)",
            kind.name(),
            r.throughput,
            r.saturated_latency_clocks,
            r.probes,
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let base = network_config(args)?;
    let warmup = args.parse_as("warmup", 500u64)?;
    let cycles = args.parse_as("cycles", 3_000u64)?;
    let from = args.parse_as("from", 0.05f64)?;
    let to = args.parse_as("to", 0.9f64)?;
    let step = args.parse_as("step", 0.05f64)?;
    if step <= 0.0 || to < from {
        return Err("need --from <= --to and --step > 0".into());
    }
    let kinds = buffer_kinds(args)?;
    println!("buffer,offered,delivered,latency_clocks,latency_p99_clocks,discard_fraction");
    for kind in kinds {
        let mut load = from;
        while load <= to + 1e-9 {
            let m = measure(base.buffer_kind(kind).offered_load(load), warmup, cycles)
                .map_err(|e| format!("simulation failed: {e}"))?;
            println!(
                "{},{:.3},{:.4},{:.2},{:.1},{:.5}",
                kind.name(),
                load,
                m.delivered,
                m.latency_clocks,
                m.latency_p99_clocks,
                m.discard_fraction,
            );
            load += step;
        }
    }
    Ok(())
}

fn cmd_markov(args: &Args) -> Result<(), String> {
    let kind = buffer_kind(args.get("buffer").unwrap_or("damq"))?;
    let slots = args.parse_as("slots", 4usize)?;
    let traffic = args.parse_as("traffic", 0.9f64)?;
    let order = match args.get("order").unwrap_or("arrivals-first") {
        "arrivals-first" => CycleOrder::ArrivalsFirst,
        "departures-first" => CycleOrder::DeparturesFirst,
        other => return Err(format!("unknown order {other:?}")),
    };
    let p = discard_probability(kind, slots, traffic, order, SolveOptions::default())
        .map_err(|e| format!("analysis failed: {e}"))?;
    println!(
        "{} slots={slots} traffic={traffic}: discard {:.6}  throughput {:.4}/cycle  \
         occupancy {:.3} pkts  wait {:.3} cycles  ({} states, {} iterations)",
        kind.name(),
        p.discard_probability,
        p.throughput,
        p.mean_occupancy,
        p.mean_wait_cycles,
        p.states,
        p.iterations,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "sim" => cmd_sim(&args),
        "saturation" => cmd_saturation(&args),
        "sweep" => cmd_sweep(&args),
        "markov" => cmd_markov(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `damq help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
