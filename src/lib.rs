//! # damq — multi-queue buffers for VLSI communication switches
//!
//! A full reproduction of *Tamir & Frazier, "High-Performance Multi-Queue
//! Buffers for VLSI Communication Switches", ISCA 1988* — the paper that
//! introduced the **dynamically-allocated multi-queue (DAMQ) buffer**, the
//! input-buffer organisation that later became standard in switch and
//! network-on-chip design.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`buffers`] | `damq-core` | the four buffer designs (FIFO, SAMQ, SAFC, DAMQ) behind one trait |
//! | [`switch`] | `damq-switch` | n×n switch: crossbar, dumb/smart arbitration, flow control |
//! | [`markov`] | `damq-markov` | Markov analysis of 2×2 discarding switches (paper Table 2) |
//! | [`net`] | `damq-net` | 64×64 Omega-network simulator (paper Tables 3–6, Figure 3) |
//! | [`microarch`] | `damq-microarch` | cycle-accurate ComCoBB chip model (paper §3, Table 1) |
//!
//! # Quick start
//!
//! Measure the paper's headline result — a network of 4×4 DAMQ switches
//! saturates at ~40% higher throughput than the same network with FIFO
//! buffers of equal storage:
//!
//! ```no_run
//! use damq::buffers::BufferKind;
//! use damq::net::{find_saturation, NetworkConfig, SaturationOptions};
//!
//! let cfg = NetworkConfig::new(64, 4).slots_per_buffer(4);
//! let fifo = find_saturation(cfg.buffer_kind(BufferKind::Fifo), SaturationOptions::default())?;
//! let damq = find_saturation(cfg.buffer_kind(BufferKind::Damq), SaturationOptions::default())?;
//! assert!(damq.throughput > 1.3 * fifo.throughput);
//! # Ok::<(), damq::net::NetworkError>(())
//! ```
//!
//! Or work with a buffer directly:
//!
//! ```
//! use damq::prelude::*;
//!
//! let mut buf = DamqBuffer::new(BufferConfig::new(4, 4))?;
//! let packet = Packet::builder(NodeId::new(0), NodeId::new(9)).build();
//! buf.try_enqueue(OutputPort::new(2), packet)?;
//! assert_eq!(buf.queue_len(OutputPort::new(2)), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `damq-bench` crate regenerates every table and figure of the paper;
//! see the repository README and EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Buffer structures: FIFO, SAMQ, SAFC and DAMQ (re-export of `damq-core`).
pub mod buffers {
    pub use damq_core::*;
}

/// n×n switch model: crossbar, arbiters, flow control (re-export of
/// `damq-switch`).
pub mod switch {
    pub use damq_switch::*;
}

/// Markov-chain analysis of 2×2 discarding switches (re-export of
/// `damq-markov`).
pub mod markov {
    pub use damq_markov::*;
}

/// Omega multistage network simulator (re-export of `damq-net`).
pub mod net {
    pub use damq_net::*;
}

/// Cycle-accurate ComCoBB chip model (re-export of `damq-microarch`).
pub mod microarch {
    pub use damq_microarch::*;
}

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use damq_core::{
        BufferConfig, BufferKind, DamqBuffer, FifoBuffer, InputPort, NodeId, OutputPort, Packet,
        SafcBuffer, SamqBuffer, SwitchBuffer,
    };
    pub use damq_net::{
        find_saturation, measure, NetworkConfig, NetworkSim, SaturationOptions, TrafficPattern,
    };
    pub use damq_switch::{ArbiterPolicy, FlowControl, Switch, SwitchConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_modules_resolve() {
        // Touch one item per module so a broken re-export fails to compile.
        let _ = crate::buffers::BufferKind::Damq;
        let _ = crate::switch::ArbiterPolicy::Smart;
        let _ = crate::markov::SolveOptions::default();
        let _ = crate::net::CLOCKS_PER_CYCLE;
        let _ = crate::microarch::COMCOBB_PORTS;
    }
}
