//! End-to-end tests of the `damq` command-line interface.

use std::process::Command;

fn damq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_damq"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_lists_all_commands() {
    let out = damq(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["sim", "saturation", "sweep", "markov"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = damq(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_is_a_clean_error() {
    let out = damq(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn markov_subcommand_reports_a_discard_probability() {
    let out = damq(&[
        "markov",
        "--buffer",
        "damq",
        "--slots",
        "2",
        "--traffic",
        "0.5",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DAMQ"));
    assert!(text.contains("discard"));
    assert!(text.contains("occupancy"));
}

#[test]
fn markov_rejects_bad_buffer_kind() {
    let out = damq(&["markov", "--buffer", "lifo"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown buffer kind"));
}

#[test]
fn sim_runs_a_small_network() {
    let out = damq(&[
        "sim", "--size", "16", "--radix", "4", "--buffer", "fifo", "--load", "0.2", "--cycles",
        "200", "--warmup", "50",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FIFO"));
    assert!(text.contains("latency"));
}

#[test]
fn sweep_emits_csv() {
    let out = damq(&[
        "sweep", "--size", "16", "--buffer", "damq", "--from", "0.1", "--to", "0.2", "--step",
        "0.1", "--cycles", "150", "--warmup", "30",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    assert!(lines.next().unwrap().starts_with("buffer,offered"));
    let first = lines.next().unwrap();
    assert!(first.starts_with("DAMQ,0.100"), "got {first}");
    assert_eq!(first.split(',').count(), 6);
}

#[test]
fn options_without_values_are_rejected() {
    let out = damq(&["sim", "--load"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}
