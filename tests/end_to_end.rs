//! Cross-crate integration tests: whole-network behaviour of the four
//! buffer designs.

use damq::prelude::*;

fn base() -> NetworkConfig {
    NetworkConfig::new(64, 4).slots_per_buffer(4).seed(20240624)
}

#[test]
fn all_four_designs_run_the_paper_network() {
    for kind in BufferKind::ALL {
        let mut sim = NetworkSim::new(base().buffer_kind(kind).offered_load(0.3)).unwrap();
        sim.warm_up(200);
        sim.run(500);
        let m = sim.metrics();
        assert!(
            (m.delivered_throughput() - 0.3).abs() < 0.03,
            "{kind}: delivered {}",
            m.delivered_throughput()
        );
        sim.check_invariants();
    }
}

#[test]
fn packet_conservation_across_designs_and_protocols() {
    for kind in BufferKind::ALL {
        for flow in FlowControl::ALL {
            let mut sim = NetworkSim::new(
                base()
                    .buffer_kind(kind)
                    .flow_control(flow)
                    .offered_load(0.9),
            )
            .unwrap();
            sim.run(400);
            let m = sim.metrics();
            let accounted = m.delivered()
                + m.discarded()
                + sim.source_backlog() as u64
                + sim.packets_in_flight() as u64;
            assert_eq!(m.generated(), accounted, "{kind}/{flow}");
        }
    }
}

#[test]
fn damq_saturates_at_least_30_percent_above_fifo() {
    // The paper's headline: 40% higher maximum throughput at 4 slots.
    let opts = SaturationOptions {
        warm_up: 300,
        window: 1_500,
        ..SaturationOptions::default()
    };
    let fifo = find_saturation(base().buffer_kind(BufferKind::Fifo), opts).unwrap();
    let damq = find_saturation(base().buffer_kind(BufferKind::Damq), opts).unwrap();
    assert!(
        damq.throughput >= 1.3 * fifo.throughput,
        "DAMQ {} vs FIFO {}",
        damq.throughput,
        fifo.throughput
    );
}

#[test]
fn below_saturation_latencies_are_nearly_design_independent() {
    // Paper §4.2.1: "below the point of saturation, the type of buffer used
    // is not a significant factor."
    let mut latencies = Vec::new();
    for kind in BufferKind::ALL {
        let m = measure(base().buffer_kind(kind).offered_load(0.25), 300, 1_500).unwrap();
        latencies.push(m.latency_clocks);
    }
    let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = latencies.iter().cloned().fold(0.0, f64::max);
    assert!(
        max - min < 6.0,
        "latency spread at 0.25 load too wide: {latencies:?}"
    );
}

#[test]
fn discarding_damq_drops_far_fewer_packets_than_fifo() {
    // Table 3's shape at 0.5 input throughput.
    let discard = |kind| {
        let m = measure(
            base()
                .buffer_kind(kind)
                .flow_control(FlowControl::Discarding)
                .offered_load(0.5),
            500,
            3_000,
        )
        .unwrap();
        m.discard_fraction
    };
    let fifo = discard(BufferKind::Fifo);
    let damq = discard(BufferKind::Damq);
    assert!(fifo > 0.01, "FIFO should discard at 0.5: {fifo}");
    assert!(
        damq < fifo / 4.0,
        "DAMQ {damq} should discard a small fraction of FIFO {fifo}"
    );
}

#[test]
fn hot_spot_equalises_all_designs() {
    // Table 6: every design tree-saturates just under 0.25.
    let opts = SaturationOptions {
        warm_up: 300,
        window: 1_500,
        ..SaturationOptions::default()
    };
    for kind in BufferKind::ALL {
        let sat = find_saturation(
            base()
                .buffer_kind(kind)
                .traffic(TrafficPattern::paper_hot_spot()),
            opts,
        )
        .unwrap();
        assert!(
            (sat.throughput - 0.24).abs() < 0.05,
            "{kind}: hot-spot saturation {}",
            sat.throughput
        );
    }
}

#[test]
fn extra_fifo_slots_buy_less_than_damq_organisation() {
    // Table 5's point: DAMQ with 3 slots beats FIFO with 8.
    let opts = SaturationOptions {
        warm_up: 300,
        window: 1_500,
        ..SaturationOptions::default()
    };
    let fifo8 = find_saturation(
        base().buffer_kind(BufferKind::Fifo).slots_per_buffer(8),
        opts,
    )
    .unwrap();
    let damq3 = find_saturation(
        base().buffer_kind(BufferKind::Damq).slots_per_buffer(3),
        opts,
    )
    .unwrap();
    assert!(
        damq3.throughput >= fifo8.throughput,
        "DAMQ(3) {} vs FIFO(8) {}",
        damq3.throughput,
        fifo8.throughput
    );
}

#[test]
fn deterministic_across_identical_configs() {
    let run = || {
        let mut sim = NetworkSim::new(base().offered_load(0.45)).unwrap();
        sim.run(300);
        (
            sim.metrics().generated(),
            sim.metrics().delivered(),
            sim.metrics().mean_latency_clocks().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn radix_2_networks_work_end_to_end() {
    // The Markov crate studies 2x2 switches; the simulator supports them
    // too (a 6-stage 64-terminal butterfly-width network).
    let mut sim = NetworkSim::new(
        NetworkConfig::new(64, 2)
            .buffer_kind(BufferKind::Damq)
            .slots_per_buffer(4)
            .offered_load(0.3)
            .seed(5),
    )
    .unwrap();
    sim.warm_up(200);
    sim.run(500);
    assert!(sim.metrics().delivered() > 5_000);
}

#[test]
fn butterfly_wiring_reproduces_the_damq_advantage() {
    // The DAMQ result is about switches, not the Omega shuffle: the same
    // experiment on a butterfly gives the same ordering and a comparable
    // gap.
    use damq::net::TopologyKind;
    let opts = SaturationOptions {
        warm_up: 300,
        window: 1_500,
        ..SaturationOptions::default()
    };
    let sat = |kind| {
        find_saturation(
            base()
                .buffer_kind(kind)
                .topology_kind(TopologyKind::Butterfly),
            opts,
        )
        .unwrap()
        .throughput
    };
    let fifo = sat(BufferKind::Fifo);
    let damq = sat(BufferKind::Damq);
    assert!(damq >= 1.3 * fifo, "butterfly: DAMQ {damq} vs FIFO {fifo}");
}

#[test]
fn measured_saturations_respect_theory_brackets() {
    use damq::net::theory::{hol_saturation, hot_spot_ceiling, OUTPUT_QUEUED_SATURATION};
    let opts = SaturationOptions {
        warm_up: 300,
        window: 1_500,
        ..SaturationOptions::default()
    };
    // FIFO below the infinite-queue HOL ceiling for 4x4 switches; DAMQ
    // between the HOL ceiling's spirit and the output-queued bound.
    let fifo = find_saturation(base().buffer_kind(BufferKind::Fifo), opts)
        .unwrap()
        .throughput;
    let damq = find_saturation(base().buffer_kind(BufferKind::Damq), opts)
        .unwrap()
        .throughput;
    assert!(
        fifo <= hol_saturation(4) + 0.02,
        "FIFO {fifo} should respect the HOL ceiling {}",
        hol_saturation(4)
    );
    assert!(damq <= OUTPUT_QUEUED_SATURATION);
    assert!(damq > hol_saturation(4), "DAMQ escapes the HOL ceiling");
    // Hot spot: every design within a hair of the analytic cap.
    let hot = find_saturation(
        base()
            .buffer_kind(BufferKind::Damq)
            .traffic(TrafficPattern::paper_hot_spot()),
        opts,
    )
    .unwrap()
    .throughput;
    let cap = hot_spot_ceiling(0.05, 64);
    assert!(hot <= cap + 0.02, "hot-spot sat {hot} vs ceiling {cap}");
    assert!(hot >= cap - 0.05, "hot-spot sat {hot} vs ceiling {cap}");
}
