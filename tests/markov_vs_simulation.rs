//! Validates the Markov models against the event-driven simulator.
//!
//! A 2-terminal radix-2 "network" is a single 2×2 switch, so the discard
//! rates predicted by the `damq-markov` chains and measured by the
//! `damq-net` simulator must agree. The two engines were written
//! independently (different state representations, different arbitration
//! tie-breaking), which makes this a strong end-to-end check on both.
//!
//! The simulator's cycle structure (transmit from the old state, then
//! inject) corresponds to the Markov models' `DeparturesFirst` ordering.
//! Arbitration differs in tie-breaking details (rotating priority vs
//! longest-queue-uniform), so we allow a small absolute tolerance.

use damq::buffers::BufferKind;
use damq::markov::{discard_probability, CycleOrder, SolveOptions};
use damq::net::{measure, NetworkConfig};
use damq::switch::FlowControl;

fn simulated_discard(kind: BufferKind, slots: usize, load: f64) -> f64 {
    let m = measure(
        NetworkConfig::new(2, 2)
            .buffer_kind(kind)
            .slots_per_buffer(slots)
            .flow_control(FlowControl::Discarding)
            .offered_load(load)
            .seed(0xBEEF),
        2_000,
        30_000,
    )
    .expect("simulation runs");
    m.discard_fraction
}

fn predicted_discard(kind: BufferKind, slots: usize, load: f64) -> f64 {
    discard_probability(
        kind,
        slots,
        load,
        CycleOrder::DeparturesFirst,
        SolveOptions::default(),
    )
    .expect("analysis runs")
    .discard_probability
}

#[test]
fn markov_and_simulator_agree_on_fifo() {
    for load in [0.5, 0.8, 0.95] {
        let sim = simulated_discard(BufferKind::Fifo, 4, load);
        let model = predicted_discard(BufferKind::Fifo, 4, load);
        assert!(
            (sim - model).abs() < 0.04,
            "load {load}: sim {sim:.4} vs model {model:.4}"
        );
    }
}

#[test]
fn markov_and_simulator_agree_on_damq() {
    for load in [0.5, 0.8, 0.95] {
        let sim = simulated_discard(BufferKind::Damq, 4, load);
        let model = predicted_discard(BufferKind::Damq, 4, load);
        assert!(
            (sim - model).abs() < 0.04,
            "load {load}: sim {sim:.4} vs model {model:.4}"
        );
    }
}

#[test]
fn markov_and_simulator_agree_on_static_designs() {
    for kind in [BufferKind::Samq, BufferKind::Safc] {
        for load in [0.5, 0.9] {
            let sim = simulated_discard(kind, 4, load);
            let model = predicted_discard(kind, 4, load);
            assert!(
                (sim - model).abs() < 0.05,
                "{kind} load {load}: sim {sim:.4} vs model {model:.4}"
            );
        }
    }
}

#[test]
fn both_engines_rank_the_designs_identically() {
    let load = 0.9;
    let mut sim_ranked: Vec<(BufferKind, f64)> = BufferKind::ALL
        .iter()
        .map(|&k| (k, simulated_discard(k, 4, load)))
        .collect();
    let mut model_ranked: Vec<(BufferKind, f64)> = BufferKind::ALL
        .iter()
        .map(|&k| (k, predicted_discard(k, 4, load)))
        .collect();
    sim_ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    model_ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    let sim_order: Vec<BufferKind> = sim_ranked.iter().map(|&(k, _)| k).collect();
    let model_order: Vec<BufferKind> = model_ranked.iter().map(|&(k, _)| k).collect();
    assert_eq!(
        sim_order, model_order,
        "sim {sim_ranked:?} vs model {model_ranked:?}"
    );
    // And DAMQ is the best in both.
    assert_eq!(sim_order[0], BufferKind::Damq);
}

#[test]
fn kxk_markov_agrees_with_a_single_4x4_switch_simulation() {
    // A 4-terminal radix-4 "network" is one 4x4 switch: the generalised
    // k-by-k Markov model (greedy deterministic arbitration) must agree
    // with the event-driven simulator (rotating-priority arbitration) up
    // to their tie-breaking differences.
    use damq::markov::discard_probability_kxk;
    let sim = |kind: BufferKind, slots: usize, load: f64| {
        measure(
            NetworkConfig::new(4, 4)
                .buffer_kind(kind)
                .slots_per_buffer(slots)
                .flow_control(FlowControl::Discarding)
                .offered_load(load)
                .seed(0xF00D),
            1_000,
            15_000,
        )
        .expect("simulation runs")
        .discard_fraction
    };
    let model = |kind: BufferKind, slots: usize, load: f64| {
        // A looser tolerance keeps the 50k-state solves fast; the sim
        // noise floor is far above it anyway.
        let options = SolveOptions {
            tolerance: 1e-9,
            ..SolveOptions::default()
        };
        discard_probability_kxk(kind, 4, slots, load, CycleOrder::DeparturesFirst, options)
            .expect("analysis runs")
            .discard_probability
    };
    for (kind, slots, load) in [
        (BufferKind::Damq, 1, 0.9), // 625 states: cheap
        (BufferKind::Samq, 4, 0.6),
        (BufferKind::Samq, 4, 0.9),
    ] {
        let s = sim(kind, slots, load);
        let m = model(kind, slots, load);
        assert!(
            (s - m).abs() < 0.05,
            "{kind}/{slots}@{load}: sim {s:.4} vs model {m:.4}"
        );
    }
}
