//! The paper's headline claims, checked one by one.
//!
//! These are the "shape" assertions of EXPERIMENTS.md in executable form —
//! scaled-down versions of each table's qualitative content, so the suite
//! stays fast while still guarding every reproduced result.

use damq::buffers::BufferKind;
use damq::markov::{discard_probability, CycleOrder, SolveOptions};
use damq::microarch::{Chip, ChipConfig, ChipEvent, Phase, RouteEntry};

fn table2(kind: BufferKind, cap: usize, traffic: f64) -> f64 {
    discard_probability(
        kind,
        cap,
        traffic,
        CycleOrder::ArrivalsFirst,
        SolveOptions::default(),
    )
    .unwrap()
    .discard_probability
}

#[test]
fn claim_damq_with_3_slots_discards_no_more_than_fifo_with_6() {
    // Paper §4.1: "the DAMQ switch with space for three packets at each of
    // its input ports discards as few or fewer packets than the FIFO switch
    // with space for six, for all levels of traffic."
    // The paper prints anything below 5e-4 as "0+"; compare at that
    // resolution (at 25% traffic both probabilities are ~1e-9 noise).
    for traffic in [0.25, 0.5, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99] {
        let damq3 = table2(BufferKind::Damq, 3, traffic).max(5e-4);
        let fifo6 = table2(BufferKind::Fifo, 6, traffic).max(5e-4);
        assert!(
            damq3 <= fifo6 + 1e-9,
            "traffic {traffic}: DAMQ(3)={damq3} FIFO(6)={fifo6}"
        );
    }
}

#[test]
fn claim_samq_nearly_matches_safc_below_80_percent() {
    // Paper §4.1: "up to eighty percent traffic, the SAMQ switch performs
    // almost as well as the SAFC" — full connectivity buys little.
    for traffic in [0.25, 0.5, 0.75, 0.8] {
        let samq = table2(BufferKind::Samq, 4, traffic);
        let safc = table2(BufferKind::Safc, 4, traffic);
        assert!(
            samq - safc < 0.02,
            "traffic {traffic}: SAMQ={samq} SAFC={safc}"
        );
    }
}

#[test]
fn claim_fifo_beats_static_designs_at_light_traffic_two_slots() {
    // Paper §4.1: "at low levels of traffic with only two slots per buffer,
    // the FIFO switch performed better than the SAMQ and the SAFC" because
    // its pooled storage behaves as if it were larger.
    for traffic in [0.25, 0.5] {
        let fifo = table2(BufferKind::Fifo, 2, traffic);
        let samq = table2(BufferKind::Samq, 2, traffic);
        let safc = table2(BufferKind::Safc, 2, traffic);
        assert!(fifo < samq, "traffic {traffic}");
        assert!(fifo < safc, "traffic {traffic}");
    }
}

#[test]
fn claim_fifo_discard_saturates_in_buffer_size() {
    // Paper Table 2: beyond ~85% traffic, giving a FIFO more slots barely
    // helps (0.242 at 99% for every size) — head-of-line blocking, not
    // storage, is the bottleneck.
    let at_99: Vec<f64> = (2..=6)
        .map(|cap| table2(BufferKind::Fifo, cap, 0.99))
        .collect();
    let spread = at_99.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - at_99.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.005, "FIFO@99% sizes 2-6: {at_99:?}");
    // While DAMQ keeps improving with size.
    let damq2 = table2(BufferKind::Damq, 2, 0.99);
    let damq6 = table2(BufferKind::Damq, 6, 0.99);
    assert!(damq6 < damq2 / 3.0, "DAMQ@99%: {damq2} -> {damq6}");
}

#[test]
fn claim_damq_dominates_at_every_table2_point() {
    // "the switch with DAMQ buffers performs better than any of the other
    // switches at any level of traffic" (same storage).
    for cap in [2usize, 4, 6] {
        for traffic in [0.25, 0.5, 0.75, 0.9, 0.99] {
            // Clamp to the paper's "0+" threshold: below it, differences
            // are numerical noise.
            let damq = table2(BufferKind::Damq, cap, traffic).max(5e-4);
            for other in [BufferKind::Fifo, BufferKind::Samq, BufferKind::Safc] {
                let o = table2(other, cap, traffic).max(5e-4);
                assert!(
                    damq <= o + 1e-9,
                    "cap {cap} traffic {traffic}: DAMQ={damq} {other}={o}"
                );
            }
        }
    }
}

#[test]
fn claim_virtual_cut_through_takes_four_cycles_regardless_of_length() {
    // Paper §3.2.2 / Table 1: the turn-around is four cycles and does not
    // depend on the packet's length.
    for len in [1usize, 8, 17, 32] {
        let mut chip = Chip::new(ChipConfig::comcobb());
        chip.program_route(
            1,
            0x05,
            RouteEntry {
                output: 3,
                new_header: 0x06,
            },
        )
        .unwrap();
        let data = vec![0x5A; len];
        chip.input_wire_mut(1).drive_packet(0, 0x05, &data);
        chip.run_to_quiescence(200);
        let start_out = chip
            .trace()
            .first(|e| matches!(e.event, ChipEvent::StartBitSent))
            .expect("packet forwarded");
        assert_eq!(
            (start_out.cycle, start_out.phase),
            (4, Phase::Zero),
            "length {len}"
        );
        assert_eq!(chip.output_log(3).packets()[0].2, data);
    }
}

#[test]
fn claim_one_byte_per_cycle_at_full_rate() {
    // Paper §5: the buffer supports "packet transmission and reception at
    // the rate of one byte per clock cycle" — the forwarded packet's bytes
    // occupy consecutive cycles with no stalls.
    let mut chip = Chip::new(ChipConfig::comcobb());
    chip.program_route(
        0,
        0x01,
        RouteEntry {
            output: 1,
            new_header: 0x02,
        },
    )
    .unwrap();
    chip.input_wire_mut(0).drive_packet(0, 0x01, &[7; 32]);
    chip.run_to_quiescence(100);
    let events = chip.output_log(1).events();
    // start + header + length + 32 data bytes on 35 consecutive cycles.
    assert_eq!(events.len(), 35);
    for pair in events.windows(2) {
        assert_eq!(pair[1].0, pair[0].0 + 1, "gap in the byte stream");
    }
}
